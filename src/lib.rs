//! # shrimp — the SHRIMP multicomputer reproduction
//!
//! A full reimplementation, as a deterministic simulation, of the system
//! described in *Early Experience with Message-Passing on the SHRIMP
//! Multicomputer* (Felten et al., ISCA 1996): virtual memory-mapped
//! communication (VMMC) on a network of commodity PCs, plus every
//! user-level communication library the paper evaluates.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic discrete-event kernel with blocking
//!   processes;
//! * [`mesh`] — the Paragon-style 2-D wormhole routing backplane;
//! * [`node`] — PC nodes: paged memory, MMU, Xpress/EISA buses, cost
//!   model, Ethernet;
//! * [`nic`] — the SHRIMP network interface (snoop logic, page tables,
//!   combining, deliberate-update engine, incoming DMA);
//! * [`vmmc`] — **the paper's contribution**: import-export mappings,
//!   deliberate and automatic update, notifications, the daemon;
//! * [`coll`] — topology-aware collective communication over
//!   persistent VMMC geometry (rings, binomial trees, pipelining);
//! * [`nx`] — NX message passing (one-copy credits + zero-copy
//!   rendezvous);
//! * [`sunrpc`] — SunRPC-compatible VRPC (XDR over a cyclic shared
//!   queue);
//! * [`srpc`] — the specialized SHRIMP RPC with its IDL stub generator;
//! * [`sockets`] — stream sockets with Ethernet connection setup;
//! * [`svc`] — a sharded, primary–backup replicated KV serving
//!   subsystem with an open-loop load engine (latency-vs-load curves,
//!   failover measurement);
//! * [`obs`] — virtual-time observability: causal message ids, per-layer
//!   spans, exact latency breakdowns, Perfetto trace export.
//!
//! Start with the `examples/` directory: `quickstart.rs` builds the
//! four-node prototype and moves bytes in a few dozen lines. The
//! benchmark binaries in `shrimp-bench` regenerate every figure of the
//! paper's evaluation (see DESIGN.md and EXPERIMENTS.md).

#![warn(missing_docs)]

pub use shrimp_coll as coll;
pub use shrimp_core as vmmc;
pub use shrimp_mesh as mesh;
pub use shrimp_nic as nic;
pub use shrimp_node as node;
pub use shrimp_nx as nx;
pub use shrimp_obs as obs;
pub use shrimp_rmc as rmc;
pub use shrimp_sim as sim;
pub use shrimp_sockets as sockets;
pub use shrimp_srpc as srpc;
pub use shrimp_sunrpc as sunrpc;
pub use shrimp_svc as svc;

/// Convenience prelude: the types nearly every program starts from.
pub mod prelude {
    pub use shrimp_core::{ExportOpts, ShrimpSystem, SystemConfig, Vmmc};
    pub use shrimp_mesh::NodeId;
    pub use shrimp_node::{CacheMode, CostModel, VAddr};
    pub use shrimp_sim::{Ctx, Kernel, SimChannel, SimDur, SimTime};
}
