#!/usr/bin/env bash
# Regenerate every committed results/*.txt from its bench binary, so
# figure outputs can be diffed against the tree after engine changes
# (virtual results are deterministic: an engine-only change must leave
# every file byte-identical; see DESIGN.md §5c).
#
# Usage: scripts/regen_results.sh [results-dir]   (default: results/)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

bins=(fig3 fig4 fig5 fig7 fig8 ttcp ablations scale)

cargo build --release -p shrimp-bench

for b in "${bins[@]}"; do
    echo ">> $b"
    "target/release/$b" > "$out/$b.txt"
done

# Observability decompositions (simprof): the Fig. 5 per-layer budget
# and the §5 specialized-RPC decomposition. Both derive entirely from
# virtual time, so they are byte-identical across replays.
echo ">> fig5_breakdown"
target/release/simprof fig5 > "$out/fig5_breakdown.txt"
echo ">> srpc_decomposition"
target/release/simprof srpc > "$out/srpc_decomposition.txt"
echo ">> rmc_decomposition"
target/release/simprof rmc > "$out/rmc_decomposition.txt"

# KV serving curve + failover measurement (shrimp-svc). Also rewrites
# the committed BENCH_svc.json digest baseline that CI's svc-smoke job
# gates on.
echo ">> svcbench"
target/release/svcbench --write-curve "$out/svc_curve.txt" --write-json BENCH_svc.json

# Chaos-soaked SLO run (svcsoak): the full 4x4 soak plus the smoke
# digest CI's svc-soak job gates on. The run itself asserts zero lost
# acked writes, the p999 bound, and the bounded shed fraction.
echo ">> svcsoak"
target/release/svcsoak --write-report "$out/svc_soak.txt" --write-json BENCH_svcsoak.json

# One-sided remote memory (shrimp-rmc): raw fetch latency/bandwidth,
# the zero-copy svc get vs its SRPC baseline, and the disaggregated-
# memory pager. Also rewrites the BENCH_rmc.json digest baseline CI's
# rmc-smoke job gates on.
echo ">> rmcbench"
target/release/rmcbench --write-curve "$out/rmc_curve.txt" --write-json BENCH_rmc.json

# Topology zoo (shrimp-fabric): software vs in-network collectives over
# mesh/torus/fat-tree/dragonfly plus the adaptive-routing ablation.
# Also rewrites the BENCH_topo.json digest baseline CI's topo-smoke job
# gates on.
echo ">> topobench"
target/release/topobench --write-curve "$out/topo_curve.txt" --write-json BENCH_topo.json

echo
echo "Regenerated: ${bins[*]/%/.txt} fig5_breakdown.txt srpc_decomposition.txt rmc_decomposition.txt svc_curve.txt BENCH_svc.json svc_soak.txt BENCH_svcsoak.json rmc_curve.txt BENCH_rmc.json topo_curve.txt BENCH_topo.json"
echo "Diff against the committed tree with: git diff -- results/"
