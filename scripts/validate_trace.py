#!/usr/bin/env python3
"""Validate a simprof Perfetto trace (Chrome trace-event JSON).

Checks the structural contract the shrimp-obs exporter promises:

* the document parses and has a ``traceEvents`` list;
* every event has a known phase (``M`` metadata, ``X`` complete,
  ``i`` instant) and the fields that phase requires;
* ``X`` events carry non-negative ``ts``/``dur`` plus ``args.msg`` and
  ``args.bytes``;
* every (pid, tid) that appears on an ``X`` event has ``process_name``
  and ``thread_name`` metadata;
* instant events have a valid scope and the ``fault`` category.

Usage: scripts/validate_trace.py TRACE.json [--require-instants]
Exits non-zero (with a message) on the first violation.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_instants = "--require-instants" in sys.argv
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    with open(args[0], encoding="utf-8") as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents list")

    named_procs = set()
    named_threads = set()
    spans = instants = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_procs.add(ev["pid"])
            elif ev.get("name") == "thread_name":
                named_threads.add((ev["pid"], ev["tid"]))
            else:
                fail(f"event {i}: unknown metadata {ev.get('name')!r}")
            if not ev.get("args", {}).get("name"):
                fail(f"event {i}: metadata without args.name")
        elif ph == "X":
            spans += 1
            for key in ("pid", "tid", "ts", "dur", "name", "cat"):
                if key not in ev:
                    fail(f"event {i}: X event missing {key}")
            if ev["ts"] < 0 or ev["dur"] < 0:
                fail(f"event {i}: negative ts/dur")
            a = ev.get("args", {})
            if "msg" not in a or "bytes" not in a:
                fail(f"event {i}: X event missing args.msg/args.bytes")
        elif ph == "i":
            instants += 1
            if ev.get("s") not in ("p", "g", "t"):
                fail(f"event {i}: instant with bad scope {ev.get('s')!r}")
            if ev.get("cat") != "fault":
                fail(f"event {i}: instant with cat {ev.get('cat')!r}")
            if "ts" not in ev or ev["ts"] < 0:
                fail(f"event {i}: instant missing/negative ts")
        else:
            fail(f"event {i}: unknown phase {ph!r}")

    for ev in events:
        if ev.get("ph") != "X":
            continue
        if ev["pid"] not in named_procs:
            fail(f"span on unnamed process pid={ev['pid']}")
        if (ev["pid"], ev["tid"]) not in named_threads:
            fail(f"span on unnamed track pid={ev['pid']} tid={ev['tid']}")

    if spans == 0:
        fail("trace has no spans")
    if require_instants and instants == 0:
        fail("trace has no fault instants (expected under chaos)")

    print(
        f"validate_trace: ok ({spans} spans, {instants} instants, "
        f"{len(named_procs)} nodes, {len(named_threads)} tracks)"
    )


if __name__ == "__main__":
    main()
