//! The specialized SHRIMP RPC end to end: define a service in the IDL,
//! inspect the generated stub source and marshaling plan, serve it, and
//! compare a null call against the SunRPC-compatible path on the same
//! machine.
//!
//! Run with: `cargo run --example idl_calculator`

use std::sync::Arc;

use shrimp::prelude::*;
use shrimp::srpc::{emit_client_stub, parse_interface, SrpcClient, SrpcDirectory, SrpcServer, Val};
use shrimp::sunrpc::{AcceptStat, RpcDirectory, StreamVariant, VrpcClient, VrpcServer};

const IDL: &str = r"
    // Vector math service for the SHRIMP prototype.
    interface VecMath {
        ping(inout token: u32);
        dot(in a: array<f64, 32>, in b: array<f64, 32>, out result: f64);
        saxpy(in alpha: f64, in x: array<f64, 32>, inout y: array<f64, 32>);
    }
";

fn main() {
    let iface = parse_interface(IDL).expect("IDL parses");
    println!("--- generated client stub (excerpt) ---");
    for line in emit_client_stub(&iface).lines().take(8) {
        println!("{line}");
    }
    println!("---\n");

    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let sdir = SrpcDirectory::new();
    let rdir = RpcDirectory::new();

    // --- Specialized RPC server on node 2 -----------------------------
    {
        let vmmc = system.endpoint(2, "vecmath");
        let sdir = Arc::clone(&sdir);
        let iface = iface.clone();
        kernel.spawn("vecmath", move |ctx| {
            let mut server = SrpcServer::new(vmmc, &iface);
            server.register(
                "ping",
                Box::new(|ctx, ins, out| {
                    let Val::U32(t) = ins[0] else { panic!("type") };
                    out.set(ctx, "token", &Val::U32(t.wrapping_add(1))).unwrap();
                }),
            );
            server.register(
                "dot",
                Box::new(|ctx, ins, out| {
                    let (Val::F64Array(a), Val::F64Array(b)) = (&ins[0], &ins[1]) else {
                        panic!("type")
                    };
                    let r: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                    out.set(ctx, "result", &Val::F64(r)).unwrap();
                }),
            );
            server.register(
                "saxpy",
                Box::new(|ctx, ins, out| {
                    let (Val::F64(alpha), Val::F64Array(x), Val::F64Array(y)) =
                        (&ins[0], &ins[1], &ins[2])
                    else {
                        panic!("type")
                    };
                    let new_y: Vec<f64> = x.iter().zip(y).map(|(xi, yi)| alpha * xi + yi).collect();
                    // The INOUT write propagates back by automatic update
                    // while the server finishes up.
                    out.set(ctx, "y", &Val::F64Array(new_y)).unwrap();
                }),
            );
            let mut conn = server.accept(ctx, &sdir, "vecmath").unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }

    // --- A null VRPC server for comparison, node 3 ---------------------
    {
        let vmmc = system.endpoint(3, "null-vrpc");
        let rdir = Arc::clone(&rdir);
        kernel.spawn("null-vrpc", move |ctx| {
            let mut server = VrpcServer::new(vmmc, 0x2000_0001, 1);
            server.register(
                1,
                Box::new(|_ctx, args, out| {
                    let Ok(v) = args.get_u32() else {
                        return AcceptStat::GarbageArgs;
                    };
                    out.put_u32(v.wrapping_add(1));
                    AcceptStat::Success
                }),
            );
            let mut conn = server.accept(ctx, &rdir).unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }

    // --- Client on node 0 ----------------------------------------------
    {
        let vmmc = system.endpoint(0, "client");
        let vmmc2 = system.endpoint(0, "client-vrpc");
        let sdir = Arc::clone(&sdir);
        let rdir = Arc::clone(&rdir);
        kernel.spawn("client", move |ctx| {
            let mut srpc = SrpcClient::bind(vmmc, ctx, &sdir, "vecmath", &iface).unwrap();
            let mut vrpc =
                VrpcClient::bind(vmmc2, ctx, &rdir, 0x2000_0001, 1, StreamVariant::AutomaticUpdate)
                    .unwrap();

            // Real math through the specialized system.
            let a: Vec<f64> = (0..32).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..32).map(|i| (i * 2) as f64).collect();
            let outs = srpc
                .call(ctx, "dot", &[Val::F64Array(a.clone()), Val::F64Array(b.clone())])
                .unwrap();
            let Val::F64(dot) = outs[0] else { panic!("type") };
            println!("dot(a, b) = {dot}");
            let outs = srpc
                .call(ctx, "saxpy", &[Val::F64(0.5), Val::F64Array(a), Val::F64Array(b)])
                .unwrap();
            let Val::F64Array(y) = &outs[0] else { panic!("type") };
            println!("saxpy mid element = {}", y[16]);

            // Timed null calls through both systems (Figure 8's point).
            const N: u32 = 16;
            let t0 = ctx.now();
            for i in 0..N {
                srpc.call(ctx, "ping", &[Val::U32(i)]).unwrap();
            }
            let srpc_rtt = (ctx.now() - t0).as_us() / N as f64;
            let t0 = ctx.now();
            for i in 0..N {
                vrpc.call(ctx, 1, move |e| e.put_u32(i), |d| d.get_u32()).unwrap();
            }
            let vrpc_rtt = (ctx.now() - t0).as_us() / N as f64;
            println!("null call round trip: specialized {srpc_rtt:.1} us vs SunRPC-compatible {vrpc_rtt:.1} us");
            println!("(the paper reports 9.5 us vs 29 us — more than a factor of three)");

            srpc.close(ctx).unwrap();
            vrpc.close(ctx).unwrap();
        });
    }

    kernel.run_until_quiescent().expect("idl example failed");
    assert!(system.violations().is_empty());
}
