//! Bulk data over the stream-sockets library: a client "uploads a file"
//! to a server that verifies a rolling checksum, exactly the kind of
//! code that ran unmodified on the prototype's socket layer.
//!
//! Run with: `cargo run --example file_transfer`

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp::prelude::*;
use shrimp::sim::SplitMix64;
use shrimp::sockets::{connect, listen, SocketVariant};

const FILE_BYTES: usize = 200_000;
const PORT: u16 = 8080;

fn checksum(acc: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(acc, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64))
}

fn main() {
    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let stats: Arc<Mutex<(u64, usize, f64)>> = Arc::new(Mutex::new((0, 0, 0.0)));

    // --- Server on node 2 ---------------------------------------------
    {
        let vmmc = system.endpoint(2, "file-server");
        let eth = Arc::clone(system.ethernet());
        let stats = Arc::clone(&stats);
        kernel.spawn("file-server", move |ctx| {
            let listener = listen(vmmc, eth, PORT);
            let mut sock = listener.accept(ctx).unwrap();
            // 8-byte header: the file length.
            let hdr = sock.recv_exact(ctx, 8).unwrap();
            let total = u64::from_le_bytes(hdr.try_into().unwrap()) as usize;
            let t0 = ctx.now();
            let mut got = 0usize;
            let mut sum = 0u64;
            while got < total {
                let chunk = sock.recv(ctx, 8192).unwrap();
                assert!(!chunk.is_empty(), "stream ended early");
                sum = checksum(sum, &chunk);
                got += chunk.len();
            }
            let secs = (ctx.now() - t0).as_secs();
            *stats.lock() = (sum, got, got as f64 / secs / 1e6);
            // Acknowledge with the checksum.
            sock.send(ctx, &sum.to_le_bytes()).unwrap();
            sock.close(ctx).unwrap();
        });
    }

    // --- Client on node 0 ----------------------------------------------
    {
        let vmmc = system.endpoint(0, "uploader");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("uploader", move |ctx| {
            let mut sock =
                connect(vmmc, ctx, &eth, NodeId(2), PORT, SocketVariant::Du1Copy).unwrap();
            // Deterministic pseudo-random "file".
            let mut rng = SplitMix64::new(0x5EED);
            let mut file = vec![0u8; FILE_BYTES];
            rng.fill_bytes(&mut file);
            let expect = checksum(0, &file);

            sock.send(ctx, &(FILE_BYTES as u64).to_le_bytes()).unwrap();
            // Stream in odd-sized application writes.
            for chunk in file.chunks(7321) {
                sock.send(ctx, chunk).unwrap();
            }
            let ack = sock.recv_exact(ctx, 8).unwrap();
            let got = u64::from_le_bytes(ack.try_into().unwrap());
            assert_eq!(got, expect, "checksum mismatch");
            println!("uploader: server confirmed checksum {got:#018x}");
            sock.close(ctx).unwrap();
        });
    }

    kernel.run_until_quiescent().expect("file transfer failed");
    assert!(system.violations().is_empty());
    let (sum, bytes, mbs) = *stats.lock();
    println!("server: received {bytes} bytes, checksum {sum:#018x}");
    println!("goodput: {mbs:.1} MB/s over the DU-1copy socket (simulated 1996 hardware)");
}
