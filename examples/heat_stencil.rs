//! A real multicomputer workload on the NX library: one-dimensional heat
//! diffusion (Jacobi iteration) across all four prototype nodes, with
//! halo exchange over `csend`/`crecv` and convergence testing with the
//! `gdsum` global reduction — the kind of program the paper's NX users
//! ran on the Intel machines.
//!
//! Run with: `cargo run --example heat_stencil`

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp::nx::{NxConfig, NxWorld};
use shrimp::prelude::*;

const POINTS_PER_RANK: usize = 48;
const MAX_ITERS: u32 = 400;
const TOLERANCE: f64 = 1e-3;
/// Left boundary held at 100 degrees, right at 0.
const HOT: f64 = 100.0;

fn main() {
    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let nranks = system.len();
    let world = NxWorld::new(
        Arc::clone(&system),
        NxConfig::paper_default(),
        (0..nranks).collect(),
    );
    let result: Arc<Mutex<Vec<(u32, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    for rank in 0..nranks {
        let world = Arc::clone(&world);
        let result = Arc::clone(&result);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let n = nx.numnodes();
            let me = nx.mynode();
            let p = nx.vmmc().proc_().clone();

            // Local strip plus two halo cells; f64 grid kept in Rust,
            // halo values exchanged through simulated memory.
            let mut grid = vec![0.0f64; POINTS_PER_RANK + 2];
            if me == 0 {
                grid[0] = HOT;
            }
            let send_buf = p.alloc(16, CacheMode::WriteBack);
            let recv_buf = p.alloc(16, CacheMode::WriteBack);

            let mut iters = 0;
            let mut residual = f64::INFINITY;
            while iters < MAX_ITERS && residual > TOLERANCE {
                // Halo exchange: even ranks send right first, odd ranks
                // receive first (deadlock-free pairing).
                let tag = iters as i32;
                let phases: [bool; 2] = [me % 2 == 0, me % 2 == 1];
                for &sending in &phases {
                    if sending {
                        if me + 1 < n {
                            p.poke(send_buf, &grid[POINTS_PER_RANK].to_le_bytes())
                                .unwrap();
                            nx.csend(ctx, tag, send_buf, 8, me + 1).unwrap();
                        }
                        if me > 0 {
                            p.poke(send_buf.add(8), &grid[1].to_le_bytes()).unwrap();
                            nx.csend(ctx, tag + 1_000_000, send_buf.add(8), 8, me - 1)
                                .unwrap();
                        }
                    } else {
                        if me > 0 {
                            nx.crecv(ctx, tag, recv_buf, 8).unwrap();
                            let b = p.peek(recv_buf, 8).unwrap();
                            grid[0] = f64::from_le_bytes(b.try_into().unwrap());
                        }
                        if me + 1 < n {
                            nx.crecv(ctx, tag + 1_000_000, recv_buf.add(8), 8).unwrap();
                            let b = p.peek(recv_buf.add(8), 8).unwrap();
                            grid[POINTS_PER_RANK + 1] = f64::from_le_bytes(b.try_into().unwrap());
                        }
                    }
                }
                // Fixed boundary conditions at the global edges.
                if me == 0 {
                    grid[0] = HOT;
                }
                if me == n - 1 {
                    grid[POINTS_PER_RANK + 1] = 0.0;
                }

                // Jacobi sweep.
                let mut local_sq = 0.0f64;
                let old = grid.clone();
                for i in 1..=POINTS_PER_RANK {
                    grid[i] = 0.5 * (old[i - 1] + old[i + 1]);
                    let d = grid[i] - old[i];
                    local_sq += d * d;
                }
                // Global convergence test.
                residual = nx.gdsum(ctx, local_sq).unwrap().sqrt();
                iters += 1;
            }
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
            if me == 0 {
                result
                    .lock()
                    .push((iters, residual, grid[POINTS_PER_RANK / 2]));
            }
        });
    }

    kernel
        .run_until_quiescent()
        .expect("stencil simulation failed");
    assert!(system.violations().is_empty());
    let r = result.lock();
    let (iters, residual, midpoint) = r[0];
    println!(
        "converged={} iterations={iters} residual={residual:.3e}",
        residual <= TOLERANCE
    );
    println!("temperature at rank-0 midpoint: {midpoint:.2}");
    println!("simulated wall time: {}", kernel.now());
}
