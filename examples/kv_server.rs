//! A key-value store served by `shrimp-svc`: one shard server per
//! node, primary–backup replication chained over VMMC deposits, and
//! consistent-hash routing — the whole server side is
//! [`SvcCluster::spawn`]; clients are a [`SvcClient`] each.
//!
//! Run with: `cargo run --example kv_server`

use shrimp::prelude::*;
use shrimp::svc::{SvcClient, SvcCluster, SvcConfig};

fn main() {
    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());

    // One shard primary per node, each chained to a backup replica on
    // the next node; a put's ack means the write reached the backup.
    let cluster = SvcCluster::spawn(&system, SvcConfig::chained(system.len()));
    cluster.register_clients(2);

    // --- Writer client on node 0 --------------------------------------
    {
        let cluster = std::sync::Arc::clone(&cluster);
        kernel.spawn("writer", move |ctx| {
            let mut c = SvcClient::new(&cluster, 0, "writer");
            for i in 0..10u32 {
                let key = format!("sensor/{i}");
                let val = vec![i as u8; 20 + i as usize];
                let ack = c.put(ctx, key.as_bytes(), &val).unwrap();
                assert!(!ack.existed);
            }
            println!("[{}] writer: stored 10 keys", ctx.now());
            cluster.client_done();
        });
    }

    // --- Reader client on node 1 (starts after the writer) ------------
    {
        let cluster = std::sync::Arc::clone(&cluster);
        kernel.spawn("reader", move |ctx| {
            // Crude coordination: let the writer finish first.
            ctx.advance(SimDur::from_us(50_000.0));
            let mut c = SvcClient::new(&cluster, 1, "reader");
            let mut found = 0;
            for i in 0..12u32 {
                let key = format!("sensor/{i}");
                let (_seq, val) = c.get(ctx, key.as_bytes()).unwrap();
                if let Some(v) = val {
                    assert_eq!(v.len(), 20 + i as usize);
                    found += 1;
                }
            }
            let deleted = c.del(ctx, b"sensor/0").unwrap();
            println!(
                "[{}] reader: found {found}/12 keys, delete(sensor/0)={}",
                ctx.now(),
                deleted.existed
            );
            cluster.client_done();
        });
    }

    kernel.run_until_quiescent().expect("kv example failed");
    assert!(system.violations().is_empty());
    println!("done at simulated time {}", kernel.now());
}
