//! A key-value store served over the SunRPC-compatible VRPC library:
//! `put`, `get`, and `delete` procedures with XDR-marshaled arguments,
//! exercised by two clients on different nodes.
//!
//! Run with: `cargo run --example kv_server`

use std::collections::HashMap;
use std::sync::Arc;

use shrimp::prelude::*;
use shrimp::sunrpc::{AcceptStat, RpcDirectory, StreamVariant, VrpcClient, VrpcServer};

const KV_PROG: u32 = 0x2000_1234;
const KV_VERS: u32 = 1;
const PROC_PUT: u32 = 1;
const PROC_GET: u32 = 2;
const PROC_DELETE: u32 = 3;

fn main() {
    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let dir = RpcDirectory::new();

    // --- Server on node 3 --------------------------------------------
    {
        let vmmc = system.endpoint(3, "kv-server");
        let dir = Arc::clone(&dir);
        kernel.spawn("kv-server", move |ctx| {
            let store: Arc<parking_lot::Mutex<HashMap<String, Vec<u8>>>> =
                Arc::new(parking_lot::Mutex::new(HashMap::new()));
            let mut server = VrpcServer::new(vmmc, KV_PROG, KV_VERS);
            {
                let store = Arc::clone(&store);
                server.register(
                    PROC_PUT,
                    Box::new(move |_ctx, args, out| {
                        let (Ok(key), Ok(val)) = (args.get_string(), args.get_opaque()) else {
                            return AcceptStat::GarbageArgs;
                        };
                        let old = store.lock().insert(key.to_string(), val.to_vec());
                        out.put_bool(old.is_some());
                        AcceptStat::Success
                    }),
                );
            }
            {
                let store = Arc::clone(&store);
                server.register(
                    PROC_GET,
                    Box::new(move |_ctx, args, out| {
                        let Ok(key) = args.get_string() else {
                            return AcceptStat::GarbageArgs;
                        };
                        match store.lock().get(key) {
                            Some(v) => {
                                out.put_bool(true);
                                out.put_opaque(v);
                            }
                            None => out.put_bool(false),
                        }
                        AcceptStat::Success
                    }),
                );
            }
            {
                let store = Arc::clone(&store);
                server.register(
                    PROC_DELETE,
                    Box::new(move |_ctx, args, out| {
                        let Ok(key) = args.get_string() else {
                            return AcceptStat::GarbageArgs;
                        };
                        out.put_bool(store.lock().remove(key).is_some());
                        AcceptStat::Success
                    }),
                );
            }
            // Serve both clients, one connection at a time.
            for _ in 0..2 {
                let mut conn = server.accept(ctx, &dir).unwrap();
                let calls = server.serve(ctx, &mut conn).unwrap();
                println!(
                    "[{}] kv-server: connection closed after {calls} calls",
                    ctx.now()
                );
            }
        });
    }

    // --- Writer client on node 0 --------------------------------------
    {
        let vmmc = system.endpoint(0, "writer");
        let dir = Arc::clone(&dir);
        kernel.spawn("writer", move |ctx| {
            let mut c = VrpcClient::bind(
                vmmc,
                ctx,
                &dir,
                KV_PROG,
                KV_VERS,
                StreamVariant::AutomaticUpdate,
            )
            .unwrap();
            for i in 0..10u32 {
                let key = format!("sensor/{i}");
                let val = vec![i as u8; 100 + i as usize];
                let existed = c
                    .call(
                        ctx,
                        PROC_PUT,
                        |e| {
                            e.put_string(&key);
                            e.put_opaque(&val);
                        },
                        |d| d.get_bool(),
                    )
                    .unwrap();
                assert!(!existed);
            }
            println!("[{}] writer: stored 10 keys", ctx.now());
            c.close(ctx).unwrap();
        });
    }

    // --- Reader client on node 1 (starts after the writer) ------------
    {
        let vmmc = system.endpoint(1, "reader");
        let dir = Arc::clone(&dir);
        kernel.spawn("reader", move |ctx| {
            // Crude coordination: let the writer finish first.
            ctx.advance(SimDur::from_us(50_000.0));
            let mut c = VrpcClient::bind(
                vmmc,
                ctx,
                &dir,
                KV_PROG,
                KV_VERS,
                StreamVariant::DeliberateUpdate,
            )
            .unwrap();
            let mut found = 0;
            for i in 0..12u32 {
                let key = format!("sensor/{i}");
                let hit = c
                    .call(
                        ctx,
                        PROC_GET,
                        |e| e.put_string(&key),
                        |d| {
                            let present = d.get_bool()?;
                            if present {
                                let v = d.get_opaque()?;
                                Ok(Some(v.len()))
                            } else {
                                Ok(None)
                            }
                        },
                    )
                    .unwrap();
                if let Some(len) = hit {
                    assert_eq!(len, 100 + i as usize);
                    found += 1;
                }
            }
            let deleted = c
                .call(
                    ctx,
                    PROC_DELETE,
                    |e| e.put_string("sensor/0"),
                    |d| d.get_bool(),
                )
                .unwrap();
            println!(
                "[{}] reader: found {found}/12 keys, delete(sensor/0)={deleted}",
                ctx.now()
            );
            c.close(ctx).unwrap();
        });
    }

    kernel.run_until_quiescent().expect("kv example failed");
    assert!(system.violations().is_empty());
    println!("done at simulated time {}", kernel.now());
}
