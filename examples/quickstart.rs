//! Quickstart: build the four-node SHRIMP prototype and move bytes with
//! both VMMC transfer strategies.
//!
//! Run with: `cargo run --example quickstart`

use shrimp::prelude::*;
use shrimp::vmmc::BufferName;

fn main() {
    // The simulation kernel and the whole machine: four Pentium PCs on a
    // 2x2 Paragon-style mesh, with the calibrated 1996 cost model.
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());

    // A rendezvous channel for exchanging exported-buffer names (the
    // role the job loader / daemons play at startup).
    let names: SimChannel<BufferName> = SimChannel::new();

    // --- Receiver: node 1 -------------------------------------------
    let rx = system.endpoint(1, "receiver");
    {
        let names = names.clone();
        kernel.spawn("receiver", move |ctx| {
            // Export a 4 KB receive buffer. There is no receive call in
            // VMMC: the receiver just watches its own memory.
            let buf = rx.proc_().alloc(4096, CacheMode::WriteBack);
            let name = rx.export(ctx, buf, 4096, ExportOpts::default()).unwrap();
            names.send(&ctx.handle(), name);

            // Wait for the deliberate-update message (flag in the last
            // word), polling first and blocking if it takes long.
            rx.wait_u32(ctx, buf.add(4092), 64, |v| v == 1).unwrap();
            let msg = rx.proc_().peek(buf, 13).unwrap();
            println!(
                "[{}] receiver: deliberate update delivered {:?}",
                ctx.now(),
                String::from_utf8_lossy(&msg)
            );

            // Wait for the automatic-update message.
            rx.wait_u32(ctx, buf.add(4092), 64, |v| v == 2).unwrap();
            let msg = rx.proc_().peek(buf.add(64), 16).unwrap();
            println!(
                "[{}] receiver: automatic update delivered {:?}",
                ctx.now(),
                String::from_utf8_lossy(&msg)
            );
        });
    }

    // --- Sender: node 0 ----------------------------------------------
    let tx = system.endpoint(0, "sender");
    kernel.spawn("sender", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();

        // 1) Deliberate update: an explicit send from any local memory.
        let src = tx.proc_().alloc(4096, CacheMode::WriteBack);
        tx.proc_().write(ctx, src, b"hello, SHRIMP").unwrap();
        tx.proc_().write_u32(ctx, src.add(4092), 1).unwrap();
        let t0 = ctx.now();
        tx.send(ctx, src, &dst, 0, 4096).unwrap();
        println!(
            "[{}] sender: deliberate update issued (blocking send took {})",
            ctx.now(),
            ctx.now() - t0
        );

        // 2) Automatic update: bind a local page to the remote buffer;
        //    ordinary stores are the communication.
        let au = tx.proc_().alloc(4096, CacheMode::WriteBack);
        let binding = tx.bind_au(ctx, au, &dst, 0, 1, true, false).unwrap();
        tx.proc_()
            .write(ctx, au.add(64), b"just plain state")
            .unwrap();
        tx.proc_().write_u32(ctx, au.add(4092), 2).unwrap();
        println!(
            "[{}] sender: automatic update written (no send call at all)",
            ctx.now()
        );
        tx.unbind_au(ctx, binding);
    });

    kernel.run_until_quiescent().expect("simulation failed");
    assert!(system.violations().is_empty());
    println!("done at simulated time {}", kernel.now());
}
