//! The SHRIMP daemon: the trusted third party of the VMMC model.
//!
//! One daemon runs per node. Daemons cooperate to establish and destroy
//! import-export mappings between user processes: they validate
//! permissions, manage receive-buffer memory (the incoming page table)
//! and outgoing bindings, so that user processes never touch the page
//! tables directly — the protection half of VMMC (paper §2.1, §3.3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;
use shrimp_nic::{IptEntry, Nic};

use crate::error::VmmcError;

/// Who may import an exported receive buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExportPerms {
    /// Any process on any node.
    #[default]
    Any,
    /// Only processes on the listed nodes.
    Nodes(Vec<NodeId>),
}

impl ExportPerms {
    /// Whether a process on `node` may import.
    pub fn allows(&self, node: NodeId) -> bool {
        match self {
            ExportPerms::Any => true,
            ExportPerms::Nodes(nodes) => nodes.contains(&node),
        }
    }
}

/// Name of an exported buffer, unique within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferName(pub u64);

impl std::fmt::Display for BufferName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// Daemon-side record of one exported receive buffer.
#[derive(Debug, Clone)]
pub struct ExportRecord {
    /// Physical page frames backing the buffer, in order.
    pub ppages: Arc<Vec<u64>>,
    /// Byte offset of the buffer start within the first page.
    pub first_offset: usize,
    /// Buffer length in bytes.
    pub len: usize,
    /// Import permissions.
    pub perms: ExportPerms,
    /// Whether importers may *fetch* (one-sided read) from this buffer.
    /// Programs the read-permission bit of every backing page's
    /// incoming-page-table entry.
    pub read: bool,
}

/// The mapping information a successful import returns.
#[derive(Debug, Clone)]
pub struct MappingInfo {
    /// Exporting node.
    pub node: NodeId,
    /// Exported buffer name.
    pub name: BufferName,
    /// Physical page frames backing the buffer, in order.
    pub ppages: Arc<Vec<u64>>,
    /// Byte offset of the buffer start within the first page.
    pub first_offset: usize,
    /// Buffer length in bytes.
    pub len: usize,
}

/// The per-node trusted mapping server.
pub struct Daemon {
    node_id: NodeId,
    nic: Arc<Nic>,
    exports: Mutex<HashMap<BufferName, ExportRecord>>,
    next_name: AtomicU64,
    /// Crashed and not yet restarted (fault injection). While down,
    /// mapping requests fail with [`VmmcError::DaemonUnavailable`].
    down: AtomicBool,
    /// Crash/restart cycles completed, for diagnostics.
    restarts: AtomicU64,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("node", &self.node_id)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Create the daemon for a node.
    pub fn new(node_id: NodeId, nic: Arc<Nic>) -> Arc<Daemon> {
        Arc::new(Daemon {
            node_id,
            nic,
            exports: Mutex::new(HashMap::new()),
            next_name: AtomicU64::new(1),
            down: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
        })
    }

    /// The node this daemon serves.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Register an export: records it and enables the pages in the NIC's
    /// incoming page table so the hardware will accept data for them.
    ///
    /// # Errors
    ///
    /// [`VmmcError::DaemonUnavailable`] while the daemon is crashed.
    pub fn register_export(&self, record: ExportRecord) -> Result<BufferName, VmmcError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(VmmcError::DaemonUnavailable { node: self.node_id });
        }
        let name = BufferName(self.next_name.fetch_add(1, Ordering::SeqCst));
        for &p in record.ppages.iter() {
            self.nic.ipt().set(
                p,
                IptEntry {
                    enabled: true,
                    interrupt: false,
                    read: record.read,
                },
            );
        }
        self.exports.lock().insert(name, record);
        Ok(name)
    }

    /// Remove an export and disable its pages in the incoming page
    /// table. The caller (the VMMC layer) must have drained pending
    /// traffic first.
    pub fn unregister_export(&self, name: BufferName) -> Option<ExportRecord> {
        let record = self.exports.lock().remove(&name)?;
        for &p in record.ppages.iter() {
            self.nic.ipt().set(
                p,
                IptEntry {
                    enabled: false,
                    interrupt: false,
                    read: false,
                },
            );
        }
        Some(record)
    }

    /// Resolve an import request from a process on `importer`.
    ///
    /// # Errors
    ///
    /// [`VmmcError::DaemonUnavailable`] while the daemon is crashed;
    /// [`VmmcError::UnknownBuffer`] if the name is not exported here;
    /// [`VmmcError::PermissionDenied`] if the export's permissions
    /// exclude the importer.
    pub fn resolve_import(
        &self,
        importer: NodeId,
        name: BufferName,
    ) -> Result<MappingInfo, VmmcError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(VmmcError::DaemonUnavailable { node: self.node_id });
        }
        let exports = self.exports.lock();
        let record = exports.get(&name).ok_or(VmmcError::UnknownBuffer {
            node: self.node_id,
            name: name.0,
        })?;
        if !record.perms.allows(importer) {
            return Err(VmmcError::PermissionDenied {
                node: self.node_id,
                name: name.0,
            });
        }
        Ok(MappingInfo {
            node: self.node_id,
            name,
            ppages: Arc::clone(&record.ppages),
            first_offset: record.first_offset,
            len: record.len,
        })
    }

    /// Set the receiver-specified notification-interrupt flag on every
    /// page of an export (used when a handler is attached).
    ///
    /// # Errors
    ///
    /// [`VmmcError::DaemonUnavailable`] while the daemon is crashed;
    /// [`VmmcError::UnknownBuffer`] for an unknown export.
    pub fn set_export_interrupt(&self, name: BufferName, on: bool) -> Result<(), VmmcError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(VmmcError::DaemonUnavailable { node: self.node_id });
        }
        let exports = self.exports.lock();
        let record = exports.get(&name).ok_or(VmmcError::UnknownBuffer {
            node: self.node_id,
            name: name.0,
        })?;
        for &p in record.ppages.iter() {
            self.nic.ipt().set_interrupt(p, on);
        }
        Ok(())
    }

    /// Number of live exports.
    pub fn export_count(&self) -> usize {
        self.exports.lock().len()
    }

    // ------------------------------------------------------------------
    // Crash / restart (fault injection)
    // ------------------------------------------------------------------

    /// Whether the daemon is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Completed crash/restart cycles.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Fault hook: crash the daemon. Mapping requests now fail with
    /// [`VmmcError::DaemonUnavailable`] and every exported page is
    /// disabled in the incoming page table (the crashed daemon's kernel
    /// agent revokes its hardware programming), so in-flight traffic to
    /// an export takes the freeze-and-interrupt path instead of landing
    /// unsupervised. Interrupt flags are preserved for the restart.
    pub fn crash(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return; // already down
        }
        // The fetch engine NAKs remote reads typed while the daemon is
        // down (no mapping validation without the daemon).
        self.nic.set_daemon_down(true);
        let exports = self.exports.lock();
        for record in exports.values() {
            for &p in record.ppages.iter() {
                self.nic.ipt().disable(p);
            }
        }
    }

    /// Fault hook: restart a crashed daemon. The export table (durable
    /// state) is re-validated: every recorded export's pages are
    /// re-enabled in the incoming page table, then the daemon resumes
    /// serving mapping requests. If the receive datapath froze during
    /// the outage the caller (OS recovery, see
    /// `ShrimpSystem::apply_faults`) unfreezes it afterwards.
    pub fn restart(&self) {
        if !self.down.load(Ordering::SeqCst) {
            return;
        }
        {
            let exports = self.exports.lock();
            for record in exports.values() {
                for &p in record.ppages.iter() {
                    self.nic.ipt().enable(p);
                }
            }
        }
        self.restarts.fetch_add(1, Ordering::SeqCst);
        self.nic.set_daemon_down(false);
        self.down.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mesh::{Backplane, LinkParams, Mesh2D};
    use shrimp_node::{CostModel, Node};
    use shrimp_sim::Kernel;

    fn daemon() -> (Kernel, Arc<Daemon>, Arc<Nic>) {
        let kernel = Kernel::new();
        let net: Arc<Backplane<shrimp_nic::NicPacket>> = Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::shrimp_prototype()),
            LinkParams::paragon(),
        );
        let node = Node::new(
            kernel.handle(),
            NodeId(0),
            64,
            CostModel::shrimp_prototype(),
        );
        let nic = Nic::install(node, net);
        let d = Daemon::new(NodeId(0), Arc::clone(&nic));
        (kernel, d, nic)
    }

    fn record(pages: Vec<u64>, perms: ExportPerms) -> ExportRecord {
        let len = pages.len() * shrimp_node::PAGE_SIZE;
        ExportRecord {
            ppages: Arc::new(pages),
            first_offset: 0,
            len,
            perms,
            read: false,
        }
    }

    #[test]
    fn read_export_programs_the_read_bit_and_survives_restart() {
        let (_k, d, nic) = daemon();
        let rec = ExportRecord {
            read: true,
            ..record(vec![6], ExportPerms::Any)
        };
        let name = d.register_export(rec).unwrap();
        assert!(nic.ipt().get(6).enabled && nic.ipt().get(6).read);
        d.crash();
        assert!(nic.is_daemon_down(), "fetch engine sees the crash");
        assert!(!nic.ipt().get(6).enabled);
        assert!(nic.ipt().get(6).read, "crash preserves the read bit");
        d.restart();
        assert!(!nic.is_daemon_down());
        assert!(nic.ipt().get(6).enabled && nic.ipt().get(6).read);
        d.unregister_export(name).unwrap();
        assert!(!nic.ipt().get(6).read, "unexport revokes read");
    }

    #[test]
    fn export_enables_ipt_pages_and_unregister_disables() {
        let (_k, d, nic) = daemon();
        let name = d
            .register_export(record(vec![4, 5], ExportPerms::Any))
            .unwrap();
        assert!(nic.ipt().get(4).enabled);
        assert!(nic.ipt().get(5).enabled);
        assert_eq!(d.export_count(), 1);
        d.unregister_export(name).unwrap();
        assert!(!nic.ipt().get(4).enabled);
        assert_eq!(d.export_count(), 0);
        assert!(d.unregister_export(name).is_none());
    }

    #[test]
    fn import_respects_permissions() {
        let (_k, d, _nic) = daemon();
        let open = d
            .register_export(record(vec![1], ExportPerms::Any))
            .unwrap();
        let closed = d
            .register_export(record(vec![2], ExportPerms::Nodes(vec![NodeId(3)])))
            .unwrap();
        assert!(d.resolve_import(NodeId(2), open).is_ok());
        let err = d.resolve_import(NodeId(2), closed).unwrap_err();
        assert!(matches!(err, VmmcError::PermissionDenied { .. }));
        assert!(d.resolve_import(NodeId(3), closed).is_ok());
    }

    #[test]
    fn import_of_unknown_buffer_fails() {
        let (_k, d, _nic) = daemon();
        let err = d.resolve_import(NodeId(1), BufferName(99)).unwrap_err();
        assert_eq!(
            err,
            VmmcError::UnknownBuffer {
                node: NodeId(0),
                name: 99
            }
        );
    }

    #[test]
    fn export_interrupt_flag_programs_ipt() {
        let (_k, d, nic) = daemon();
        let name = d
            .register_export(record(vec![7], ExportPerms::Any))
            .unwrap();
        d.set_export_interrupt(name, true).unwrap();
        assert!(nic.ipt().get(7).interrupt);
        d.set_export_interrupt(name, false).unwrap();
        assert!(!nic.ipt().get(7).interrupt);
        assert!(d.set_export_interrupt(BufferName(55), true).is_err());
    }

    #[test]
    fn crash_rejects_requests_and_restart_revalidates() {
        let (_k, d, nic) = daemon();
        let name = d
            .register_export(record(vec![4, 5], ExportPerms::Any))
            .unwrap();
        d.set_export_interrupt(name, true).unwrap();
        assert!(!d.is_down());

        d.crash();
        assert!(d.is_down());
        // Mapping requests fail typed while down.
        assert_eq!(
            d.resolve_import(NodeId(1), name).unwrap_err(),
            VmmcError::DaemonUnavailable { node: NodeId(0) }
        );
        assert!(matches!(
            d.register_export(record(vec![9], ExportPerms::Any))
                .unwrap_err(),
            VmmcError::DaemonUnavailable { .. }
        ));
        // The crash revoked the hardware enables but kept interrupt flags.
        assert!(!nic.ipt().get(4).enabled);
        assert!(nic.ipt().get(4).interrupt);
        d.crash(); // idempotent

        d.restart();
        assert!(!d.is_down());
        assert_eq!(d.restarts(), 1);
        // Re-validation restored the export's pages, flags intact.
        assert!(nic.ipt().get(4).enabled && nic.ipt().get(5).enabled);
        assert!(nic.ipt().get(4).interrupt);
        assert!(d.resolve_import(NodeId(1), name).is_ok());
        d.restart(); // idempotent: not down, no extra cycle counted
        assert_eq!(d.restarts(), 1);
    }

    #[test]
    fn perms_allows_matrix() {
        assert!(ExportPerms::Any.allows(NodeId(9)));
        let p = ExportPerms::Nodes(vec![NodeId(1), NodeId(2)]);
        assert!(p.allows(NodeId(1)));
        assert!(!p.allows(NodeId(0)));
    }
}
