//! VMMC error types.

use shrimp_mesh::NodeId;
use shrimp_node::MemFault;
use shrimp_sim::SimDur;

/// Errors returned by the VMMC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmcError {
    /// The named buffer does not exist on the target node.
    UnknownBuffer {
        /// Node that was asked.
        node: NodeId,
        /// Buffer name that failed to resolve.
        name: u64,
    },
    /// The exporter's permissions do not allow this importer.
    PermissionDenied {
        /// Node that owns the export.
        node: NodeId,
        /// Buffer name.
        name: u64,
    },
    /// Deliberate update requires word-aligned source, destination
    /// offset, and length.
    Misaligned,
    /// The transfer extends past the end of the imported buffer.
    OutOfRange {
        /// Offset requested into the receive buffer.
        offset: usize,
        /// Length requested.
        len: usize,
        /// Size of the imported buffer.
        buffer_len: usize,
    },
    /// Automatic-update bindings are page-granular; the local address or
    /// the destination offset is not page-aligned.
    UnalignedBinding,
    /// A local memory access faulted.
    Fault(MemFault),
    /// The import handle was already unimported.
    StaleImport,
    /// A bounded wait elapsed before the operation completed (only
    /// surfaced by calls that take a deadline or retry policy).
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// How long the caller was prepared to wait in total.
        waited: SimDur,
    },
    /// The mapping daemon on the target node has crashed and not yet
    /// restarted; retry after its recovery.
    DaemonUnavailable {
        /// Node whose daemon is down.
        node: NodeId,
    },
    /// The node's receive datapath is frozen on a protection violation
    /// and awaits OS repair.
    Frozen {
        /// The frozen node.
        node: NodeId,
        /// The physical page whose disabled IPT entry caused the freeze.
        ppage: u64,
    },
    /// A remote fetch was refused: the target page is mapped but
    /// receive-disabled or exported without read permission. Transient
    /// when caused by an injected protection violation (the OS repair
    /// re-enables the page); permanent when the export lacks read
    /// permission.
    FetchDenied {
        /// Responding node.
        node: NodeId,
        /// The physical page the responder refused.
        ppage: u64,
    },
    /// A remote fetch targeted a physical page with no incoming-page-
    /// table entry at all — a protocol error (wild address), reported
    /// distinctly from a protection deny.
    FetchUnmapped {
        /// Responding node.
        node: NodeId,
        /// The unmapped physical page.
        ppage: u64,
    },
}

impl std::fmt::Display for VmmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmmcError::UnknownBuffer { node, name } => {
                write!(f, "no exported buffer {name} on {node}")
            }
            VmmcError::PermissionDenied { node, name } => {
                write!(f, "import of buffer {name} on {node} denied")
            }
            VmmcError::Misaligned => {
                write!(
                    f,
                    "deliberate update requires word-aligned source, destination, and length"
                )
            }
            VmmcError::OutOfRange {
                offset,
                len,
                buffer_len,
            } => {
                write!(f, "transfer of {len} bytes at offset {offset} exceeds buffer of {buffer_len} bytes")
            }
            VmmcError::UnalignedBinding => {
                write!(f, "automatic-update bindings must be page-aligned")
            }
            VmmcError::Fault(e) => write!(f, "memory fault: {e}"),
            VmmcError::StaleImport => write!(f, "import handle was unimported"),
            VmmcError::Timeout { op, waited } => {
                write!(f, "{op} timed out after {waited}")
            }
            VmmcError::DaemonUnavailable { node } => {
                write!(f, "mapping daemon on {node} is down")
            }
            VmmcError::Frozen { node, ppage } => {
                write!(f, "receive datapath on {node} frozen at page {ppage}")
            }
            VmmcError::FetchDenied { node, ppage } => {
                write!(f, "remote fetch denied by {node} at page {ppage}")
            }
            VmmcError::FetchUnmapped { node, ppage } => {
                write!(f, "remote fetch of unmapped page {ppage} on {node}")
            }
        }
    }
}

impl std::error::Error for VmmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmmcError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemFault> for VmmcError {
    fn from(e: MemFault) -> Self {
        VmmcError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = VmmcError::UnknownBuffer {
            node: NodeId(2),
            name: 77,
        };
        assert_eq!(e.to_string(), "no exported buffer 77 on node2");
        let e = VmmcError::OutOfRange {
            offset: 10,
            len: 20,
            buffer_len: 16,
        };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn mem_fault_converts_and_chains() {
        use std::error::Error;
        let e: VmmcError = MemFault::NotMapped { vpage: 3 }.into();
        assert!(e.source().is_some());
    }
}
