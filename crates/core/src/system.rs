//! Whole-system assembly: nodes, NICs, daemons, backplane, Ethernet.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use shrimp_mesh::{Backplane, DeliveryOrder, LinkParams, Mesh2D, NodeId, TopologyRef};
use shrimp_nic::{Nic, NicPacket, IRQ_NOTIFICATION, IRQ_RECV_FREEZE};
use shrimp_node::{CostModel, Ethernet, Node, UserProc};
use shrimp_sim::{FaultKind, FaultLog, FaultPlan, Kernel, SimHandle};

use crate::daemon::Daemon;
use crate::endpoint::{EndpointShared, Vmmc};

/// Configuration for building a [`ShrimpSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Fabric topology; the node count is `topology.len()`.
    pub topology: TopologyRef,
    /// DRAM pages per node (4 KB each).
    pub mem_pages_per_node: usize,
    /// The cost model applied on every node.
    pub costs: CostModel,
    /// Backplane channel parameters.
    pub link: LinkParams,
}

impl SystemConfig {
    /// The four-node prototype: 2×2 mesh, 40 MB DRAM per node, calibrated
    /// costs, Paragon backplane.
    pub fn prototype() -> SystemConfig {
        SystemConfig {
            topology: std::sync::Arc::new(Mesh2D::shrimp_prototype()),
            mem_pages_per_node: 10 * 1024, // 40 MB
            costs: CostModel::shrimp_prototype(),
            link: LinkParams::paragon(),
        }
    }

    /// The planned 16-node expansion (paper §8: "We also plan to expand
    /// the system to 16 nodes"): a 4×4 mesh with otherwise identical
    /// per-node hardware.
    pub fn expanded_16() -> SystemConfig {
        SystemConfig {
            topology: std::sync::Arc::new(Mesh2D::new(4, 4)),
            ..SystemConfig::prototype()
        }
    }

    /// An arbitrary `width × height` machine with prototype nodes, for
    /// scaling studies.
    pub fn with_mesh(width: usize, height: usize) -> SystemConfig {
        SystemConfig {
            topology: std::sync::Arc::new(Mesh2D::new(width, height)),
            ..SystemConfig::prototype()
        }
    }

    /// Prototype nodes over an arbitrary fabric topology.
    ///
    /// VMMC's delivery contract requires an in-order fabric;
    /// [`ShrimpSystem::build`] enforces that.
    pub fn with_topology(topology: TopologyRef) -> SystemConfig {
        SystemConfig {
            topology,
            ..SystemConfig::prototype()
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::prototype()
    }
}

/// Routes incoming-data events (DMA completions, notification
/// interrupts) from a node's NIC to the endpoint that exported the
/// destination page.
#[derive(Default)]
pub(crate) struct Registry {
    map: Mutex<HashMap<(usize, u64), Weak<EndpointShared>>>,
}

impl Registry {
    pub(crate) fn register_pages(&self, node: usize, pages: &[u64], ep: &Arc<EndpointShared>) {
        let mut m = self.map.lock();
        for &p in pages {
            m.insert((node, p), Arc::downgrade(ep));
        }
    }

    pub(crate) fn unregister_pages(&self, node: usize, pages: &[u64]) {
        let mut m = self.map.lock();
        for &p in pages {
            m.remove(&(node, p));
        }
    }

    pub(crate) fn lookup(&self, node: usize, ppage: u64) -> Option<Arc<EndpointShared>> {
        self.map.lock().get(&(node, ppage)).and_then(Weak::upgrade)
    }
}

/// A fully-wired SHRIMP multicomputer: the object benchmarks and
/// applications start from.
///
/// # Examples
///
/// ```
/// use shrimp_sim::Kernel;
/// use shrimp_core::{ShrimpSystem, SystemConfig};
///
/// let kernel = Kernel::new();
/// let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
/// assert_eq!(system.len(), 4);
/// ```
pub struct ShrimpSystem {
    handle: SimHandle,
    topology: TopologyRef,
    net: Arc<Backplane<NicPacket>>,
    eth: Arc<Ethernet>,
    nodes: Vec<Arc<Node>>,
    nics: Vec<Arc<Nic>>,
    daemons: Vec<Arc<Daemon>>,
    pub(crate) registry: Arc<Registry>,
    violations: Mutex<Vec<(NodeId, u64)>>,
    /// When set (by [`ShrimpSystem::apply_faults`]), a freeze interrupt
    /// triggers the OS recovery path automatically after the interrupt
    /// latency, instead of only being recorded.
    auto_repair: AtomicBool,
    fault_log: Mutex<Option<Arc<FaultLog>>>,
    /// Control-plane directives delivered by the fault plan, for upper
    /// layers (e.g. shrimp-svc shard migrations) to poll.
    directives: Mutex<Vec<(shrimp_sim::SimTime, &'static str, u64, u64)>>,
    /// Observability recorder shared by every layer of this system
    /// (see `shrimp_obs`). Auto-attached at [`ShrimpSystem::build`]
    /// from the thread's current recorder, if one is installed.
    obs: shrimp_obs::ObsSlot,
}

impl std::fmt::Debug for ShrimpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShrimpSystem")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl ShrimpSystem {
    /// Build and wire the whole machine on `kernel`.
    pub fn build(kernel: &Kernel, config: SystemConfig) -> Arc<ShrimpSystem> {
        let handle = kernel.handle();
        // VMMC's per-sender in-order delivery guarantee (paper §3) is
        // *derived* from the fabric: only topologies declaring in-order
        // delivery (pairwise path-invariant routing over FIFO links) can
        // carry the VMMC protocol. Adaptive/non-minimal fabrics are for
        // raw-backplane ablations only.
        assert_eq!(
            config.topology.ordering(),
            DeliveryOrder::InOrder,
            "VMMC requires an in-order fabric; topology '{}' delivers unordered",
            config.topology.name()
        );
        let net: Arc<Backplane<NicPacket>> =
            Backplane::new(handle.clone(), Arc::clone(&config.topology), config.link);
        let eth = Ethernet::new(handle.clone());
        let registry = Arc::new(Registry::default());

        let mut nodes = Vec::new();
        let mut nics = Vec::new();
        let mut daemons = Vec::new();
        for id in config.topology.nodes() {
            let node = Node::new(
                handle.clone(),
                id,
                config.mem_pages_per_node,
                config.costs.clone(),
            );
            let nic = Nic::install(Arc::clone(&node), Arc::clone(&net));
            let daemon = Daemon::new(id, Arc::clone(&nic));
            nodes.push(node);
            nics.push(nic);
            daemons.push(daemon);
        }

        let system = Arc::new(ShrimpSystem {
            handle,
            topology: Arc::clone(&config.topology),
            net,
            eth,
            nodes,
            nics,
            daemons,
            registry,
            violations: Mutex::new(Vec::new()),
            auto_repair: AtomicBool::new(false),
            fault_log: Mutex::new(None),
            directives: Mutex::new(Vec::new()),
            obs: shrimp_obs::ObsSlot::new(),
        });

        // Auto-attach the thread's current observability recorder (if
        // any), so existing workloads gain tracing by installing a
        // recorder before building the system — no signature changes.
        if let Some(rec) = shrimp_obs::Recorder::current() {
            system.set_obs(Some(rec));
        }

        // Wire per-node delivery and interrupt routing.
        for (i, node) in system.nodes.iter().enumerate() {
            let sys = Arc::downgrade(&system);
            system.nics[i].set_delivery_hook(move |ppage, at| {
                if let Some(sys) = sys.upgrade() {
                    if let Some(ep) = sys.registry.lookup(i, ppage) {
                        ep.on_delivery(ppage, at);
                    }
                }
            });
            let sys = Arc::downgrade(&system);
            node.set_interrupt_hook(move |irq| {
                let Some(sys) = sys.upgrade() else { return };
                match irq.vector {
                    IRQ_NOTIFICATION => {
                        if let Some(ep) = sys.registry.lookup(i, irq.info) {
                            ep.on_notification(irq.info);
                        }
                    }
                    IRQ_RECV_FREEZE => {
                        sys.violations.lock().push((NodeId(i), irq.info));
                        if sys.auto_repair.load(Ordering::SeqCst) {
                            sys.log_fault(format!("freeze node={i} page={}", irq.info));
                            // The OS freeze handler runs after the
                            // interrupt latency and repairs the page —
                            // unless the daemon is down, in which case
                            // its restart path owns the unfreeze.
                            let latency = sys.nodes[i].costs().interrupt_latency;
                            let page = irq.info;
                            let sys2 = Arc::downgrade(&sys);
                            sys.handle.schedule_in(latency, move || {
                                let Some(sys) = sys2.upgrade() else { return };
                                if sys.daemons[i].is_down() {
                                    return;
                                }
                                if sys.repair_and_unfreeze(i, page) {
                                    sys.log_fault(format!("repair node={i} page={page}"));
                                }
                            });
                        }
                    }
                    _ => {}
                }
            });
        }
        system
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty system (never constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The fabric topology.
    pub fn topology(&self) -> &TopologyRef {
        &self.topology
    }

    /// The simulation handle.
    pub fn sim(&self) -> &SimHandle {
        &self.handle
    }

    /// The routing backplane.
    pub fn net(&self) -> &Arc<Backplane<NicPacket>> {
        &self.net
    }

    /// Attach (or detach) an observability recorder to every layer of
    /// the system: the mesh backplane, all NICs, and the VMMC
    /// endpoints/user libraries (which read it via
    /// [`ShrimpSystem::obs`]).
    pub fn set_obs(&self, rec: Option<Arc<shrimp_obs::Recorder>>) {
        self.net.set_obs(rec.clone());
        for nic in &self.nics {
            nic.set_obs(rec.clone());
        }
        self.obs.set(rec);
    }

    /// The attached observability recorder, or `None` on the disabled
    /// fast path (one relaxed atomic load).
    pub fn obs(&self) -> Option<Arc<shrimp_obs::Recorder>> {
        self.obs.get()
    }

    /// The Ethernet side channel.
    pub fn ethernet(&self) -> &Arc<Ethernet> {
        &self.eth
    }

    /// Node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// NIC of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn nic(&self, i: usize) -> &Arc<Nic> {
        &self.nics[i]
    }

    /// Daemon of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn daemon(&self, i: usize) -> &Arc<Daemon> {
        &self.daemons[i]
    }

    /// Create a user process with a VMMC endpoint on node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn endpoint(self: &Arc<Self>, i: usize, name: impl Into<String>) -> Vmmc {
        let proc_ = UserProc::new(Arc::clone(&self.nodes[i]), name);
        Vmmc::new(Arc::clone(self), i, proc_)
    }

    /// Create a second VMMC endpoint for an *existing* process on node
    /// `i`, sharing its address space. Libraries layered on top of each
    /// other (NX over the collective layer, say) use this so both see
    /// the same user buffers.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `proc_` does not live on node
    /// `i`.
    pub fn endpoint_on(self: &Arc<Self>, i: usize, proc_: UserProc) -> Vmmc {
        assert!(i < self.nodes.len(), "node {i} out of range");
        assert!(
            Arc::ptr_eq(proc_.node(), &self.nodes[i]),
            "process does not live on node {i}"
        );
        Vmmc::new(Arc::clone(self), i, proc_)
    }

    /// Receive-path protection violations observed so far, as
    /// `(node, physical page)` pairs. A correct protocol never triggers
    /// any; tests assert emptiness.
    pub fn violations(&self) -> Vec<(NodeId, u64)> {
        self.violations.lock().clone()
    }

    /// The OS recovery path for a frozen receive datapath: what the
    /// freeze interrupt handler would do after deciding the offending
    /// page should accept data after all — enable the page in the
    /// incoming page table and unfreeze the NIC, which reprocesses its
    /// queued packets. Returns whether the node was frozen.
    pub fn repair_and_unfreeze(&self, node: usize, ppage: u64) -> bool {
        let nic = &self.nics[node];
        let was = nic.is_frozen();
        // repair() preserves the page's read-permission bit, so a
        // fetch-triggered freeze recovers to exactly the pre-violation
        // protection state.
        nic.ipt().repair(ppage);
        nic.unfreeze();
        was
    }

    /// Arm a fault plan (see `shrimp_sim::faults`): every event is
    /// scheduled on the kernel and dispatched into the owning layer —
    /// mesh link stalls and brownouts, NIC incoming-DMA stalls, IPT
    /// protection violations, daemon crash/restart cycles. Also enables
    /// the automatic OS recovery path: a freeze interrupt now schedules
    /// [`ShrimpSystem::repair_and_unfreeze`] after the interrupt
    /// latency (or defers to the daemon's restart when it is down).
    ///
    /// Returns the fault log; with a fixed seed and workload the log's
    /// rendering is bit-identical across runs.
    pub fn apply_faults(self: &Arc<Self>, plan: &FaultPlan) -> Arc<FaultLog> {
        let log = Arc::new(FaultLog::new());
        *self.fault_log.lock() = Some(Arc::clone(&log));
        self.auto_repair.store(true, Ordering::SeqCst);
        let sys = Arc::downgrade(self);
        plan.schedule(&self.handle, move |ev| {
            let Some(sys) = sys.upgrade() else { return };
            let now = sys.handle.now();
            sys.log_fault(format!("inject {}", ev.kind));
            match ev.kind {
                FaultKind::LinkStall { node, dur } => {
                    sys.net.stall_node_links(NodeId(node), now, dur);
                }
                FaultKind::PortStall { router, port, dur } => {
                    sys.net.stall_link(router, port, now, dur);
                }
                FaultKind::Brownout { factor, dur } => {
                    sys.net.brownout(now, dur, factor);
                }
                FaultKind::DmaStall { node, dur } => {
                    sys.nics[node].stall_incoming_dma(now, dur);
                }
                FaultKind::IptViolation { node } => match sys.nics[node].inject_ipt_violation() {
                    Some(victim) => {
                        sys.log_fault(format!("ipt-disabled node={node} page={victim}"))
                    }
                    None => sys.log_fault(format!("ipt-no-victim node={node}")),
                },
                FaultKind::DaemonCrash { node, downtime } => {
                    sys.daemons[node].crash();
                    let sys2 = Arc::downgrade(&sys);
                    sys.handle.schedule_in(downtime, move || {
                        let Some(sys) = sys2.upgrade() else { return };
                        sys.daemons[node].restart();
                        sys.log_fault(format!("daemon-restart node={node}"));
                        // Restart re-validated the export table; clear
                        // any freeze the outage caused.
                        if sys.nics[node].is_frozen() {
                            sys.nics[node].unfreeze();
                            sys.log_fault(format!("unfreeze node={node}"));
                        }
                    });
                }
                FaultKind::FetchStall { node, dur } => {
                    sys.nics[node].stall_fetch_engine(now, dur);
                }
                FaultKind::Directive { op, a, b } => {
                    sys.directives.lock().push((now, op, a, b));
                }
            }
        });
        log
    }

    /// Control-plane directives injected so far (see
    /// [`FaultKind::Directive`]), in firing order. Consuming layers
    /// poll this and track their own cursor; entries are never removed.
    pub fn directives(&self) -> Vec<(shrimp_sim::SimTime, &'static str, u64, u64)> {
        self.directives.lock().clone()
    }

    /// The log installed by the last [`ShrimpSystem::apply_faults`].
    pub fn fault_log(&self) -> Option<Arc<FaultLog>> {
        self.fault_log.lock().clone()
    }

    fn log_fault(&self, line: String) {
        if let Some(log) = self.fault_log.lock().as_ref() {
            log.record(self.handle.now(), line);
        }
    }

    /// True when no packet is in flight anywhere: mesh delivered
    /// everything injected and every NIC finished its incoming DMA and
    /// holds no open combining packet.
    pub fn quiescent(&self) -> bool {
        let m = self.net.stats();
        m.injected == m.delivered && self.nics.iter().all(|n| n.in_flight() == 0)
    }

    /// A machine-wide utilization and traffic snapshot (the kind of
    /// counters the prototype's diagnostics network existed to carry).
    pub fn report(&self) -> SystemReport {
        SystemReport {
            at: self.handle.now(),
            mesh: self.net.stats(),
            nics: self.nics.iter().map(|n| n.stats()).collect(),
            bus_busy_us: self
                .nodes
                .iter()
                .map(|n| {
                    let (mb, _, _) = n.membus().stats();
                    let (eb, _, _) = n.eisa().stats();
                    (mb.as_us(), eb.as_us())
                })
                .collect(),
            violations: self.violations.lock().len(),
        }
    }
}

/// Snapshot returned by [`ShrimpSystem::report`].
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Virtual time of the snapshot.
    pub at: shrimp_sim::SimTime,
    /// Backplane traffic.
    pub mesh: shrimp_mesh::MeshStats,
    /// Per-node NIC counters.
    pub nics: Vec<shrimp_nic::NicStats>,
    /// Per-node cumulative `(memory bus, EISA bus)` busy time in µs.
    pub bus_busy_us: Vec<(f64, f64)>,
    /// Protection violations observed.
    pub violations: usize,
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "system report at {}", self.at)?;
        writeln!(
            f,
            "  mesh: {} packets injected, {} delivered, {} payload bytes",
            self.mesh.injected, self.mesh.delivered, self.mesh.payload_bytes
        )?;
        for (i, (nic, (mb, eb))) in self.nics.iter().zip(&self.bus_busy_us).enumerate() {
            writeln!(
                f,
                "  node{i}: out {} AU + {} DU pkts ({} B), in {} pkts ({} B); \
                 membus busy {mb:.0} us, eisa busy {eb:.0} us",
                nic.au_packets_out, nic.du_packets_out, nic.bytes_out, nic.packets_in, nic.bytes_in
            )?;
        }
        write!(f, "  protection violations: {}", self.violations)
    }
}
