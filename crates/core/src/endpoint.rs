//! The VMMC endpoint: the user-level API of virtual memory-mapped
//! communication.
//!
//! A [`Vmmc`] belongs to one user process. It provides the calls of the
//! VMMC model (paper §2):
//!
//! * **import-export mappings** — [`Vmmc::export`] /
//!   [`Vmmc::import`] / [`Vmmc::unexport`] / [`Vmmc::unimport`];
//! * **deliberate update** — [`Vmmc::send`], the blocking explicit
//!   transfer from any local memory into an imported receive buffer;
//! * **automatic update** — [`Vmmc::bind_au`] binds local pages to an
//!   imported buffer so ordinary stores propagate in hardware;
//! * **notifications** — per-buffer handlers with signal-like blocking
//!   semantics ([`Vmmc::wait_notification`], queued while blocked);
//! * **receive-side waiting** — there is *no receive operation* in VMMC;
//!   receivers check memory. [`Vmmc::wait_u32`] polls a flag and falls
//!   back to blocking, the polling/blocking switch of paper §6.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;
use shrimp_nic::{DuRequest, FetchRequest, NakReason, OptEntry};
use shrimp_node::{CacheMode, UserProc, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, ProcessId, SimHandle, SimTime};

use crate::daemon::{BufferName, ExportPerms, ExportRecord, MappingInfo};
use crate::error::VmmcError;
use crate::system::ShrimpSystem;

/// A notification delivered to an exported buffer's owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyEvent {
    /// The buffer whose pages received data.
    pub buffer: BufferName,
    /// When the triggering packet's DMA completed.
    pub at: SimTime,
}

/// A user-level notification handler (paper §2.3). Runs in the receiving
/// process's context when notifications are consumed.
pub type NotifyHandler = Box<dyn FnMut(&Ctx, NotifyEvent) + Send>;

/// Options for [`Vmmc::export`].
#[derive(Default)]
pub struct ExportOpts {
    /// Import permissions.
    pub perms: ExportPerms,
    /// Optional notification handler; attaching one sets the
    /// receiver-specified interrupt flag on the buffer's pages.
    pub handler: Option<NotifyHandler>,
    /// Allow importers to *fetch* (one-sided remote read) from this
    /// buffer: programs the read-permission bit on every backing page.
    /// Off by default — a plain VMMC export stays write-only.
    pub read: bool,
}

impl std::fmt::Debug for ExportOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExportOpts")
            .field("perms", &self.perms)
            .field("handler", &self.handler.as_ref().map(|_| "<fn>"))
            .field("read", &self.read)
            .finish()
    }
}

/// A handle to an imported remote receive buffer. Cheap to clone; all
/// clones are invalidated together by [`Vmmc::unimport`].
#[derive(Debug, Clone)]
pub struct ImportHandle {
    info: Arc<MappingInfo>,
    alive: Arc<AtomicBool>,
}

impl ImportHandle {
    /// The exporting node.
    pub fn node(&self) -> NodeId {
        self.info.node
    }

    /// The exported buffer's name.
    pub fn name(&self) -> BufferName {
        self.info.name
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.info.len
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.info.len == 0
    }

    /// Destination physical byte address for a byte offset into the
    /// buffer.
    pub(crate) fn locate(&self, off: usize) -> u64 {
        let abs = self.info.first_offset + off;
        let page_idx = abs / PAGE_SIZE;
        let within = abs % PAGE_SIZE;
        self.info.ppages[page_idx] * PAGE_SIZE as u64 + within as u64
    }

    /// Bytes from `off` to the end of the destination physical page it
    /// falls in.
    pub(crate) fn bytes_to_page_end(&self, off: usize) -> usize {
        PAGE_SIZE - (self.info.first_offset + off) % PAGE_SIZE
    }

    pub(crate) fn info(&self) -> &MappingInfo {
        &self.info
    }
}

/// Tracks an in-flight non-blocking send
/// ([`Vmmc::send_nonblocking`]).
#[derive(Debug, Clone)]
pub struct SendHandle {
    outstanding: Arc<std::sync::atomic::AtomicUsize>,
}

impl SendHandle {
    /// True once the source buffer is reusable.
    pub fn is_complete(&self) -> bool {
        self.outstanding.load(Ordering::SeqCst) == 0
    }
}

/// An active automatic-update binding created by [`Vmmc::bind_au`].
#[derive(Debug)]
pub struct AuBinding {
    local_va: VAddr,
    pages: usize,
    local_ppages: Vec<u64>,
    local_vpages: Vec<u64>,
}

impl AuBinding {
    /// First bound local address.
    pub fn local_va(&self) -> VAddr {
        self.local_va
    }

    /// Number of bound pages.
    pub fn pages(&self) -> usize {
        self.pages
    }
}

struct EpState {
    activity_waiters: Vec<ProcessId>,
    notify_waiters: Vec<ProcessId>,
    notify_blocked: bool,
    pending_notifies: VecDeque<NotifyEvent>,
    handlers: HashMap<BufferName, NotifyHandler>,
    exports: HashMap<BufferName, (VAddr, usize, Arc<Vec<u64>>)>,
    ppage_to_buffer: HashMap<u64, BufferName>,
}

/// State shared between the owning process and the system's hook
/// closures (delivery, notification interrupts).
pub(crate) struct EndpointShared {
    handle: SimHandle,
    state: Mutex<EpState>,
}

impl EndpointShared {
    pub(crate) fn on_delivery(&self, _ppage: u64, _at: SimTime) {
        let waiters: Vec<ProcessId> = {
            let mut st = self.state.lock();
            st.activity_waiters.drain(..).collect()
        };
        for pid in waiters {
            self.handle.unpark(pid);
        }
    }

    pub(crate) fn on_notification(&self, ppage: u64) {
        let to_wake: Vec<ProcessId> = {
            let mut st = self.state.lock();
            let Some(&buffer) = st.ppage_to_buffer.get(&ppage) else {
                return;
            };
            // Notifications only take effect when a handler is attached
            // (paper §2.3).
            if !st.handlers.contains_key(&buffer) {
                return;
            }
            let at = self.handle.now();
            st.pending_notifies.push_back(NotifyEvent { buffer, at });
            if st.notify_blocked {
                Vec::new() // queued while blocked
            } else {
                st.notify_waiters.drain(..).collect()
            }
        };
        for pid in to_wake {
            self.handle.unpark(pid);
        }
    }
}

/// One process's VMMC endpoint. See the crate documentation for the API
/// overview and the crate examples for usage.
pub struct Vmmc {
    system: Arc<ShrimpSystem>,
    node_index: usize,
    proc_: UserProc,
    shared: Arc<EndpointShared>,
    /// Lazily allocated completion flag word for remote fetches, plus
    /// the count of fetch chunks issued so far (the value the reply
    /// engine deposits on each completion).
    fetch_flag: Mutex<Option<(VAddr, u32)>>,
}

impl std::fmt::Debug for Vmmc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vmmc")
            .field("node", &self.node_index)
            .field("proc", &self.proc_.name())
            .finish()
    }
}

impl Vmmc {
    pub(crate) fn new(system: Arc<ShrimpSystem>, node_index: usize, proc_: UserProc) -> Vmmc {
        let shared = Arc::new(EndpointShared {
            handle: system.sim().clone(),
            state: Mutex::new(EpState {
                activity_waiters: Vec::new(),
                notify_waiters: Vec::new(),
                notify_blocked: false,
                pending_notifies: VecDeque::new(),
                handlers: HashMap::new(),
                exports: HashMap::new(),
                ppage_to_buffer: HashMap::new(),
            }),
        });
        Vmmc {
            system,
            node_index,
            proc_,
            shared,
            fetch_flag: Mutex::new(None),
        }
    }

    /// The user process this endpoint belongs to (for memory operations).
    pub fn proc_(&self) -> &UserProc {
        &self.proc_
    }

    /// The node index this endpoint lives on.
    pub fn node_index(&self) -> usize {
        self.node_index
    }

    /// This node's mesh id.
    pub fn node_id(&self) -> NodeId {
        self.proc_.node().id()
    }

    /// The system this endpoint is part of.
    pub fn system(&self) -> &Arc<ShrimpSystem> {
        &self.system
    }

    /// The observability recorder attached to this endpoint's system,
    /// or `None` on the disabled fast path (one relaxed atomic load).
    /// User-level libraries use this to record [`shrimp_obs::Layer::User`]
    /// spans around their protocol phases.
    pub fn obs(&self) -> Option<Arc<shrimp_obs::Recorder>> {
        self.system.obs()
    }

    // ------------------------------------------------------------------
    // Import-export mappings
    // ------------------------------------------------------------------

    /// Export `[va, va+len)` as a receive buffer with the given options;
    /// returns the buffer name importers use. The local daemon pins the
    /// pages and enables them in the incoming page table.
    ///
    /// # Errors
    ///
    /// Fails if the range is not mapped writable in this process.
    pub fn export(
        &self,
        ctx: &Ctx,
        va: VAddr,
        len: usize,
        opts: ExportOpts,
    ) -> Result<BufferName, VmmcError> {
        ctx.advance(self.proc_.node().costs().os_export);
        let chunks = self.proc_.aspace().translate_range(va, len, true)?;
        // One page list, shared by the daemon record, the page registry,
        // and this endpoint's export table.
        let ppages: Arc<Vec<u64>> = Arc::new(chunks.iter().map(|(pa, _, _)| pa.page()).collect());
        let record = ExportRecord {
            ppages: Arc::clone(&ppages),
            first_offset: va.offset(),
            len,
            perms: opts.perms,
            read: opts.read,
        };
        let name = self
            .system
            .daemon(self.node_index)
            .register_export(record)?;
        self.system
            .registry
            .register_pages(self.node_index, &ppages, &self.shared);
        {
            let mut st = self.shared.state.lock();
            st.exports.insert(name, (va, len, Arc::clone(&ppages)));
            for &p in ppages.iter() {
                st.ppage_to_buffer.insert(p, name);
            }
            if let Some(h) = opts.handler {
                st.handlers.insert(name, h);
            }
        }
        if self.shared.state.lock().handlers.contains_key(&name) {
            self.system
                .daemon(self.node_index)
                .set_export_interrupt(name, true)
                .expect("export just registered");
        }
        Ok(name)
    }

    /// Destroy an export. Blocks until all pending messages using the
    /// mapping have been delivered (paper §2.1), then disables the pages.
    ///
    /// # Errors
    ///
    /// Fails if `name` was not exported by this endpoint.
    pub fn unexport(&self, ctx: &Ctx, name: BufferName) -> Result<(), VmmcError> {
        self.drain(ctx);
        ctx.advance(self.proc_.node().costs().os_export);
        let pages = {
            let mut st = self.shared.state.lock();
            let (_va, _len, pages) = st.exports.remove(&name).ok_or(VmmcError::UnknownBuffer {
                node: self.node_id(),
                name: name.0,
            })?;
            for p in pages.iter() {
                st.ppage_to_buffer.remove(p);
            }
            st.handlers.remove(&name);
            pages
        };
        self.system.daemon(self.node_index).unregister_export(name);
        self.system
            .registry
            .unregister_pages(self.node_index, &pages);
        Ok(())
    }

    /// Import the buffer `name` exported on `node`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer does not exist, permissions exclude this
    /// node, or the remote daemon is down
    /// ([`VmmcError::DaemonUnavailable`] — see [`Vmmc::import_retry`]).
    pub fn import(
        &self,
        ctx: &Ctx,
        node: NodeId,
        name: BufferName,
    ) -> Result<ImportHandle, VmmcError> {
        ctx.advance(self.proc_.node().costs().os_import);
        let info = self
            .system
            .daemon(node.0)
            .resolve_import(self.node_id(), name)?;
        Ok(ImportHandle {
            info: Arc::new(info),
            alive: Arc::new(AtomicBool::new(true)),
        })
    }

    /// Like [`Vmmc::import`], but rides out daemon outages: on
    /// [`VmmcError::DaemonUnavailable`] the call backs off (exponentially,
    /// per `policy`) and retries until the daemon answers or the policy's
    /// attempts are exhausted. Other errors surface immediately.
    ///
    /// # Errors
    ///
    /// [`VmmcError::Timeout`] once every attempt found the daemon down;
    /// otherwise as for [`Vmmc::import`].
    pub fn import_retry(
        &self,
        ctx: &Ctx,
        node: NodeId,
        name: BufferName,
        policy: shrimp_sim::RetryPolicy,
    ) -> Result<ImportHandle, VmmcError> {
        for attempt in 0..policy.attempts {
            match self.import(ctx, node, name) {
                Err(VmmcError::DaemonUnavailable { .. }) => {
                    ctx.advance(policy.timeout(attempt));
                }
                other => return other,
            }
        }
        Err(VmmcError::Timeout {
            op: "import",
            waited: policy.total_budget(),
        })
    }

    /// Destroy an import mapping. Blocks until pending messages are
    /// delivered; afterwards every clone of the handle is dead.
    pub fn unimport(&self, ctx: &Ctx, handle: &ImportHandle) {
        self.drain(ctx);
        ctx.advance(self.proc_.node().costs().os_export);
        handle.alive.store(false, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Deliberate update
    // ------------------------------------------------------------------

    /// Blocking deliberate-update send: transfer `len` bytes from local
    /// `src` into the imported buffer at byte `dst_off`. Returns when the
    /// source buffer is reusable and every packet is ordered into the
    /// network (in-order delivery is then guaranteed; §2.2).
    ///
    /// # Errors
    ///
    /// * [`VmmcError::Misaligned`] unless source address, destination
    ///   offset, and length are word-aligned (the hardware restriction);
    /// * [`VmmcError::OutOfRange`] if the transfer exceeds the buffer;
    /// * [`VmmcError::StaleImport`] after unimport;
    /// * [`VmmcError::Fault`] if the source range is not readable.
    pub fn send(
        &self,
        ctx: &Ctx,
        src: VAddr,
        dst: &ImportHandle,
        dst_off: usize,
        len: usize,
    ) -> Result<(), VmmcError> {
        self.send_inner(ctx, src, dst, dst_off, len, false)
    }

    /// Like [`Vmmc::send`], also requesting a destination notification on
    /// the final packet (the sender-specified interrupt flag).
    ///
    /// # Errors
    ///
    /// As for [`Vmmc::send`].
    pub fn send_notify(
        &self,
        ctx: &Ctx,
        src: VAddr,
        dst: &ImportHandle,
        dst_off: usize,
        len: usize,
    ) -> Result<(), VmmcError> {
        self.send_inner(ctx, src, dst, dst_off, len, true)
    }

    /// The non-blocking deliberate-update send (paper §2.2 mentions it;
    /// the compatibility libraries use only the blocking form). All
    /// transfer chunks are initiated immediately and the call returns a
    /// [`SendHandle`]; complete it with [`Vmmc::send_wait`]. Until then
    /// the source buffer must not be modified.
    ///
    /// The in-order guarantee is weaker than the blocking send's: later
    /// transfers initiated *after this call returns* may interleave with
    /// this one's chunks in the outgoing FIFO, which is exactly the
    /// complication the paper alludes to. Chunks of a single
    /// non-blocking send remain in order with each other.
    ///
    /// # Errors
    ///
    /// As for [`Vmmc::send`].
    pub fn send_nonblocking(
        &self,
        ctx: &Ctx,
        src: VAddr,
        dst: &ImportHandle,
        dst_off: usize,
        len: usize,
    ) -> Result<SendHandle, VmmcError> {
        let t0 = ctx.now();
        let costs = self.proc_.node().costs().clone();
        ctx.advance(costs.lib_call);
        if !dst.alive.load(Ordering::SeqCst) {
            return Err(VmmcError::StaleImport);
        }
        if dst_off + len > dst.len() {
            return Err(VmmcError::OutOfRange {
                offset: dst_off,
                len,
                buffer_len: dst.len(),
            });
        }
        if len == 0 {
            return Ok(SendHandle {
                outstanding: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            });
        }
        if !src.0.is_multiple_of(4)
            || !(dst.info().first_offset + dst_off).is_multiple_of(4)
            || !len.is_multiple_of(4)
        {
            return Err(VmmcError::Misaligned);
        }
        self.proc_.aspace().translate_range(src, len, false)?;
        ctx.advance(costs.eisa_pio_access * 2);

        // Count chunks, then fire them all; each decrements on injection.
        let nic = self.system.nic(self.node_index);
        // The causal id is allocated at the send syscall; every chunk
        // of this transfer carries it.
        let msg = nic.alloc_msg();
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < len {
            let cur = src.add(off);
            let (src_pa, _) = self.proc_.aspace().translate(cur, false)?;
            let n = (len - off)
                .min(PAGE_SIZE - cur.offset())
                .min(dst.bytes_to_page_end(dst_off + off));
            chunks.push(DuRequest {
                src: src_pa,
                dst_node: dst.node(),
                dst_paddr: dst.locate(dst_off + off),
                len: n,
                interrupt: false,
                msg,
            });
            off += n;
        }
        let outstanding = Arc::new(std::sync::atomic::AtomicUsize::new(chunks.len()));
        for req in chunks {
            let o = Arc::clone(&outstanding);
            let h = ctx.handle();
            let pid = ctx.pid();
            nic.du_transfer(req, move |_t| {
                o.fetch_sub(1, Ordering::SeqCst);
                h.unpark(pid);
            });
        }
        if let Some(rec) = self.system.obs() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node_index,
                layer: shrimp_obs::Layer::Endpoint,
                name: "send_nonblocking",
                start: t0,
                end: ctx.now(),
                bytes: len,
            });
        }
        Ok(SendHandle { outstanding })
    }

    /// Block until a non-blocking send's source buffer is reusable (all
    /// chunks handed to the network in order).
    pub fn send_wait(&self, ctx: &Ctx, handle: &SendHandle) {
        while handle.outstanding.load(Ordering::SeqCst) > 0 {
            ctx.park();
        }
    }

    fn send_inner(
        &self,
        ctx: &Ctx,
        src: VAddr,
        dst: &ImportHandle,
        dst_off: usize,
        len: usize,
        interrupt: bool,
    ) -> Result<(), VmmcError> {
        let t0 = ctx.now();
        let costs = self.proc_.node().costs().clone();
        ctx.advance(costs.lib_call);
        if !dst.alive.load(Ordering::SeqCst) {
            return Err(VmmcError::StaleImport);
        }
        if dst_off + len > dst.len() {
            return Err(VmmcError::OutOfRange {
                offset: dst_off,
                len,
                buffer_len: dst.len(),
            });
        }
        if len == 0 {
            return Ok(());
        }
        if !src.0.is_multiple_of(4)
            || !(dst.info().first_offset + dst_off).is_multiple_of(4)
            || !len.is_multiple_of(4)
        {
            return Err(VmmcError::Misaligned);
        }
        // Validate the whole source range up front (MMU protection).
        self.proc_.aspace().translate_range(src, len, false)?;

        // The two-access initiation sequence, decoded by the NIC on the
        // EISA bus.
        ctx.advance(costs.eisa_pio_access * 2);

        let nic = self.system.nic(self.node_index);
        // The causal id is allocated at the send syscall and carried by
        // every packet of the transfer (tentpole piece 1).
        let msg = nic.alloc_msg();
        let mut off = 0usize;
        while off < len {
            let cur = src.add(off);
            let (src_pa, _) = self.proc_.aspace().translate(cur, false)?;
            let src_run = PAGE_SIZE - cur.offset();
            let dst_run = dst.bytes_to_page_end(dst_off + off);
            let n = (len - off).min(src_run).min(dst_run);
            let req = DuRequest {
                src: src_pa,
                dst_node: dst.node(),
                dst_paddr: dst.locate(dst_off + off),
                len: n,
                interrupt: interrupt && off + n == len,
                msg,
            };
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = ctx.handle();
            let pid = ctx.pid();
            nic.du_transfer(req, move |_t| {
                f2.store(true, Ordering::SeqCst);
                h.unpark(pid);
            });
            while !flag.load(Ordering::SeqCst) {
                ctx.park();
            }
            off += n;
        }
        if let Some(rec) = self.system.obs() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node_index,
                layer: shrimp_obs::Layer::Endpoint,
                name: "send",
                start: t0,
                end: ctx.now(),
                bytes: len,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Remote fetch (one-sided read)
    // ------------------------------------------------------------------

    /// Blocking one-sided remote read: fetch `len` bytes starting at
    /// byte `src_off` of the imported buffer into local memory at
    /// `dst`. The local NIC emits a fetch descriptor; the exporting
    /// NIC validates the pages against its incoming page table (the
    /// export must have been made with [`ExportOpts::read`]), DMAs the
    /// data out of remote memory and streams reply packets back that
    /// deposit directly into `dst` — the exporting *processor* never
    /// runs. Completion is a monotone flag word the reply engine
    /// bumps ([`Vmmc::fetch_completions`]).
    ///
    /// # Errors
    ///
    /// * [`VmmcError::Misaligned`] unless destination address, source
    ///   offset, and length are word-aligned (the hardware restriction,
    ///   shared with deliberate update);
    /// * [`VmmcError::OutOfRange`] if the read exceeds the buffer;
    /// * [`VmmcError::StaleImport`] after unimport;
    /// * [`VmmcError::Fault`] if `dst` is not mapped writable;
    /// * [`VmmcError::FetchDenied`] if a target page is receive-disabled
    ///   or exported without read permission (transient when an injected
    ///   violation froze the page — the OS repair re-enables it; see
    ///   [`Vmmc::fetch_retry`]);
    /// * [`VmmcError::FetchUnmapped`] if a target page has no incoming
    ///   page-table entry at all;
    /// * [`VmmcError::DaemonUnavailable`] while the exporting node's
    ///   daemon is down.
    pub fn fetch(
        &self,
        ctx: &Ctx,
        dst: VAddr,
        src: &ImportHandle,
        src_off: usize,
        len: usize,
    ) -> Result<(), VmmcError> {
        let t0 = ctx.now();
        let costs = self.proc_.node().costs().clone();
        ctx.advance(costs.lib_call + costs.fetch_issue);
        if !src.alive.load(Ordering::SeqCst) {
            return Err(VmmcError::StaleImport);
        }
        if src_off + len > src.len() {
            return Err(VmmcError::OutOfRange {
                offset: src_off,
                len,
                buffer_len: src.len(),
            });
        }
        if len == 0 {
            return Ok(());
        }
        if !dst.0.is_multiple_of(4)
            || !(src.info().first_offset + src_off).is_multiple_of(4)
            || !len.is_multiple_of(4)
        {
            return Err(VmmcError::Misaligned);
        }
        // Validate the whole local reply range up front (MMU protection).
        self.proc_.aspace().translate_range(dst, len, true)?;

        // The two-access initiation sequence presenting the descriptor.
        ctx.advance(costs.eisa_pio_access * 2);

        let nic = self.system.nic(self.node_index);
        // One causal id for the whole read, carried by the request and
        // every reply packet.
        let msg = nic.alloc_msg();
        let mut off = 0usize;
        while off < len {
            let cur = dst.add(off);
            let (dst_pa, _) = self.proc_.aspace().translate(cur, true)?;
            let dst_run = PAGE_SIZE - cur.offset();
            let src_run = src.bytes_to_page_end(src_off + off);
            let n = (len - off).min(dst_run).min(src_run);
            let req = FetchRequest {
                src_node: src.node(),
                src_paddr: src.locate(src_off + off),
                len: n,
                dst_paddr: dst_pa.0,
                msg,
            };
            let (flag_va, seq) = self.fetch_flag_slot();
            let result: Arc<Mutex<Option<Result<SimTime, NakReason>>>> = Arc::new(Mutex::new(None));
            let r2 = Arc::clone(&result);
            let h = ctx.handle();
            let pid = ctx.pid();
            let writer = self.proc_.clone();
            nic.fetch(req, move |res| {
                // The reply engine's final deposit bumps the completion
                // flag word; user code may poll it like any other flag.
                let _ = writer.poke(flag_va, &seq.to_le_bytes());
                *r2.lock() = Some(res);
                h.unpark(pid);
            });
            let res = loop {
                let taken = result.lock().take();
                match taken {
                    Some(r) => break r,
                    None => ctx.park(),
                }
            };
            match res {
                Ok(_) => {}
                Err(NakReason::Unmapped { ppage }) => {
                    return Err(VmmcError::FetchUnmapped {
                        node: src.node(),
                        ppage,
                    });
                }
                Err(NakReason::Denied { ppage }) => {
                    return Err(VmmcError::FetchDenied {
                        node: src.node(),
                        ppage,
                    });
                }
                Err(NakReason::DaemonDown) => {
                    return Err(VmmcError::DaemonUnavailable { node: src.node() });
                }
            }
            off += n;
        }
        if let Some(rec) = self.system.obs() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node_index,
                layer: shrimp_obs::Layer::Endpoint,
                name: "fetch",
                start: t0,
                end: ctx.now(),
                bytes: len,
            });
        }
        Ok(())
    }

    /// Like [`Vmmc::fetch`], but rides out transient refusals: on
    /// [`VmmcError::FetchDenied`] (an injected violation froze the page;
    /// the OS repair re-enables it) or [`VmmcError::DaemonUnavailable`]
    /// the call backs off per `policy` and retries. Other errors surface
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`VmmcError::Timeout`] once every attempt was refused; otherwise
    /// as for [`Vmmc::fetch`].
    pub fn fetch_retry(
        &self,
        ctx: &Ctx,
        dst: VAddr,
        src: &ImportHandle,
        src_off: usize,
        len: usize,
        policy: shrimp_sim::RetryPolicy,
    ) -> Result<(), VmmcError> {
        for attempt in 0..policy.attempts {
            match self.fetch(ctx, dst, src, src_off, len) {
                Err(VmmcError::FetchDenied { .. } | VmmcError::DaemonUnavailable { .. }) => {
                    ctx.advance(policy.timeout(attempt));
                }
                other => return other,
            }
        }
        Err(VmmcError::Timeout {
            op: "fetch",
            waited: policy.total_budget(),
        })
    }

    /// The monotone fetch-completion count: how many fetch chunks this
    /// endpoint has completed, as deposited in the completion flag word
    /// by the reply engine. Zero before the first fetch.
    pub fn fetch_completions(&self) -> u32 {
        let va = match *self.fetch_flag.lock() {
            Some((va, _)) => va,
            None => return 0,
        };
        let b = self.proc_.peek(va, 4).expect("fetch flag word is mapped");
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    fn fetch_flag_slot(&self) -> (VAddr, u32) {
        let mut g = self.fetch_flag.lock();
        let (va, count) = g.get_or_insert_with(|| (self.proc_.alloc(4, CacheMode::WriteBack), 0));
        *count += 1;
        (*va, *count)
    }

    // ------------------------------------------------------------------
    // Automatic update
    // ------------------------------------------------------------------

    /// Bind `pages` local pages starting at `local_va` (page-aligned) to
    /// the imported buffer starting at byte `dst_off` (page-aligned
    /// within the export). The pages become write-through and every
    /// store to them propagates to the destination in hardware.
    ///
    /// # Errors
    ///
    /// * [`VmmcError::UnalignedBinding`] for non-page-aligned arguments;
    /// * [`VmmcError::OutOfRange`] if the window exceeds the buffer;
    /// * [`VmmcError::Fault`] if local pages are not mapped writable.
    #[allow(clippy::too_many_arguments)] // mirrors the VMMC call's signature
    pub fn bind_au(
        &self,
        ctx: &Ctx,
        local_va: VAddr,
        dst: &ImportHandle,
        dst_off: usize,
        pages: usize,
        combine: bool,
        dst_interrupt: bool,
    ) -> Result<AuBinding, VmmcError> {
        ctx.advance(self.proc_.node().costs().os_export);
        if !dst.alive.load(Ordering::SeqCst) {
            return Err(VmmcError::StaleImport);
        }
        if local_va.offset() != 0 || !(dst.info().first_offset + dst_off).is_multiple_of(PAGE_SIZE)
        {
            return Err(VmmcError::UnalignedBinding);
        }
        if dst_off + pages * PAGE_SIZE > dst.len() + (PAGE_SIZE - 1) {
            return Err(VmmcError::OutOfRange {
                offset: dst_off,
                len: pages * PAGE_SIZE,
                buffer_len: dst.len(),
            });
        }
        let aspace = self.proc_.aspace();
        let nic = self.system.nic(self.node_index);
        let mut local_ppages = Vec::with_capacity(pages);
        let mut local_vpages = Vec::with_capacity(pages);
        for i in 0..pages {
            let va = local_va.add(i * PAGE_SIZE);
            let (pa, _) = aspace.translate(va, true)?;
            aspace.set_cache_mode(va.page(), CacheMode::WriteThrough)?;
            let dst_abs = dst.info().first_offset + dst_off + i * PAGE_SIZE;
            let dst_ppage = dst.info().ppages[dst_abs / PAGE_SIZE];
            nic.opt().bind(
                pa.page(),
                OptEntry {
                    dst_node: dst.node(),
                    dst_ppage,
                    combine,
                    dst_interrupt,
                },
            );
            local_ppages.push(pa.page());
            local_vpages.push(va.page());
        }
        Ok(AuBinding {
            local_va,
            pages,
            local_ppages,
            local_vpages,
        })
    }

    /// Destroy an automatic-update binding: flushes any held combining
    /// packet, waits for in-flight traffic, unbinds the pages and
    /// restores them to write-back.
    pub fn unbind_au(&self, ctx: &Ctx, binding: AuBinding) {
        let nic = self.system.nic(self.node_index);
        nic.flush_combining();
        self.drain(ctx);
        ctx.advance(self.proc_.node().costs().os_export);
        for (&ppage, &vpage) in binding.local_ppages.iter().zip(&binding.local_vpages) {
            nic.opt().unbind(ppage);
            let _ = self
                .proc_
                .aspace()
                .set_cache_mode(vpage, CacheMode::WriteBack);
        }
    }

    // ------------------------------------------------------------------
    // Receive-side waiting and notifications
    // ------------------------------------------------------------------

    /// Wait until the word at `va` satisfies `pred`, first polling
    /// (`poll_budget` iterations), then blocking until incoming data
    /// activity, then polling again — the polling/blocking switch of
    /// paper §6. Returns the satisfying value.
    ///
    /// # Errors
    ///
    /// Fails if `va` is unmapped.
    pub fn wait_u32(
        &self,
        ctx: &Ctx,
        va: VAddr,
        poll_budget: usize,
        mut pred: impl FnMut(u32) -> bool,
    ) -> Result<u32, VmmcError> {
        loop {
            if let Some(v) = self.proc_.poll_u32(ctx, va, poll_budget, &mut pred)? {
                return Ok(v);
            }
            self.wait_activity(ctx, || {
                // Re-check after registering to close the wake-up race.
                matches!(self.proc_.poll_u32(ctx, va, 1, &mut pred), Ok(Some(_)))
            });
        }
    }

    /// Like [`Vmmc::wait_u32`], but give up at `deadline` — the bounded
    /// wait the serving layers need so a call into a crashed peer
    /// surfaces as a typed error instead of blocking forever.
    ///
    /// # Errors
    ///
    /// [`VmmcError::Timeout`] once virtual time reaches `deadline`
    /// without the predicate holding; fails if `va` is unmapped.
    pub fn wait_u32_deadline(
        &self,
        ctx: &Ctx,
        va: VAddr,
        poll_budget: usize,
        deadline: SimTime,
        mut pred: impl FnMut(u32) -> bool,
    ) -> Result<u32, VmmcError> {
        let start = ctx.now();
        let mut armed = false;
        loop {
            if let Some(v) = self.proc_.poll_u32(ctx, va, poll_budget, &mut pred)? {
                return Ok(v);
            }
            if ctx.now() >= deadline {
                return Err(VmmcError::Timeout {
                    op: "wait_u32",
                    waited: ctx.now().since(start),
                });
            }
            if !armed {
                // One scheduled wake at the deadline; spurious unparks
                // are latched, so the activity wait below re-checks.
                armed = true;
                let pid = ctx.pid();
                let h = ctx.handle();
                ctx.schedule_at(deadline, move || h.unpark(pid));
            }
            self.wait_activity(ctx, || {
                matches!(self.proc_.poll_u32(ctx, va, 1, &mut pred), Ok(Some(_)))
            });
        }
    }

    /// Block until any packet lands in one of this endpoint's exported
    /// pages. `recheck` runs after the waiter is registered; returning
    /// `true` skips the sleep (avoids the lost-wakeup race). Spurious
    /// returns are possible; callers loop.
    pub fn wait_activity(&self, ctx: &Ctx, recheck: impl FnOnce() -> bool) {
        {
            let mut st = self.shared.state.lock();
            st.activity_waiters.push(ctx.pid());
        }
        if recheck() {
            let mut st = self.shared.state.lock();
            st.activity_waiters.retain(|p| *p != ctx.pid());
            return;
        }
        ctx.park();
        let mut st = self.shared.state.lock();
        st.activity_waiters.retain(|p| *p != ctx.pid());
    }

    /// Block or unblock notifications. While blocked, notifications
    /// queue instead of waking the process (paper §2.3).
    pub fn set_notifications_blocked(&self, ctx: &Ctx, blocked: bool) {
        let to_wake: Vec<ProcessId> = {
            let mut st = self.shared.state.lock();
            st.notify_blocked = blocked;
            if !blocked && !st.pending_notifies.is_empty() {
                st.notify_waiters.drain(..).collect()
            } else {
                Vec::new()
            }
        };
        for pid in to_wake {
            ctx.unpark(pid);
        }
    }

    /// Consume one queued notification, blocking until one arrives (and
    /// notifications are unblocked). Charges the signal-delivery cost and
    /// runs the buffer's handler before returning the event.
    pub fn wait_notification(&self, ctx: &Ctx) -> NotifyEvent {
        loop {
            let ev = {
                let mut st = self.shared.state.lock();
                if st.notify_blocked {
                    None
                } else {
                    st.pending_notifies.pop_front()
                }
            };
            if let Some(ev) = ev {
                ctx.advance(self.proc_.node().costs().signal_delivery);
                self.run_handler(ctx, ev);
                return ev;
            }
            {
                let mut st = self.shared.state.lock();
                st.notify_waiters.push(ctx.pid());
            }
            ctx.park();
            let mut st = self.shared.state.lock();
            st.notify_waiters.retain(|p| *p != ctx.pid());
        }
    }

    /// Consume any queued notifications without blocking; returns how
    /// many handlers ran.
    pub fn poll_notifications(&self, ctx: &Ctx) -> usize {
        let mut n = 0;
        loop {
            let ev = {
                let mut st = self.shared.state.lock();
                if st.notify_blocked {
                    None
                } else {
                    st.pending_notifies.pop_front()
                }
            };
            match ev {
                None => return n,
                Some(ev) => {
                    ctx.advance(self.proc_.node().costs().signal_delivery);
                    self.run_handler(ctx, ev);
                    n += 1;
                }
            }
        }
    }

    fn run_handler(&self, ctx: &Ctx, ev: NotifyEvent) {
        // Take the handler out so it can borrow the endpoint if it wants.
        let handler = self.shared.state.lock().handlers.remove(&ev.buffer);
        if let Some(mut h) = handler {
            h(ctx, ev);
            self.shared
                .state
                .lock()
                .handlers
                .entry(ev.buffer)
                .or_insert(h);
        }
    }

    /// Wait until the whole machine has no packet in flight. Used by the
    /// unexport/unimport/unbind drains; stronger than strictly necessary
    /// (it waits for *all* traffic, not just this mapping's) but simple
    /// and correct.
    pub fn drain(&self, ctx: &Ctx) {
        let gap = self.proc_.node().costs().poll_gap;
        while !self.system.quiescent() {
            ctx.advance(gap);
        }
    }
}
