//! # shrimp-core — virtual memory-mapped communication (VMMC)
//!
//! This crate is the paper's primary contribution: a basic multicomputer
//! communication mechanism with extremely low latency and high bandwidth,
//! achieved by letting applications transfer data directly between two
//! virtual address spaces over the network (paper §2).
//!
//! The pieces:
//!
//! * [`ShrimpSystem`] — builds the whole machine (nodes, NICs, daemons,
//!   backplane, Ethernet) on a simulation kernel;
//! * [`Vmmc`] — the per-process user-level endpoint: import-export
//!   mappings, deliberate update ([`Vmmc::send`]), automatic update
//!   ([`Vmmc::bind_au`]), and notifications;
//! * [`Daemon`] — the trusted per-node mapping server;
//! * [`VmmcError`] — what can go wrong.
//!
//! ## A complete two-node transfer
//!
//! ```
//! use shrimp_sim::Kernel;
//! use shrimp_core::{ShrimpSystem, SystemConfig, ExportOpts};
//! use shrimp_node::CacheMode;
//! use shrimp_sim::SimChannel;
//!
//! let kernel = Kernel::new();
//! let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
//! let names: SimChannel<shrimp_core::BufferName> = SimChannel::new();
//!
//! let rx = system.endpoint(1, "receiver");
//! let tx = system.endpoint(0, "sender");
//!
//! let names2 = names.clone();
//! kernel.spawn("receiver", move |ctx| {
//!     let buf = rx.proc_().alloc(4096, CacheMode::WriteBack);
//!     let name = rx.export(ctx, buf, 4096, ExportOpts::default()).unwrap();
//!     names2.send(&ctx.handle(), name);
//!     // VMMC has no receive call: poll the tail word of the buffer.
//!     rx.wait_u32(ctx, buf.add(4092), 64, |v| v == 0xC0DE).unwrap();
//!     assert_eq!(rx.proc_().peek(buf, 5).unwrap(), b"hello");
//! });
//!
//! kernel.spawn("sender", move |ctx| {
//!     use shrimp_mesh::NodeId;
//!     let name = names.recv(ctx);
//!     let dst = tx.import(ctx, NodeId(1), name).unwrap();
//!     let src = tx.proc_().alloc(4096, CacheMode::WriteBack);
//!     tx.proc_().write(ctx, src, b"hello").unwrap();
//!     tx.proc_().write_u32(ctx, src.add(4092), 0xC0DE).unwrap();
//!     tx.send(ctx, src, &dst, 0, 4096).unwrap();
//! });
//!
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod daemon;
mod endpoint;
mod error;
mod system;

pub use daemon::{BufferName, Daemon, ExportPerms, ExportRecord, MappingInfo};
pub use endpoint::{
    AuBinding, ExportOpts, ImportHandle, NotifyEvent, NotifyHandler, SendHandle, Vmmc,
};
pub use error::VmmcError;
pub use system::{ShrimpSystem, SystemConfig, SystemReport};
