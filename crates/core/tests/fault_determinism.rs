//! Property: the fault engine is replay-deterministic. For any seed,
//! generating a plan twice yields identical schedules, and driving the
//! same workload under the same plan twice yields an identical fault
//! log (the event trace), identical final memory, and an identical
//! finishing time — the foundation of the chaos harness's
//! bit-identical-report guarantee.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, FaultPlan, FaultSpec, Kernel, RetryPolicy, SimChannel, SimDur};

const BUF: usize = 2 * PAGE_SIZE;
const CHUNKS: u32 = 4;

fn export_retry(vmmc: &Vmmc, ctx: &Ctx, va: VAddr, len: usize) -> BufferName {
    let policy = RetryPolicy::bootstrap();
    for attempt in 0..policy.attempts {
        match vmmc.export(ctx, va, len, ExportOpts::default()) {
            Ok(name) => return name,
            Err(VmmcError::DaemonUnavailable { .. }) if attempt + 1 < policy.attempts => {
                ctx.advance(policy.timeout(attempt));
            }
            Err(e) => panic!("export failed: {e}"),
        }
    }
    panic!("export retry budget exhausted");
}

/// One full run under `plan`: a chunked transfer with a completion
/// counter, surviving outages via the retry policies. Returns the
/// receiver's final memory, the rendered fault log, and the quiescence
/// time in picoseconds.
fn run_once(plan: &FaultPlan) -> (Vec<u8>, String, u64) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let log = system.apply_faults(plan);
    let names: SimChannel<BufferName> = SimChannel::new();
    let final_mem: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        let final_mem = Arc::clone(&final_mem);
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(BUF, CacheMode::WriteBack);
            let name = export_retry(&rx, ctx, buf, BUF);
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf.add(BUF - 4), 100_000, |v| v == CHUNKS)
                .unwrap();
            *final_mem.lock() = rx.proc_().peek(buf, BUF).unwrap();
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx
                .import_retry(ctx, NodeId(1), name, RetryPolicy::bootstrap())
                .unwrap();
            let src = tx.proc_().alloc(BUF, CacheMode::WriteBack);
            let counter = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let chunk = (BUF - PAGE_SIZE) / CHUNKS as usize;
            for i in 0..CHUNKS {
                tx.proc_().poke(src, &vec![i as u8 + 1; chunk]).unwrap();
                tx.send(ctx, src, &dst, i as usize * chunk, chunk).unwrap();
                tx.proc_().write_u32(ctx, counter, i + 1).unwrap();
                tx.send(ctx, counter, &dst, BUF - 4, 4).unwrap();
            }
        });
    }
    let end = kernel.run_until_quiescent().unwrap();
    let mem = final_mem.lock().clone();
    (mem, log.render(), (end - shrimp_sim::SimTime::ZERO).as_ps())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn identical_seed_and_plan_replay_identically(seed in any::<u64>(), heavy in any::<bool>()) {
        let horizon = SimDur::from_us(2_000.0);
        let spec = if heavy { FaultSpec::heavy(2, horizon) } else { FaultSpec::light(2, horizon) };

        // Generation is a pure function of (seed, spec).
        let a = FaultPlan::generate(seed, &spec);
        let b = FaultPlan::generate(seed, &spec);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.describe(), b.describe());

        // And the simulation is a pure function of the plan: identical
        // event trace, final memory, and finishing time.
        let (mem_a, trace_a, end_a) = run_once(&a);
        let (mem_b, trace_b, end_b) = run_once(&b);
        prop_assert_eq!(&mem_a, &mem_b, "final memory must replay identically");
        prop_assert_eq!(&trace_a, &trace_b, "event trace must replay identically");
        prop_assert_eq!(end_a, end_b, "quiescence time must replay identically");

        // The transfer itself survived the faults uncorrupted.
        let chunk = (BUF - PAGE_SIZE) / CHUNKS as usize;
        for i in 0..CHUNKS as usize {
            prop_assert!(
                mem_a[i * chunk..(i + 1) * chunk].iter().all(|&v| v == i as u8 + 1),
                "chunk {} corrupted under faults", i
            );
        }
    }
}
