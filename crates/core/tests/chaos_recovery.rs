//! End-to-end fault-injection recovery on the fully-wired prototype:
//! scripted fault plans driving the freeze-and-interrupt path, daemon
//! crash/restart re-validation, and import retry under outages.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_sim::{
    FaultEvent, FaultKind, FaultPlan, Kernel, RetryPolicy, SimChannel, SimDur, SimTime,
};

fn prototype() -> (Kernel, Arc<ShrimpSystem>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    (kernel, system)
}

fn at_us(us: f64) -> SimTime {
    SimTime::ZERO + SimDur::from_us(us)
}

/// An injected IPT violation freezes the receive datapath mid-transfer;
/// the automatic OS recovery repairs it and the workload completes with
/// the data intact — the full freeze-interrupt → repair traversal.
#[test]
fn injected_ipt_violation_recovers_via_freeze_interrupt() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    let n = 2 * PAGE_SIZE;

    // Sabotage node 1's IPT after the export (40 us) and import (500 us)
    // complete but before the sender's packets land.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: at_us(700.0),
        kind: FaultKind::IptViolation { node: 1 },
    }]);
    let log = system.apply_faults(&plan);

    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(n, CacheMode::WriteBack);
            let name = rx.export(ctx, buf, n, ExportOpts::default()).unwrap();
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf.add(n - 4), 64, |v| v == 0xD00D)
                .unwrap();
            let got = rx.proc_().peek(buf, n - 4).unwrap();
            assert_eq!(
                got,
                vec![0xABu8; n - 4],
                "no corruption through freeze/repair"
            );
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(n, CacheMode::WriteBack);
        let mut data = vec![0xABu8; n - 4];
        data.extend_from_slice(&0xD00Du32.to_le_bytes());
        // Pause so the sabotage lands before this transfer's packets.
        ctx.advance(SimDur::from_us(100.0));
        tx.proc_().write(ctx, src, &data).unwrap();
        tx.send(ctx, src, &dst, 0, n).unwrap();
    });
    kernel.run_until_quiescent().unwrap();

    // The violation was observed and repaired.
    assert!(!system.violations().is_empty(), "freeze path must trigger");
    assert!(!system.nic(1).is_frozen(), "recovery unfroze the datapath");
    let rendered = log.render();
    assert!(rendered.contains("ipt-violation"), "log: {rendered}");
    assert!(rendered.contains("freeze node=1"), "log: {rendered}");
    assert!(rendered.contains("repair node=1"), "log: {rendered}");
}

/// A daemon crash mid-run: imports fail typed during the outage, the
/// bootstrap retry policy rides it out, and restart re-validates the
/// export so traffic then flows normally.
#[test]
fn daemon_crash_outage_is_survived_by_import_retry() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    let probe = system.endpoint(2, "probe");

    // Crash after the export completes (40 us) so the outage hits the
    // import paths, not the export itself.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: at_us(100.0),
        kind: FaultKind::DaemonCrash {
            node: 1,
            downtime: SimDur::from_us(8_000.0),
        },
    }]);
    let log = system.apply_faults(&plan);

    let got = Arc::new(Mutex::new(None::<VmmcError>));
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf, 64, |v| v == 7).unwrap();
        });
    }
    {
        // A bare import during the outage sees the typed error.
        let g = Arc::clone(&got);
        let names = names.clone();
        kernel.spawn("probe", move |ctx| {
            let name = names.recv(ctx);
            ctx.advance(SimDur::from_us(100.0)); // well inside the outage
            *g.lock() = probe.import(ctx, NodeId(1), name).err();
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        ctx.advance(SimDur::from_us(100.0));
        // Retry with backoff outlives the 8 ms outage.
        let dst = tx
            .import_retry(ctx, NodeId(1), name, RetryPolicy::bootstrap())
            .unwrap();
        let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        tx.proc_().write_u32(ctx, src, 7).unwrap();
        tx.send(ctx, src, &dst, 0, 4).unwrap();
    });
    kernel.run_until_quiescent().unwrap();

    assert!(
        matches!(got.lock().clone(), Some(VmmcError::DaemonUnavailable { node }) if node == NodeId(1))
    );
    assert_eq!(system.daemon(1).restarts(), 1);
    assert!(!system.daemon(1).is_down());
    let rendered = log.render();
    assert!(rendered.contains("daemon-crash"), "log: {rendered}");
    assert!(
        rendered.contains("daemon-restart node=1"),
        "log: {rendered}"
    );
}

/// Exhausting the retry policy during a long outage surfaces a typed
/// timeout whose budget matches the policy.
#[test]
fn import_retry_times_out_when_outage_outlasts_policy() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");

    // Outage starting after the export, far longer than the policy's
    // total budget.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: at_us(100.0),
        kind: FaultKind::DaemonCrash {
            node: 1,
            downtime: SimDur::from_us(1_000_000.0),
        },
    }]);
    system.apply_faults(&plan);

    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
        });
    }
    let seen = Arc::new(Mutex::new(None));
    {
        let seen = Arc::clone(&seen);
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            ctx.advance(SimDur::from_us(50.0));
            let policy = RetryPolicy::new(3, SimDur::from_us(1_000.0), SimDur::from_us(4_000.0));
            *seen.lock() = Some(tx.import_retry(ctx, NodeId(1), name, policy));
        });
    }
    kernel.run_until_quiescent().unwrap();
    let outcome = seen.lock().take().expect("tx ran");
    match outcome {
        Err(VmmcError::Timeout { op, waited }) => {
            assert_eq!(op, "import");
            assert_eq!(
                waited,
                SimDur::from_us(1_000.0) + SimDur::from_us(2_000.0) + SimDur::from_us(4_000.0)
            );
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

/// Mesh faults (link stall + brownout) plus a DMA stall only delay a
/// bulk transfer: every byte still lands, in order, and the machine
/// shuts down clean.
#[test]
fn delay_faults_preserve_data_and_ordering() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    let n = 4 * PAGE_SIZE;

    let plan = FaultPlan::scripted(vec![
        FaultEvent {
            at: at_us(20.0),
            kind: FaultKind::LinkStall {
                node: 0,
                dur: SimDur::from_us(300.0),
            },
        },
        FaultEvent {
            at: at_us(30.0),
            kind: FaultKind::Brownout {
                factor: 3.0,
                dur: SimDur::from_us(500.0),
            },
        },
        FaultEvent {
            at: at_us(40.0),
            kind: FaultKind::DmaStall {
                node: 1,
                dur: SimDur::from_us(400.0),
            },
        },
    ]);
    system.apply_faults(&plan);

    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(n, CacheMode::WriteBack);
            let name = rx.export(ctx, buf, n, ExportOpts::default()).unwrap();
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf.add(n - 4), 64, |v| v == 0xBEEF)
                .unwrap();
            let got = rx.proc_().peek(buf, n - 4).unwrap();
            let want: Vec<u8> = (0..n - 4).map(|i| (i % 251) as u8).collect();
            assert_eq!(got, want, "delays must never corrupt data");
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(n, CacheMode::WriteBack);
        let mut data: Vec<u8> = (0..n - 4).map(|i| (i % 251) as u8).collect();
        data.extend_from_slice(&0xBEEFu32.to_le_bytes());
        tx.proc_().write(ctx, src, &data).unwrap();
        tx.send(ctx, src, &dst, 0, n).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(
        system.violations().is_empty(),
        "delay faults cause no violations"
    );
    assert!(system.quiescent(), "clean shutdown");
}
