//! Integration tests of the VMMC layer on the fully-wired prototype:
//! import-export protection, deliberate and automatic update, ordering,
//! notifications, and mapping teardown.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{
    BufferName, ExportOpts, ExportPerms, ShrimpSystem, SystemConfig, Vmmc, VmmcError,
};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, Kernel, SimChannel, SimDur};

fn prototype() -> (Kernel, Arc<ShrimpSystem>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    (kernel, system)
}

/// Receiver exports one buffer and publishes its name; sender imports.
fn export_one(rx: &Vmmc, ctx: &Ctx, bytes: usize, names: &SimChannel<BufferName>) -> VAddr {
    let buf = rx.proc_().alloc(bytes, CacheMode::WriteBack);
    let name = rx.export(ctx, buf, bytes, ExportOpts::default()).unwrap();
    names.send(&ctx.handle(), name);
    buf
}

#[test]
fn deliberate_update_transfers_across_pages() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    let n = 3 * PAGE_SIZE + 512;

    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = export_one(&rx, ctx, n, &names);
            rx.wait_u32(ctx, buf.add(n - 4), 64, |v| v == 0xFEED)
                .unwrap();
            let got = rx.proc_().peek(buf, n - 4).unwrap();
            let want: Vec<u8> = (0..n - 4).map(|i| (i % 241) as u8).collect();
            assert_eq!(got, want);
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(n, CacheMode::WriteBack);
        let mut data: Vec<u8> = (0..n - 4).map(|i| (i % 241) as u8).collect();
        data.extend_from_slice(&0xFEEDu32.to_le_bytes());
        tx.proc_().write(ctx, src, &data).unwrap();
        tx.send(ctx, src, &dst, 0, n).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn send_rejects_misalignment_out_of_range_and_stale() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let _buf = export_one(&rx, ctx, PAGE_SIZE, &names);
            // Stay alive long enough for the sender to finish.
            ctx.advance(SimDur::from_us(50_000.0));
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(2 * PAGE_SIZE, CacheMode::WriteBack);

        assert!(matches!(
            tx.send(ctx, src.add(2), &dst, 0, 8),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            tx.send(ctx, src, &dst, 2, 8),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            tx.send(ctx, src, &dst, 0, 6),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            tx.send(ctx, src, &dst, PAGE_SIZE - 4, 8),
            Err(VmmcError::OutOfRange { .. })
        ));
        // Zero-length send is a no-op.
        tx.send(ctx, src, &dst, 0, 0).unwrap();

        tx.unimport(ctx, &dst);
        assert!(matches!(
            tx.send(ctx, src, &dst, 0, 8),
            Err(VmmcError::StaleImport)
        ));
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn import_permission_denied_for_excluded_node() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(
                    ctx,
                    buf,
                    PAGE_SIZE,
                    ExportOpts {
                        perms: ExportPerms::Nodes(vec![NodeId(2)]),
                        handler: None,
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let err = tx.import(ctx, NodeId(1), name).unwrap_err();
        assert!(matches!(err, VmmcError::PermissionDenied { .. }));
        let err = tx.import(ctx, NodeId(1), BufferName(999)).unwrap_err();
        assert!(matches!(err, VmmcError::UnknownBuffer { .. }));
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn automatic_update_binding_propagates_stores() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = export_one(&rx, ctx, 2 * PAGE_SIZE, &names);
            rx.wait_u32(ctx, buf.add(128 + 60), 64, |v| v == 77)
                .unwrap();
            assert_eq!(rx.proc_().peek(buf.add(128), 60).unwrap(), vec![9u8; 60]);
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let send_buf = tx.proc_().alloc(2 * PAGE_SIZE, CacheMode::WriteBack);
        let binding = tx.bind_au(ctx, send_buf, &dst, 0, 2, true, false).unwrap();
        // Ordinary stores now propagate: no explicit send operation.
        tx.proc_()
            .write(ctx, send_buf.add(128), &[9u8; 60])
            .unwrap();
        tx.proc_()
            .write_u32(ctx, send_buf.add(128 + 60), 77)
            .unwrap();
        tx.unbind_au(ctx, binding);
        // After unbind, stores stay local.
        tx.proc_().write_u32(ctx, send_buf, 0xDEAD).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn au_then_du_control_after_data_ordering() {
    // The pattern every library relies on: transfer data, then control
    // information; in-order delivery means the flag's arrival implies the
    // data's.
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = export_one(&rx, ctx, PAGE_SIZE, &names);
            for round in 1..=20u32 {
                rx.wait_u32(ctx, buf.add(PAGE_SIZE - 4), 64, |v| v == round)
                    .unwrap();
                // Flag arrived: the 256 bytes of data must be complete.
                let got = rx.proc_().peek(buf, 256).unwrap();
                assert_eq!(got, vec![round as u8; 256], "round {round}");
            }
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        let flag_src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        for round in 1..=20u32 {
            tx.proc_().write(ctx, src, &vec![round as u8; 256]).unwrap();
            tx.send(ctx, src, &dst, 0, 256).unwrap();
            tx.proc_().write_u32(ctx, flag_src, round).unwrap();
            tx.send(ctx, flag_src, &dst, PAGE_SIZE - 4, 4).unwrap();
        }
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn notification_handler_runs_with_signal_semantics() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    let handled = Arc::new(Mutex::new(Vec::new()));
    {
        let names = names.clone();
        let handled = Arc::clone(&handled);
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let h2 = Arc::clone(&handled);
            let name = rx
                .export(
                    ctx,
                    buf,
                    PAGE_SIZE,
                    ExportOpts {
                        perms: ExportPerms::Any,
                        handler: Some(Box::new(move |_ctx, ev| h2.lock().push(ev.buffer))),
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
            // Block while the first message arrives: it must queue.
            rx.set_notifications_blocked(ctx, true);
            ctx.advance(SimDur::from_us(3_000.0));
            assert!(handled.lock().is_empty(), "notification ran while blocked");
            rx.set_notifications_blocked(ctx, false);
            let ev = rx.wait_notification(ctx);
            assert_eq!(ev.buffer, name);
            assert_eq!(handled.lock().len(), 1);
            // Second notification consumed by polling.
            let ev2 = rx.wait_notification(ctx);
            assert_eq!(ev2.buffer, name);
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        tx.send_notify(ctx, src, &dst, 0, 64).unwrap();
        ctx.advance(SimDur::from_us(5_000.0));
        tx.send_notify(ctx, src, &dst, 0, 64).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn unexport_disables_pages_and_subsequent_sends_violate() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let done: SimChannel<()> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        let done = done.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = export_one(&rx, ctx, PAGE_SIZE, &names);
            // Wait for the first message, then tear down.
            rx.wait_u32(ctx, buf, 64, |v| v == 1).unwrap();
            let name_of = {
                // find our export name: it was sent over the channel, so
                // recompute via a second export is unnecessary; instead
                // the sender echoes the name back through `done` timing.
                // Simpler: re-export is avoided; unexport takes the name
                // we still hold.
                buf
            };
            let _ = name_of;
            done.send(&ctx.handle(), ());
        });
    }
    {
        let sys = Arc::clone(&system);
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            tx.proc_().write_u32(ctx, src, 1).unwrap();
            tx.send(ctx, src, &dst, 0, 4).unwrap();
            done.recv(ctx);
            // The receiver endpoint drops its export when its process
            // ends; emulate the raced late send by disabling via daemon.
            sys.daemon(1).unregister_export(name).unwrap();
            tx.send(ctx, src, &dst, 0, 4).unwrap();
            // Give the violation time to surface.
            ctx.advance(SimDur::from_us(2_000.0));
        });
    }
    kernel.run_until_quiescent().unwrap();
    let v = system.violations();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].0, NodeId(1));
}

#[test]
fn explicit_unexport_waits_for_pending_traffic() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf, 64, |v| v == 42).unwrap();
            // Unexport drains in-flight traffic before disabling pages.
            rx.unexport(ctx, name).unwrap();
            assert!(rx.unexport(ctx, name).is_err());
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        tx.proc_().write_u32(ctx, src, 42).unwrap();
        tx.send(ctx, src, &dst, 0, PAGE_SIZE).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn bidirectional_au_ping_pong() {
    // The specialized-RPC pattern: both sides bind AU windows to each
    // other and communicate purely with stores.
    let (kernel, system) = prototype();
    let names_a: SimChannel<BufferName> = SimChannel::new();
    let names_b: SimChannel<BufferName> = SimChannel::new();
    let a = system.endpoint(0, "a");
    let b = system.endpoint(3, "b");
    const ROUNDS: u32 = 10;
    {
        let names_a = names_a.clone();
        let names_b = names_b.clone();
        kernel.spawn("a", move |ctx| {
            let recv = a.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = a
                .export(ctx, recv, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names_a.send(&ctx.handle(), name);
            let peer = names_b.recv(ctx);
            let dst = a.import(ctx, NodeId(3), peer).unwrap();
            let send = a.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let _bind = a.bind_au(ctx, send, &dst, 0, 1, true, false).unwrap();
            for i in 1..=ROUNDS {
                a.proc_().write_u32(ctx, send, i).unwrap();
                a.wait_u32(ctx, recv, 64, |v| v == i).unwrap();
            }
        });
    }
    kernel.spawn("b", move |ctx| {
        let recv = b.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        let name = b
            .export(ctx, recv, PAGE_SIZE, ExportOpts::default())
            .unwrap();
        names_b.send(&ctx.handle(), name);
        let peer = names_a.recv(ctx);
        let dst = b.import(ctx, NodeId(0), peer).unwrap();
        let send = b.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        let _bind = b.bind_au(ctx, send, &dst, 0, 1, true, false).unwrap();
        for i in 1..=ROUNDS {
            b.wait_u32(ctx, recv, 64, |v| v == i).unwrap();
            b.proc_().write_u32(ctx, send, i).unwrap();
        }
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn au_binding_rejects_unaligned_windows() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let rx = system.endpoint(1, "rx");
    let tx = system.endpoint(0, "tx");
    {
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let _ = export_one(&rx, ctx, 2 * PAGE_SIZE, &names);
        });
    }
    kernel.spawn("tx", move |ctx| {
        let name = names.recv(ctx);
        let dst = tx.import(ctx, NodeId(1), name).unwrap();
        let send = tx.proc_().alloc(2 * PAGE_SIZE, CacheMode::WriteBack);
        assert!(matches!(
            tx.bind_au(ctx, send.add(16), &dst, 0, 1, true, false),
            Err(VmmcError::UnalignedBinding)
        ));
        assert!(matches!(
            tx.bind_au(ctx, send, &dst, 100, 1, true, false),
            Err(VmmcError::UnalignedBinding)
        ));
        assert!(matches!(
            tx.bind_au(ctx, send, &dst, 0, 5, true, false),
            Err(VmmcError::OutOfRange { .. })
        ));
    });
    kernel.run_until_quiescent().unwrap();
}
