//! The non-blocking deliberate-update send and the OS freeze-recovery
//! path.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_sim::{Kernel, SimChannel, SimDur};

#[test]
fn nonblocking_send_overlaps_computation() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();
    let timings: Arc<Mutex<(f64, f64)>> = Arc::new(Mutex::new((0.0, 0.0)));
    const LEN: usize = 16 * 1024;

    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(LEN, CacheMode::WriteBack);
            let name = rx.export(ctx, buf, LEN, ExportOpts::default()).unwrap();
            names.send(&ctx.handle(), name);
            rx.wait_u32(ctx, buf.add(LEN - 4), 100_000, |v| v == 0xD0E)
                .unwrap();
            assert_eq!(rx.proc_().peek(buf, 64).unwrap(), vec![0x42; 64]);
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        let timings = Arc::clone(&timings);
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(LEN, CacheMode::WriteBack);
            tx.proc_().poke(src, &vec![0x42; LEN - 4]).unwrap();
            tx.proc_()
                .poke(src.add(LEN - 4), &0xD0Eu32.to_le_bytes())
                .unwrap();

            // Blocking send: the application waits out the whole DMA.
            let t0 = ctx.now();
            tx.send(ctx, src, &dst, 0, LEN).unwrap();
            let blocking = (ctx.now() - t0).as_us();

            // Non-blocking: initiate, compute for a while, then wait.
            let t0 = ctx.now();
            let h = tx.send_nonblocking(ctx, src, &dst, 0, LEN).unwrap();
            let initiated = (ctx.now() - t0).as_us();
            ctx.advance(SimDur::from_us(1_000.0)); // overlapped compute
            tx.send_wait(ctx, &h);
            assert!(h.is_complete());
            let total = (ctx.now() - t0).as_us();

            *timings.lock() = (blocking, initiated);
            // With 1 ms of overlapped compute, the wait is nearly free.
            assert!(total < blocking + 1_000.0 + 50.0);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let (blocking, initiated) = *timings.lock();
    assert!(
        initiated < blocking / 3.0,
        "initiation {initiated:.0} us should be far below the blocking send {blocking:.0} us"
    );
}

#[test]
fn nonblocking_send_validates_like_blocking() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();
    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            use shrimp_core::VmmcError;
            assert!(matches!(
                tx.send_nonblocking(ctx, src.add(2), &dst, 0, 8),
                Err(VmmcError::Misaligned)
            ));
            assert!(matches!(
                tx.send_nonblocking(ctx, src, &dst, PAGE_SIZE - 4, 8),
                Err(VmmcError::OutOfRange { .. })
            ));
            // Zero-length completes instantly.
            let h = tx.send_nonblocking(ctx, src, &dst, 0, 0).unwrap();
            assert!(h.is_complete());
            tx.send_wait(ctx, &h);
        });
    }
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn os_repairs_frozen_receive_path() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();
    let sys2 = Arc::clone(&system);
    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
            ctx.advance(SimDur::from_us(60_000.0));
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        let sys = Arc::clone(&system);
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            tx.proc_().write_u32(ctx, src, 77).unwrap();
            tx.send(ctx, src, &dst, 0, 4).unwrap();
            // Simulate a raced unexport: the page gets disabled while a
            // second message is on the wire.
            sys.daemon(1).unregister_export(name).unwrap();
            tx.send(ctx, src, &dst, 0, 4).unwrap();
            ctx.advance(SimDur::from_us(3_000.0));
            // The receive path froze and the violation was recorded.
            assert!(sys.nic(1).is_frozen());
            assert_eq!(sys.violations().len(), 1);
            let (_, ppage) = sys.violations()[0];
            // OS decision: re-enable the page and resume.
            assert!(sys.repair_and_unfreeze(1, ppage));
            ctx.advance(SimDur::from_us(3_000.0));
            assert!(!sys.nic(1).is_frozen());
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(sys2.nic(1).stats().packets_in, 2);
}
