//! Notification semantics (paper §2.3): handlers per buffer, blocking
//! with queueing, and the interaction with polling.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ExportPerms, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_sim::{Kernel, SimChannel, SimDur};

#[test]
fn each_buffer_gets_its_own_handler() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<(BufferName, BufferName)> = SimChannel::new();
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        let log = Arc::clone(&log);
        kernel.spawn("rx", move |ctx| {
            let buf_a = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let buf_b = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let la = Arc::clone(&log);
            let name_a = rx
                .export(
                    ctx,
                    buf_a,
                    PAGE_SIZE,
                    ExportOpts {
                        perms: ExportPerms::Any,
                        handler: Some(Box::new(move |_ctx, _ev| la.lock().push("a"))),
                        ..Default::default()
                    },
                )
                .unwrap();
            let lb = Arc::clone(&log);
            let name_b = rx
                .export(
                    ctx,
                    buf_b,
                    PAGE_SIZE,
                    ExportOpts {
                        perms: ExportPerms::Any,
                        handler: Some(Box::new(move |_ctx, _ev| lb.lock().push("b"))),
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), (name_a, name_b));
            // Consume three notifications; handlers dispatch per buffer.
            for _ in 0..3 {
                rx.wait_notification(ctx);
            }
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        kernel.spawn("tx", move |ctx| {
            let (name_a, name_b) = names.recv(ctx);
            let a = tx.import(ctx, NodeId(1), name_a).unwrap();
            let b = tx.import(ctx, NodeId(1), name_b).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            tx.send_notify(ctx, src, &b, 0, 8).unwrap();
            ctx.advance(SimDur::from_us(2_000.0));
            tx.send_notify(ctx, src, &a, 0, 8).unwrap();
            ctx.advance(SimDur::from_us(2_000.0));
            tx.send_notify(ctx, src, &b, 0, 8).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(*log.lock(), vec!["b", "a", "b"]);
}

#[test]
fn notifications_without_a_handler_are_discarded() {
    // Paper §2.3: "notifications only take effect when a handler has
    // been specified."
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();
    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
            // Wait for the data itself; no notification must be queued.
            rx.wait_u32(ctx, buf, 1024, |v| v == 7).unwrap();
            assert_eq!(rx.poll_notifications(ctx), 0);
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            tx.proc_().write_u32(ctx, src, 7).unwrap();
            // Sender requests an interrupt, but the receiver never
            // attached a handler: the receiver-specified flag is clear.
            tx.send_notify(ctx, src, &dst, 0, 4).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn blocked_notifications_queue_in_arrival_order() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();
    let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let rx = system.endpoint(1, "rx");
        let names = names.clone();
        let seen = Arc::clone(&seen);
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = rx
                .export(
                    ctx,
                    buf,
                    PAGE_SIZE,
                    ExportOpts {
                        perms: ExportPerms::Any,
                        handler: Some(Box::new(|_ctx, _ev| {})),
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
            rx.set_notifications_blocked(ctx, true);
            // Let four notification-bearing messages arrive while blocked.
            ctx.advance(SimDur::from_us(20_000.0));
            rx.set_notifications_blocked(ctx, false);
            for _ in 0..4 {
                let ev = rx.wait_notification(ctx);
                // Record the data word present at delivery: each event
                // corresponds to one arrived message.
                let v = rx.proc_().peek(buf, 4).unwrap();
                seen.lock().push(u32::from_le_bytes(v.try_into().unwrap()));
                let _ = ev;
            }
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        kernel.spawn("tx", move |ctx| {
            let name = names.recv(ctx);
            let dst = tx.import(ctx, NodeId(1), name).unwrap();
            let src = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            for i in 1..=4u32 {
                tx.proc_().write_u32(ctx, src, i).unwrap();
                tx.send_notify(ctx, src, &dst, 0, 4).unwrap();
                ctx.advance(SimDur::from_us(1_000.0));
            }
        });
    }
    kernel.run_until_quiescent().unwrap();
    // All four queued while blocked, none lost.
    assert_eq!(seen.lock().len(), 4);
    // The buffer's final word is the last message by the time we look.
    assert!(seen.lock().iter().all(|&v| v == 4));
}
