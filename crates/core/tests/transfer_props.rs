//! Property tests for VMMC data transfer: arbitrary sequences of
//! deliberate-update sends into one exported buffer must leave exactly
//! the bytes sequential program order would.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_sim::{Kernel, SimChannel};

#[derive(Debug, Clone)]
struct Xfer {
    /// Word-aligned destination offset.
    dst_off: usize,
    /// Word-aligned length.
    len: usize,
    fill: u8,
}

const BUF: usize = 2 * PAGE_SIZE;

fn xfers() -> impl Strategy<Value = Vec<Xfer>> {
    proptest::collection::vec(
        (0usize..(BUF / 4 - 1), 1usize..512, any::<u8>()).prop_map(|(w, lw, fill)| {
            let dst_off = w * 4;
            let len = (lw * 4).min(BUF - dst_off);
            Xfer { dst_off, len, fill }
        }),
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn deliberate_updates_apply_in_program_order(xs in xfers()) {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let names: SimChannel<BufferName> = SimChannel::new();
        let final_mem: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        {
            let rx = system.endpoint(1, "rx");
            let names = names.clone();
            let final_mem = Arc::clone(&final_mem);
            let n_xfers = xs.len();
            kernel.spawn("rx", move |ctx| {
                let buf = rx.proc_().alloc(BUF, CacheMode::WriteBack);
                let name = rx.export(ctx, buf, BUF, ExportOpts::default()).unwrap();
                names.send(&ctx.handle(), name);
                // Wait for the sender's completion counter (last word).
                rx.wait_u32(ctx, buf.add(BUF - 4), 100_000, move |v| v == n_xfers as u32)
                    .unwrap();
                *final_mem.lock() = rx.proc_().peek(buf, BUF).unwrap();
            });
        }
        {
            let tx = system.endpoint(0, "tx");
            let xs = xs.clone();
            kernel.spawn("tx", move |ctx| {
                let name = names.recv(ctx);
                let dst = tx.import(ctx, NodeId(1), name).unwrap();
                let src = tx.proc_().alloc(BUF, CacheMode::WriteBack);
                let counter = tx.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
                for (i, x) in xs.iter().enumerate() {
                    tx.proc_().poke(src, &vec![x.fill; x.len]).unwrap();
                    tx.send(ctx, src, &dst, x.dst_off, x.len).unwrap();
                    // Completion counter after each transfer (in-order
                    // delivery makes it a valid commit point).
                    tx.proc_().write_u32(ctx, counter, i as u32 + 1).unwrap();
                    tx.send(ctx, counter, &dst, BUF - 4, 4).unwrap();
                }
            });
        }
        kernel.run_until_quiescent().unwrap();
        prop_assert!(system.violations().is_empty());

        // Sequential model.
        let mut expect = vec![0u8; BUF];
        for x in &xs {
            expect[x.dst_off..x.dst_off + x.len].fill(x.fill);
        }
        expect[BUF - 4..].copy_from_slice(&(xs.len() as u32).to_le_bytes());
        let got = final_mem.lock().clone();
        prop_assert_eq!(got, expect);
    }
}
