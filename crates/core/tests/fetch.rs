//! Integration tests of one-sided remote fetch on the fully-wired
//! prototype: data correctness across pages, the read-permission
//! protection model, the monotone completion flag word, and the
//! typed deny/unmapped/daemon-down errors.

use std::sync::Arc;

use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_sim::{Kernel, SimChannel, SimDur};

fn prototype() -> (Kernel, Arc<ShrimpSystem>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    (kernel, system)
}

#[test]
fn fetch_reads_remote_memory_across_pages() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let owner = system.endpoint(1, "owner");
    let reader = system.endpoint(0, "reader");
    let n = 2 * PAGE_SIZE + 512;

    {
        let names = names.clone();
        kernel.spawn("owner", move |ctx| {
            let buf = owner.proc_().alloc(n, CacheMode::WriteBack);
            let data: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
            owner.proc_().write(ctx, buf, &data).unwrap();
            let name = owner
                .export(
                    ctx,
                    buf,
                    n,
                    ExportOpts {
                        read: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
            // The owner never runs again — the read is one-sided.
            ctx.advance(SimDur::from_us(50_000.0));
        });
    }
    kernel.spawn("reader", move |ctx| {
        let name = names.recv(ctx);
        let src = reader.import(ctx, NodeId(1), name).unwrap();
        let dst = reader.proc_().alloc(n, CacheMode::WriteBack);
        assert_eq!(reader.fetch_completions(), 0);
        reader.fetch(ctx, dst, &src, 0, n).unwrap();
        let got = reader.proc_().peek(dst, n).unwrap();
        let want: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
        assert_eq!(got, want);
        // Three pages touched => at least three chunks completed, and
        // the flag word is monotone.
        let c1 = reader.fetch_completions();
        assert!(c1 >= 3, "completions {c1}");
        // A second, smaller fetch advances the flag word.
        reader.fetch(ctx, dst, &src, PAGE_SIZE, 64).unwrap();
        assert!(reader.fetch_completions() > c1);
        let got = reader.proc_().peek(dst, 64).unwrap();
        assert_eq!(got, want[PAGE_SIZE..PAGE_SIZE + 64]);
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn fetch_without_read_permission_is_denied_without_freezing() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let owner = system.endpoint(1, "owner");
    let reader = system.endpoint(0, "reader");

    {
        let names = names.clone();
        kernel.spawn("owner", move |ctx| {
            let buf = owner.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            // A plain export: writable by importers, but not readable.
            let name = owner
                .export(ctx, buf, PAGE_SIZE, ExportOpts::default())
                .unwrap();
            names.send(&ctx.handle(), name);
            ctx.advance(SimDur::from_us(50_000.0));
        });
    }
    let sys = Arc::clone(&system);
    kernel.spawn("reader", move |ctx| {
        let name = names.recv(ctx);
        let src = reader.import(ctx, NodeId(1), name).unwrap();
        let dst = reader.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
        let err = reader.fetch(ctx, dst, &src, 0, 64).unwrap_err();
        assert!(matches!(
            err,
            VmmcError::FetchDenied {
                node: NodeId(1),
                ..
            }
        ));
        // A read-never-granted page is refused, not frozen: the deny is
        // not a repairable protection fault.
        assert!(!sys.nic(1).is_frozen());
        // Deliberate update through the same mapping still works.
        reader.proc_().write(ctx, dst, b"still writable").unwrap();
        reader.send(ctx, dst, &src, 0, 16).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    let stats = system.report();
    assert!(stats.nics[1].fetch_denials >= 1);
}

#[test]
fn fetch_argument_errors_and_daemon_down() {
    let (kernel, system) = prototype();
    let names: SimChannel<BufferName> = SimChannel::new();
    let owner = system.endpoint(1, "owner");
    let reader = system.endpoint(0, "reader");

    {
        let names = names.clone();
        kernel.spawn("owner", move |ctx| {
            let buf = owner.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let name = owner
                .export(
                    ctx,
                    buf,
                    PAGE_SIZE,
                    ExportOpts {
                        read: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
            ctx.advance(SimDur::from_us(50_000.0));
        });
    }
    let sys = Arc::clone(&system);
    kernel.spawn("reader", move |ctx| {
        let name = names.recv(ctx);
        let src = reader.import(ctx, NodeId(1), name).unwrap();
        let dst = reader.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);

        assert!(matches!(
            reader.fetch(ctx, dst.add(2), &src, 0, 8),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            reader.fetch(ctx, dst, &src, 2, 8),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            reader.fetch(ctx, dst, &src, 0, 6),
            Err(VmmcError::Misaligned)
        ));
        assert!(matches!(
            reader.fetch(ctx, dst, &src, PAGE_SIZE - 4, 8),
            Err(VmmcError::OutOfRange { .. })
        ));
        reader.fetch(ctx, dst, &src, 0, 0).unwrap(); // no-op

        // While the remote daemon is down, the responding NIC refuses
        // with a typed NAK that surfaces as DaemonUnavailable.
        sys.daemon(1).crash();
        assert!(matches!(
            reader.fetch(ctx, dst, &src, 0, 64),
            Err(VmmcError::DaemonUnavailable { node: NodeId(1) })
        ));
        sys.daemon(1).restart();
        reader.fetch(ctx, dst, &src, 0, 64).unwrap();

        reader.unimport(ctx, &src);
        assert!(matches!(
            reader.fetch(ctx, dst, &src, 0, 8),
            Err(VmmcError::StaleImport)
        ));
    });
    kernel.run_until_quiescent().unwrap();
}
