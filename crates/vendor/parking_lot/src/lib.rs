//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API surface the workspace uses — a
//! [`Mutex`] whose `lock` returns the guard directly (no poisoning) and
//! a [`Condvar`] whose `wait` takes the guard by `&mut` — implemented
//! on top of `std::sync`. Poison errors are swallowed: a panicking
//! simulation process must not wedge every other lock user, which
//! matches parking_lot's semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling OS thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => unreachable!("std mutex poison with exclusive access"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds the std guard in an `Option` so [`Condvar::wait`]
/// can take it by `&mut` (parking_lot's signature) while std's wait
/// consumes and returns the guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
