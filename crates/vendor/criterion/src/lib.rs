//! Offline stand-in for the `criterion` crate.
//!
//! Provides the minimal harness API the workspace's `harness = false`
//! bench target uses: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `finish`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! runs `sample_size` timed iterations and reports mean wall-clock time
//! as plain text — no statistics, plots, or command-line parsing.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            0
        } else {
            b.total_ns / b.iters
        };
        println!("  {id}: {} iters, mean {} ns", b.iters, mean);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`iter`](Bencher::iter) times the
/// workload.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Prevent the optimizer from discarding a value (identity here; the
/// workloads in this workspace have observable side effects anyway).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
