//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! reimplements the subset of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, integer /
//! float range strategies, tuple strategies, `any::<T>()`,
//! `collection::vec`, `Just`, `prop_oneof!`, simple `[class]{lo,hi}`
//! string patterns, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   verbatim; cases are deterministic per (test name, case index), so
//!   a failure reproduces exactly on rerun.
//! * **Uniform `prop_oneof!`** (no weighted variants — none are used).
//! * Generation is driven by a fixed SplitMix64 stream, so a given
//!   binary explores the same cases on every run.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // 53 uniformly random mantissa bits in [0, 1).
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u01 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// `&str` strategies: a `[class]{lo,hi}` pattern generating strings
    /// over the character class (ranges like `a-z` plus literal chars; a
    /// trailing `-` is literal), the only regex shape this workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string pattern {self:?} (shim supports [class]{{lo,hi}})")
            });
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            (0..len)
                .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a > b {
                    return None;
                }
                chars.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((chars, lo, hi))
    }

    /// Strategy for [`crate::arbitrary::Arbitrary`] types ([`crate::arbitrary::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Blanket generation for primitive types.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            char::from_u32(0x20 + (rng.next_u64() % 95) as u32).unwrap()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` strategy: length drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case-generation machinery behind [`crate::proptest!`].

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    /// The name proptest exports this under.
    pub use Config as ProptestConfig;

    impl Config {
        /// Run `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed `prop_assert*` inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given reason.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64: deterministically seeded per (test name, case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test case; the same `(name, case)` pair always
        /// yields the same stream.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Everything a proptest-using file needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a proptest body, failing the case (not
/// panicking the closure) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), left, right
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real macro's surface as used in this workspace: an
/// optional leading `#![proptest_config(...)]`, doc comments / attributes
/// on each test, and `name(arg in strategy, ...)` signatures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..(__cfg.cases as u64) {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n  "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n  {}",
                            __case + 1, __cfg.cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_generates_class_members() {
        let mut rng = crate::test_runner::TestRng::deterministic("s", 1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9 _-]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _-".contains(c)));
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let gen = |case| {
            let mut rng = crate::test_runner::TestRng::deterministic("d", case);
            let strat = crate::collection::vec((0u32..100, any::<bool>()), 1..20);
            Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, prop_asserts propagate.
        #[test]
        fn macro_smoke(xs in crate::collection::vec(any::<u8>(), 0..10), n in 1usize..50) {
            prop_assert!(xs.len() < 10);
            prop_assert!(n >= 1 && n < 50);
            let pick = prop_oneof![Just(1u8), Just(2u8)];
            let mut rng = crate::test_runner::TestRng::deterministic("inner", n as u64);
            let v = Strategy::generate(&pick, &mut rng);
            prop_assert!(v == 1 || v == 2);
            prop_assert_eq!(xs.clone(), xs);
        }
    }
}
