//! End-to-end tests for the collective subsystem: every operation and
//! algorithm compared against a sequential host-side reference, over
//! rank counts 2–16 (power-of-two and not), mesh shapes, chunk sizes,
//! and payload sizes — plus determinism and misuse checks.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp_coll::{
    block_range, AllgatherAlg, AllreduceAlg, BarrierAlg, BcastAlg, CollConfig, CollError,
    CollWorld, ReduceAlg, ReduceOp, ReduceScatterAlg,
};
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::CacheMode;
use shrimp_sim::{Kernel, SplitMix64};

/// Per-rank outcome of one full workload pass.
#[derive(Debug, Clone, PartialEq)]
struct RankOut {
    bcast: Vec<u8>,
    allgather: Vec<u8>,
    reduce: Vec<u8>,
    allreduce: Vec<u8>,
    scatter_block: Vec<u8>,
    finish_ps: u64,
}

#[derive(Debug, Clone, Copy)]
struct Case {
    w: usize,
    h: usize,
    seed: u64,
    /// Payload bytes for broadcast / allgather.
    bytes: usize,
    /// 8-byte elements for the reductions.
    count: usize,
    chunk: usize,
    slots: usize,
    alt: bool,
    op: ReduceOp,
}

fn input_bytes(seed: u64, rank: usize, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Reduction inputs use small integer-valued lanes so every supported
/// op is exact and order-independent — algorithms may combine in any
/// association.
fn input_elems(seed: u64, rank: usize, count: usize, op: ReduceOp) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ (rank as u64).wrapping_mul(0xDEAD_BEEF));
    let mut out = Vec::with_capacity(count * 8);
    for _ in 0..count {
        let v = (rng.next_u64() % 201) as i64 - 100;
        match op {
            ReduceOp::SumF64 | ReduceOp::MaxF64 => out.extend((v as f64).to_le_bytes()),
            ReduceOp::SumI64 => out.extend(v.to_le_bytes()),
        }
    }
    out
}

fn fold_all(n: usize, seed: u64, count: usize, op: ReduceOp) -> Vec<u8> {
    let mut acc = input_elems(seed, 0, count, op);
    for r in 1..n {
        op.fold(&mut acc, &input_elems(seed, r, count, op));
    }
    acc
}

fn run_case(case: Case) -> Vec<RankOut> {
    let n = case.w * case.h;
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(case.w, case.h));
    let config = CollConfig {
        chunk_bytes: case.chunk,
        slots: case.slots,
        ..CollConfig::default()
    };
    let world = CollWorld::new(Arc::clone(&system), config, (0..n).collect());
    let outs: Arc<Mutex<Vec<(usize, RankOut)>>> = Arc::new(Mutex::new(Vec::new()));
    let root = (case.seed % n as u64) as usize;
    for rank in 0..n {
        let world = Arc::clone(&world);
        let outs = Arc::clone(&outs);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            let p = comm.vmmc().proc_().clone();
            let (bc_alg, rd_alg, ag_alg, rs_alg, ar_alg, ba_alg) = if case.alt {
                (
                    BcastAlg::Flat,
                    ReduceAlg::Flat,
                    AllgatherAlg::GatherBcast,
                    ReduceScatterAlg::Pairwise,
                    AllreduceAlg::RecursiveDoubling,
                    BarrierAlg::Tree,
                )
            } else {
                (
                    BcastAlg::Binomial,
                    ReduceAlg::Binomial,
                    AllgatherAlg::Ring,
                    ReduceScatterAlg::Ring,
                    AllreduceAlg::RingRsAg,
                    BarrierAlg::Dissemination,
                )
            };

            comm.barrier_with(ctx, ba_alg).unwrap();

            // Broadcast.
            let bbuf = p.alloc(case.bytes.max(4), CacheMode::WriteBack);
            if rank == root {
                p.poke(bbuf, &input_bytes(case.seed, root, case.bytes))
                    .unwrap();
            }
            comm.broadcast_with(ctx, root, bbuf, case.bytes, bc_alg)
                .unwrap();
            let bcast = p.peek(bbuf, case.bytes).unwrap();

            // Allgather (in place over the block partition).
            let gbuf = p.alloc(case.bytes.max(4), CacheMode::WriteBack);
            p.poke(gbuf, &input_bytes(case.seed, rank, case.bytes))
                .unwrap();
            comm.allgather_with(ctx, gbuf, case.bytes, ag_alg).unwrap();
            let allgather = p.peek(gbuf, case.bytes).unwrap();

            // Reduce to root.
            let rbuf = p.alloc((case.count * 8).max(4), CacheMode::WriteBack);
            p.poke(rbuf, &input_elems(case.seed, rank, case.count, case.op))
                .unwrap();
            comm.reduce_with(ctx, root, rbuf, case.count, case.op, rd_alg)
                .unwrap();
            let reduce = p.peek(rbuf, case.count * 8).unwrap();

            comm.barrier_with(ctx, ba_alg).unwrap();

            // Allreduce.
            p.poke(rbuf, &input_elems(case.seed, rank, case.count, case.op))
                .unwrap();
            comm.allreduce_with(ctx, rbuf, case.count, case.op, ar_alg)
                .unwrap();
            let allreduce = p.peek(rbuf, case.count * 8).unwrap();

            // Reduce-scatter.
            p.poke(rbuf, &input_elems(case.seed, rank, case.count, case.op))
                .unwrap();
            let (bs, bl) = comm
                .reduce_scatter_with(ctx, rbuf, case.count, case.op, rs_alg)
                .unwrap();
            let scatter_block = p.peek(rbuf.add(bs * 8), bl * 8).unwrap();

            comm.barrier_with(ctx, ba_alg).unwrap();
            outs.lock().push((
                rank,
                RankOut {
                    bcast,
                    allgather,
                    reduce,
                    allreduce,
                    scatter_block,
                    finish_ps: ctx.now().as_ps(),
                },
            ));
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let mut outs = Arc::try_unwrap(outs).unwrap().into_inner();
    outs.sort_by_key(|(r, _)| *r);
    assert_eq!(outs.len(), n);
    outs.into_iter().map(|(_, o)| o).collect()
}

fn check_case(case: Case) {
    let n = case.w * case.h;
    let outs = run_case(case);
    let root = (case.seed % n as u64) as usize;
    let expect_bcast = input_bytes(case.seed, root, case.bytes);
    let expect_gather: Vec<u8> = (0..n)
        .flat_map(|r| {
            let (s, l) = block_range(r, n, case.bytes);
            input_bytes(case.seed, r, case.bytes)[s..s + l].to_vec()
        })
        .collect();
    let expect_red = fold_all(n, case.seed, case.count, case.op);
    for (r, o) in outs.iter().enumerate() {
        assert_eq!(o.bcast, expect_bcast, "bcast rank {r} case {case:?}");
        assert_eq!(
            o.allgather, expect_gather,
            "allgather rank {r} case {case:?}"
        );
        assert_eq!(o.allreduce, expect_red, "allreduce rank {r} case {case:?}");
        if r == root {
            assert_eq!(o.reduce, expect_red, "reduce root case {case:?}");
        }
        let (s, l) = block_range(r, n, case.count);
        assert_eq!(
            o.scatter_block,
            expect_red[s * 8..(s + l) * 8].to_vec(),
            "reduce_scatter rank {r} case {case:?}"
        );
    }
}

#[test]
fn both_algorithm_families_on_the_prototype() {
    for alt in [false, true] {
        check_case(Case {
            w: 2,
            h: 2,
            seed: 11,
            bytes: 777,
            count: 65,
            chunk: 256,
            slots: 2,
            alt,
            op: ReduceOp::SumF64,
        });
    }
}

#[test]
fn sixteen_ranks_ring_family() {
    check_case(Case {
        w: 4,
        h: 4,
        seed: 5,
        bytes: 4096,
        count: 300,
        chunk: 512,
        slots: 2,
        alt: false,
        op: ReduceOp::SumI64,
    });
}

#[test]
fn non_power_of_two_ranks_both_families() {
    for (w, h, alt) in [(3, 2, false), (3, 2, true), (3, 3, false), (3, 3, true)] {
        check_case(Case {
            w,
            h,
            seed: 23,
            bytes: 500,
            count: 37,
            chunk: 128,
            slots: 2,
            alt,
            op: ReduceOp::MaxF64,
        });
    }
}

#[test]
fn single_rank_collectives_are_noops() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let world = CollWorld::new(Arc::clone(&system), CollConfig::default(), vec![2]);
    kernel.spawn("solo", move |ctx| {
        let mut comm = world.join(ctx, 0);
        let p = comm.vmmc().proc_().clone();
        let buf = p.alloc(64, CacheMode::WriteBack);
        p.poke(buf, &[7u8; 64]).unwrap();
        comm.barrier(ctx).unwrap();
        comm.broadcast(ctx, 0, buf, 64).unwrap();
        comm.allreduce(ctx, buf, 8, ReduceOp::SumI64).unwrap();
        assert_eq!(p.peek(buf, 64).unwrap(), vec![7u8; 64]);
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn flat_variants_rejected_without_all_pairs_channels() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let config = CollConfig {
        flat_limit: 2,
        ..CollConfig::default()
    };
    let world = CollWorld::new(Arc::clone(&system), config, (0..4).collect());
    for rank in 0..4 {
        let world = Arc::clone(&world);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            assert!(!comm.has_flat_channels());
            let p = comm.vmmc().proc_().clone();
            let buf = p.alloc(64, CacheMode::WriteBack);
            let err = comm
                .broadcast_with(ctx, 0, buf, 64, BcastAlg::Flat)
                .unwrap_err();
            assert!(matches!(err, CollError::Unsupported(_)));
            // The sparse geometry still serves the tree/ring family.
            comm.broadcast_with(ctx, 0, buf, 64, BcastAlg::Binomial)
                .unwrap();
            comm.barrier(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn same_seed_is_bit_identical_including_finish_times() {
    let case = Case {
        w: 4,
        h: 4,
        seed: 99,
        bytes: 2048,
        count: 200,
        chunk: 512,
        slots: 2,
        alt: false,
        op: ReduceOp::SumF64,
    };
    let a = run_case(case);
    let b = run_case(case);
    assert_eq!(a, b, "same seed must give identical results and timing");
}

fn mesh_shapes() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((1, 2)),
        Just((1, 3)),
        Just((2, 2)),
        Just((1, 5)),
        Just((2, 3)),
        Just((2, 4)),
        Just((3, 3)),
        Just((2, 5)),
        Just((3, 4)),
        Just((1, 13)),
        Just((2, 7)),
        Just((3, 5)),
        Just((4, 4)),
    ]
}

fn chunking() -> impl Strategy<Value = (usize, usize)> {
    // (chunk_bytes, payload cap): small chunks get small payloads to
    // bound simulated chunk counts.
    prop_oneof![Just((8, 64)), Just((64, 400)), Just((512, 2500))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn collectives_match_sequential_reference(
        wh in mesh_shapes(),
        ck in chunking(),
        seed in 0u64..1 << 48,
        frac in 0usize..101,
        slots in 2usize..4,
        alt in any::<bool>(),
        opsel in 0u8..3,
    ) {
        let (w, h) = wh;
        let (chunk, cap) = ck;
        let bytes = cap * frac / 100;
        let count = (cap / 8) * frac / 100;
        let op = match opsel {
            0 => ReduceOp::SumF64,
            1 => ReduceOp::SumI64,
            _ => ReduceOp::MaxF64,
        };
        check_case(Case { w, h, seed, bytes, count, chunk, slots, alt, op });
    }
}
