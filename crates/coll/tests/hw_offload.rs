//! In-network collective offload (`CollImpl::Hardware`) vs the software
//! algorithms: identical results, graceful fallback, and the latency win
//! that justifies putting a combining stage in the routers.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_coll::{CollConfig, CollImpl, CollWorld, ReduceOp};
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::{Mesh2D, TopologyRef, Torus2D};
use shrimp_node::CacheMode;
use shrimp_sim::Kernel;

/// Per-rank result of the mixed workload: allreduce output, broadcast
/// output, and the virtual time spent in the timed section.
#[derive(Debug, Clone, PartialEq)]
struct Out {
    allreduce: Vec<i64>,
    bcast: Vec<u8>,
    elapsed_ps: u64,
}

/// Run `rounds` of barrier + allreduce + broadcast on every rank and
/// collect outputs plus the timed-section length.
fn run(topo: TopologyRef, impl_: CollImpl, rounds: usize) -> Vec<Out> {
    let n = topo.len();
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_topology(topo));
    let config = CollConfig {
        impl_,
        ..CollConfig::default()
    };
    let world = CollWorld::new(Arc::clone(&system), config, (0..n).collect());
    let outs: Arc<Mutex<Vec<(usize, Out)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let world = Arc::clone(&world);
        let outs = Arc::clone(&outs);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            let p = comm.vmmc().proc_().clone();
            // Settle setup skew before timing.
            comm.barrier(ctx).unwrap();
            let t0 = ctx.now();
            let mut allreduce = Vec::new();
            let mut bcast = Vec::new();
            for round in 0..rounds {
                comm.barrier(ctx).unwrap();
                let vals: Vec<i64> = (0..4).map(|i| (rank * 10 + i + round) as i64).collect();
                allreduce = comm.allreduce_i64(ctx, &vals).unwrap();
                let buf = p.alloc(64, CacheMode::WriteBack);
                let root = round % n;
                if rank == root {
                    let payload: Vec<u8> = (0..64).map(|i| (round * 31 + i) as u8).collect();
                    p.write(ctx, buf, &payload).unwrap();
                }
                comm.broadcast(ctx, root, buf, 64).unwrap();
                // Broadcast roots complete at local injection; resync so
                // every rank reads the landed payload.
                comm.barrier(ctx).unwrap();
                bcast = p.read(ctx, buf, 64).unwrap();
            }
            let elapsed_ps = (ctx.now() - t0).as_ps();
            outs.lock().push((
                rank,
                Out {
                    allreduce,
                    bcast,
                    elapsed_ps,
                },
            ));
        });
    }
    kernel.run_until_quiescent().unwrap();
    let mut v = outs.lock().clone();
    assert_eq!(v.len(), n);
    v.sort_by_key(|(r, _)| *r);
    v.into_iter().map(|(_, o)| o).collect()
}

#[test]
fn hardware_matches_software_results() {
    for topo in [
        Arc::new(Mesh2D::new(4, 4)) as TopologyRef,
        Arc::new(Torus2D::new(4, 4)) as TopologyRef,
    ] {
        let name = topo.name();
        let sw = run(Arc::clone(&topo), CollImpl::Software, 3);
        let hw = run(topo, CollImpl::Hardware, 3);
        for (rank, (s, h)) in sw.iter().zip(&hw).enumerate() {
            assert_eq!(s.allreduce, h.allreduce, "{name} rank {rank} allreduce");
            assert_eq!(s.bcast, h.bcast, "{name} rank {rank} bcast");
        }
    }
}

#[test]
fn hardware_offload_engages_one_rank_per_node() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(2, 2));
    let config = CollConfig {
        impl_: CollImpl::Hardware,
        ..CollConfig::default()
    };
    let world = CollWorld::new(Arc::clone(&system), config, vec![0, 1, 2, 3]);
    let engaged = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..4 {
        let world = Arc::clone(&world);
        let engaged = Arc::clone(&engaged);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let comm = world.join(ctx, rank);
            engaged.lock().push(comm.uses_hardware());
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(*engaged.lock(), vec![true; 4]);
}

#[test]
fn hardware_falls_back_when_ranks_share_a_node() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(2, 2));
    let config = CollConfig {
        impl_: CollImpl::Hardware,
        ..CollConfig::default()
    };
    // Ranks 0 and 1 share node 0: the combining stage cannot tell them
    // apart by router, so the communicator must run software paths —
    // and still produce correct sums.
    let world = CollWorld::new(Arc::clone(&system), config, vec![0, 0, 1]);
    let outs = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..3 {
        let world = Arc::clone(&world);
        let outs = Arc::clone(&outs);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            assert!(!comm.uses_hardware());
            let sum = comm.allreduce_i64(ctx, &[rank as i64 + 1]).unwrap();
            outs.lock().push(sum[0]);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(*outs.lock(), vec![6, 6, 6]);
}

#[test]
fn hardware_beats_software_barrier_allreduce_at_8x8() {
    let sw = run(
        Arc::new(Mesh2D::new(8, 8)) as TopologyRef,
        CollImpl::Software,
        2,
    );
    let hw = run(
        Arc::new(Mesh2D::new(8, 8)) as TopologyRef,
        CollImpl::Hardware,
        2,
    );
    let sw_max = sw.iter().map(|o| o.elapsed_ps).max().unwrap();
    let hw_max = hw.iter().map(|o| o.elapsed_ps).max().unwrap();
    assert!(
        hw_max < sw_max,
        "in-network offload should beat software at 8x8: hw {hw_max} ps vs sw {sw_max} ps"
    );
}

#[test]
fn reduce_op_lanes_round_trip_through_hardware() {
    // MaxF64 through the combining stage, exact by construction.
    let topo: TopologyRef = Arc::new(Mesh2D::new(2, 2));
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_topology(topo));
    let config = CollConfig {
        impl_: CollImpl::Hardware,
        ..CollConfig::default()
    };
    let world = CollWorld::new(Arc::clone(&system), config, vec![0, 1, 2, 3]);
    let outs = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..4 {
        let world = Arc::clone(&world);
        let outs = Arc::clone(&outs);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            let p = comm.vmmc().proc_().clone();
            let vals = [rank as f64 * 1.5 - 2.0, 100.0 - rank as f64];
            let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let buf = p.alloc(16, CacheMode::WriteBack);
            p.write(ctx, buf, &raw).unwrap();
            comm.allreduce(ctx, buf, 2, ReduceOp::MaxF64).unwrap();
            let got = p.read(ctx, buf, 16).unwrap();
            let out: Vec<f64> = got
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            outs.lock().push(out);
        });
    }
    kernel.run_until_quiescent().unwrap();
    for out in outs.lock().iter() {
        assert_eq!(out, &vec![2.5, 100.0]);
    }
}
