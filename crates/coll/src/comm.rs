//! The communicator: persistent channel geometry and the chunk
//! primitives every collective is built from.
//!
//! At communicator creation each rank exports one *channel region* per
//! peer in its [`peer_set`](crate::geometry::peer_set) and imports the
//! matching regions its peers exported for it. All mappings are created
//! once and reused for the life of the communicator — a collective call
//! performs **zero** export/import traffic, only deliberate-update
//! sends into already-mapped memory (the design point the paper's
//! library protocols argue for).
//!
//! ## Channel protocol
//!
//! A channel `s → r` is one region exported by `r`, written only by
//! `s`:
//!
//! ```text
//! | slot 0 payload | … | slot S-1 payload | flag[0..S] | ack |
//! ```
//!
//! * **Flag-after-data**: the sender deliberate-updates the payload
//!   into slot `(seq-1) % S`, then sends the 4-byte flag word `= seq`.
//!   VMMC's in-order delivery guarantees the flag lands after the data,
//!   so the receiver polls one word.
//! * **Ack / flow control**: the `ack` word in region `s → r` is
//!   written by `s` and carries the highest `seq` that `s` has
//!   *consumed* from the reverse channel `r → s`. A sender of `seq`
//!   waits until `ack ≥ seq - S` before overwriting a slot, so `S = 2`
//!   slots double-buffer: the transfer of chunk `k+1` overlaps the
//!   receiver's local work (copy or reduction) on chunk `k`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ImportHandle, ShrimpSystem, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, UserProc, VAddr};
use shrimp_sim::{Ctx, Gate, RetryPolicy, SimDur};

use crate::geometry::{peer_set, RingOrder};
use crate::hw::{CollImpl, HwColl, HwGroupCache};

/// Tuning knobs for a communicator.
#[derive(Debug, Clone)]
pub struct CollConfig {
    /// Payload bytes per pipeline chunk (word multiple).
    pub chunk_bytes: usize,
    /// Pipeline depth per channel (2 = double buffering).
    pub slots: usize,
    /// All-pairs channels are built when `n ≤ flat_limit`, enabling the
    /// flat broadcast/reduce and pairwise reduce-scatter variants.
    pub flat_limit: usize,
    /// Spin polls before blocking in flag/ack waits.
    pub poll_budget: usize,
    /// Which engine executes collectives (see [`CollImpl`]).
    pub impl_: CollImpl,
}

impl Default for CollConfig {
    fn default() -> CollConfig {
        CollConfig {
            chunk_bytes: 2048,
            slots: 2,
            flat_limit: 16,
            poll_budget: 64,
            impl_: CollImpl::Software,
        }
    }
}

/// Collective-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollError {
    /// An underlying VMMC operation failed.
    Vmmc(VmmcError),
    /// A bounded setup wait gave up.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// Total virtual time spent waiting.
        waited: SimDur,
    },
    /// The requested algorithm needs channels this communicator did not
    /// build (all-pairs variants above `flat_limit`).
    Unsupported(&'static str),
}

impl std::fmt::Display for CollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollError::Vmmc(e) => write!(f, "vmmc: {e}"),
            CollError::Timeout { op, waited } => write!(f, "{op} timed out after {waited}"),
            CollError::Unsupported(what) => write!(f, "algorithm unavailable: {what}"),
        }
    }
}

impl std::error::Error for CollError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollError::Vmmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmmcError> for CollError {
    fn from(e: VmmcError) -> Self {
        CollError::Vmmc(e)
    }
}

impl From<shrimp_node::MemFault> for CollError {
    fn from(e: shrimp_node::MemFault) -> Self {
        CollError::Vmmc(VmmcError::from(e))
    }
}

/// Region layout helper.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChannelLayout {
    pub chunk: usize,
    pub slots: usize,
}

impl ChannelLayout {
    pub fn slot_off(&self, slot: usize) -> usize {
        slot * self.chunk
    }
    pub fn flag_off(&self, slot: usize) -> usize {
        self.slots * self.chunk + 4 * slot
    }
    pub fn ack_off(&self) -> usize {
        self.slots * self.chunk + 4 * self.slots
    }
    pub fn total(&self) -> usize {
        self.ack_off() + 4
    }
}

/// Both directions of the persistent channel pair with one peer.
pub(crate) struct Channel {
    /// Local region written by the peer (their payloads, flags, and the
    /// ack word for *our* sends to them).
    pub in_base: VAddr,
    /// Import of the peer's region for us (we write payloads, flags,
    /// and the ack word for *their* sends to us).
    pub out: ImportHandle,
    /// Word-aligned bounce buffer for unaligned chunk sources.
    pub staging: VAddr,
    /// 4-byte word staged for flag/ack sends.
    pub ctl_word: VAddr,
    /// Next sequence number we send.
    pub next_send: u32,
    /// Next sequence number we expect to receive.
    pub next_recv: u32,
}

/// Sequence comparison with wraparound (`a ≥ b`).
pub(crate) fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 >= 0
}

#[derive(Default)]
struct Published {
    /// Region exported by `to` for sender `from`, keyed `(from, to)`.
    names: HashMap<(usize, usize), BufferName>,
}

/// The communicator factory: one per job, shared by every rank's
/// process. Mirrors the NX loader's rendezvous role.
pub struct CollWorld {
    system: Arc<ShrimpSystem>,
    config: CollConfig,
    nodes: Vec<usize>,
    published: Mutex<Published>,
    joined: AtomicUsize,
    ready: Gate,
    /// Hardware spanning-tree cache shared by every rank (one tree per
    /// root node).
    hw_groups: HwGroupCache,
}

impl std::fmt::Debug for CollWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollWorld")
            .field("ranks", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl CollWorld {
    /// Create a world with one rank per entry of `nodes` (the node index
    /// each rank runs on).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, names an out-of-range node, or the
    /// configuration is malformed (chunk not a word multiple, zero
    /// slots).
    pub fn new(system: Arc<ShrimpSystem>, config: CollConfig, nodes: Vec<usize>) -> Arc<CollWorld> {
        assert!(!nodes.is_empty(), "a communicator needs at least one rank");
        assert!(
            config.chunk_bytes >= 4 && config.chunk_bytes.is_multiple_of(4),
            "chunk_bytes must be a positive word multiple"
        );
        assert!(config.slots >= 1, "need at least one slot");
        for &n in &nodes {
            assert!(n < system.len(), "node {n} out of range");
        }
        Arc::new(CollWorld {
            system,
            config,
            nodes,
            published: Mutex::new(Published::default()),
            joined: AtomicUsize::new(0),
            ready: Gate::new(),
            hw_groups: HwGroupCache::default(),
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty world (never constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.nodes[rank]
    }

    /// Infallible [`CollWorld::try_join`] with the bootstrap retry
    /// policy; creates a fresh process on the rank's node.
    ///
    /// # Panics
    ///
    /// Panics on setup failure.
    pub fn join(self: &Arc<Self>, ctx: &Ctx, rank: usize) -> CollComm {
        self.try_join(ctx, rank, RetryPolicy::bootstrap(), None)
            .expect("collective communicator setup")
    }

    /// Build rank `rank`'s communicator: export this rank's channel
    /// regions, rendezvous with every other rank, then import the
    /// peers' regions. `proc_` supplies an existing process whose
    /// address space the communicator should share (how NX layers its
    /// collectives over this crate); `None` creates a fresh process.
    ///
    /// # Errors
    ///
    /// [`CollError::Timeout`] if some rank never arrives within the
    /// policy's budget; mapping-establishment failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same rank or with an out-of-range
    /// rank (caller bugs, not runtime faults).
    pub fn try_join(
        self: &Arc<Self>,
        ctx: &Ctx,
        rank: usize,
        policy: RetryPolicy,
        proc_: Option<UserProc>,
    ) -> Result<CollComm, CollError> {
        assert!(rank < self.len(), "rank {rank} out of range");
        let node = self.node_of(rank);
        let vmmc = match proc_ {
            Some(p) => self.system.endpoint_on(node, p),
            None => self.system.endpoint(node, format!("coll-rank{rank}")),
        };
        let n = self.len();
        let me = rank;
        let topo = self.system.topology();
        let ring = RingOrder::new(topo.as_ref(), &self.nodes);
        let peers = peer_set(me, n, &ring, self.config.flat_limit);
        let layout = ChannelLayout {
            chunk: self.config.chunk_bytes,
            slots: self.config.slots,
        };

        // Phase 1: export one region per in-peer and publish the names.
        let mut in_bases: HashMap<usize, VAddr> = HashMap::new();
        for &peer in &peers {
            let base = vmmc.proc_().alloc(layout.total(), CacheMode::WriteBack);
            let name = export_retry(&vmmc, ctx, base, layout.total(), policy)?;
            self.published.lock().names.insert((peer, me), name);
            in_bases.insert(peer, base);
        }

        // Rendezvous, bounded like the NX loader's.
        if self.joined.fetch_add(1, Ordering::SeqCst) + 1 == n {
            self.ready.open(&ctx.handle());
        }
        if !self
            .ready
            .wait_deadline(ctx, ctx.now() + policy.total_budget())
        {
            return Err(CollError::Timeout {
                op: "communicator rendezvous",
                waited: policy.total_budget(),
            });
        }

        // Phase 2: import each peer's region for us.
        let mut channels: HashMap<usize, Channel> = HashMap::new();
        for &peer in &peers {
            let name = self.published.lock().names[&(me, peer)];
            let out = vmmc.import_retry(ctx, NodeId(self.node_of(peer)), name, policy)?;
            channels.insert(
                peer,
                Channel {
                    in_base: in_bases[&peer],
                    out,
                    staging: vmmc.proc_().alloc(layout.chunk, CacheMode::WriteBack),
                    ctl_word: vmmc.proc_().alloc(4, CacheMode::WriteBack),
                    next_send: 1,
                    next_recv: 1,
                },
            );
        }

        let hw = if self.config.impl_ == CollImpl::Hardware {
            HwColl::try_new(&self.system, &self.nodes, Arc::clone(&self.hw_groups))
        } else {
            None
        };

        Ok(CollComm {
            vmmc,
            rank: me,
            n,
            config: self.config.clone(),
            layout,
            ring,
            channels,
            has_flat: n <= self.config.flat_limit,
            scratch: None,
            hw,
        })
    }
}

/// [`Vmmc::export`] that rides out daemon outages with the policy's
/// backoff schedule, mirroring [`Vmmc::import_retry`].
fn export_retry(
    vmmc: &Vmmc,
    ctx: &Ctx,
    base: VAddr,
    len: usize,
    policy: RetryPolicy,
) -> Result<BufferName, CollError> {
    for attempt in 0..policy.attempts {
        match vmmc.export(ctx, base, len, ExportOpts::default()) {
            Err(VmmcError::DaemonUnavailable { .. }) => ctx.advance(policy.timeout(attempt)),
            other => return other.map_err(CollError::from),
        }
    }
    Err(CollError::Timeout {
        op: "channel export",
        waited: policy.total_budget(),
    })
}

/// One rank's collective communicator: the persistent geometry plus
/// the chunk engine. Created by [`CollWorld::try_join`]; all collective
/// operations live in [`crate::ops`].
pub struct CollComm {
    pub(crate) vmmc: Vmmc,
    pub(crate) rank: usize,
    pub(crate) n: usize,
    pub(crate) config: CollConfig,
    pub(crate) layout: ChannelLayout,
    pub(crate) ring: RingOrder,
    pub(crate) channels: HashMap<usize, Channel>,
    pub(crate) has_flat: bool,
    /// Lazily grown word-aligned buffer backing the value-based
    /// convenience calls (`allreduce_f64` etc.).
    pub(crate) scratch: Option<(VAddr, usize)>,
    /// The in-network engine handle when [`CollImpl::Hardware`] is
    /// selected and the rank layout supports it.
    pub(crate) hw: Option<HwColl>,
}

impl std::fmt::Debug for CollComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollComm")
            .field("rank", &self.rank)
            .field("n", &self.n)
            .field("channels", &self.channels.len())
            .finish_non_exhaustive()
    }
}

impl CollComm {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a single-rank communicator (trivially never: `new`
    /// accepts one rank, where every collective is a no-op).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The underlying VMMC endpoint (shared address space).
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Whether all-pairs channels exist (flat/pairwise variants work).
    pub fn has_flat_channels(&self) -> bool {
        self.has_flat
    }

    /// Payload bytes per pipeline chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.layout.chunk
    }

    /// Ranks in mesh snake order (`ring()[p]` = rank at position `p`).
    pub fn ring(&self) -> &[usize] {
        &self.ring.ring
    }

    fn chan(&mut self, peer: usize) -> &mut Channel {
        self.channels
            .get_mut(&peer)
            .unwrap_or_else(|| panic!("no channel to rank {peer}"))
    }

    /// Send one chunk (`len ≤ chunk_bytes`, may be 0 for a pure flag)
    /// to `peer`: wait for slot credit, deliberate-update the payload,
    /// then the flag word.
    pub(crate) fn send_chunk(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        src: VAddr,
        len: usize,
    ) -> Result<(), CollError> {
        debug_assert!(len <= self.layout.chunk);
        let layout = self.layout;
        let slots = layout.slots as u32;
        let poll = self.config.poll_budget;
        let ack_va = {
            let ch = self.chan(peer);
            ch.in_base.add(layout.ack_off())
        };
        let seq = self.chan(peer).next_send;
        // Flow control: never overwrite a slot the peer has not
        // consumed. The peer's acks for our sends arrive in *our* local
        // region (written by the peer).
        if seq_ge(seq, slots.wrapping_add(1)) {
            let need = seq.wrapping_sub(slots);
            self.vmmc.wait_u32(ctx, ack_va, poll, |v| seq_ge(v, need))?;
        }
        let slot = ((seq - 1) as usize) % layout.slots;
        let padded = (len + 3) & !3;
        let (src_va, staging, ctl) = {
            let ch = self.chan(peer);
            (src, ch.staging, ch.ctl_word)
        };
        if padded > 0 {
            let aligned = src_va.offset() % 4 == 0;
            let from = if aligned {
                src_va
            } else {
                // Word-align through the bounce buffer (timed copy).
                self.vmmc.proc_().copy(ctx, src_va, staging, len)?;
                staging
            };
            let out = &self.channels[&peer].out;
            self.vmmc
                .send(ctx, from, out, layout.slot_off(slot), padded)?;
        }
        // Flag after data: in-order delivery makes this the completion.
        self.vmmc.proc_().write_u32(ctx, ctl, seq)?;
        let out = &self.channels[&peer].out;
        self.vmmc.send(ctx, ctl, out, layout.flag_off(slot), 4)?;
        self.chan(peer).next_send = seq.wrapping_add(1);
        Ok(())
    }

    /// Receive one chunk from `peer`, handing the landed slot to
    /// `consume(slot_va)` before acknowledging it. `consume` copies or
    /// reduces out of the slot; the ack is only sent afterwards, so the
    /// sender can never overwrite data still being consumed.
    pub(crate) fn recv_chunk_with(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        consume: impl FnOnce(&mut Self, &Ctx, VAddr) -> Result<(), CollError>,
    ) -> Result<(), CollError> {
        let layout = self.layout;
        let poll = self.config.poll_budget;
        let (seq, in_base, ctl) = {
            let ch = self.chan(peer);
            (ch.next_recv, ch.in_base, ch.ctl_word)
        };
        let slot = ((seq - 1) as usize) % layout.slots;
        let flag_va = in_base.add(layout.flag_off(slot));
        self.vmmc.wait_u32(ctx, flag_va, poll, |v| seq_ge(v, seq))?;
        consume(self, ctx, in_base.add(layout.slot_off(slot)))?;
        // Ack through the reverse channel's region on the peer.
        self.vmmc.proc_().write_u32(ctx, ctl, seq)?;
        let out = &self.channels[&peer].out;
        self.vmmc.send(ctx, ctl, out, layout.ack_off(), 4)?;
        self.chan(peer).next_recv = seq.wrapping_add(1);
        Ok(())
    }

    /// Receive one chunk from `peer` into `dst` (`len` bytes).
    pub(crate) fn recv_chunk(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        dst: VAddr,
        len: usize,
    ) -> Result<(), CollError> {
        self.recv_chunk_with(ctx, peer, |comm, ctx, slot_va| {
            if len > 0 {
                comm.vmmc.proc_().copy(ctx, slot_va, dst, len)?;
            }
            Ok(())
        })
    }

    /// Grow-on-demand scratch buffer for the value-based calls.
    pub(crate) fn scratch(&mut self, bytes: usize) -> VAddr {
        match self.scratch {
            Some((va, cap)) if cap >= bytes => va,
            _ => {
                let cap = bytes.next_power_of_two().max(64);
                let va = self.vmmc.proc_().alloc(cap, CacheMode::WriteBack);
                self.scratch = Some((va, cap));
                va
            }
        }
    }
}
