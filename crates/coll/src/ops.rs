//! The collective operations: two algorithms per collective, chunked
//! pipelining, and the size/node-count selector.
//!
//! All algorithms run over the persistent channels of
//! [`CollComm`](crate::CollComm); a collective call never exports or
//! imports. Reductions use 8-byte elements ([`ReduceOp`]); byte-count
//! collectives (broadcast, allgather) accept arbitrary lengths — the
//! chunk engine word-pads deliberate updates and bounces unaligned
//! sources through a staging buffer.

use shrimp_node::VAddr;
use shrimp_sim::Ctx;

use crate::comm::{CollComm, CollError};
use crate::geometry::BinomialTree;

/// Element-wise combining operator over 8-byte elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of `f64` values.
    SumF64,
    /// Sum of `i64` values.
    SumI64,
    /// Maximum of `f64` values.
    MaxF64,
}

impl ReduceOp {
    /// Bytes per element (always 8 for the supported types).
    pub fn elem_bytes(self) -> usize {
        8
    }

    /// `acc[i] = acc[i] ⊕ other[i]` over 8-byte lanes.
    pub fn fold(self, acc: &mut [u8], other: &[u8]) {
        debug_assert_eq!(acc.len(), other.len());
        debug_assert_eq!(acc.len() % 8, 0);
        for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
            let bb: [u8; 8] = b.try_into().expect("8-byte lane");
            let aa: [u8; 8] = (&*a).try_into().expect("8-byte lane");
            let r = match self {
                ReduceOp::SumF64 => (f64::from_le_bytes(aa) + f64::from_le_bytes(bb)).to_le_bytes(),
                ReduceOp::SumI64 => i64::from_le_bytes(aa)
                    .wrapping_add(i64::from_le_bytes(bb))
                    .to_le_bytes(),
                ReduceOp::MaxF64 => f64::from_le_bytes(aa)
                    .max(f64::from_le_bytes(bb))
                    .to_le_bytes(),
            };
            a.copy_from_slice(&r);
        }
    }
}

/// Barrier algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAlg {
    /// Dissemination: `ceil(log2 n)` rounds, every rank sends+receives
    /// one flag per round.
    Dissemination,
    /// Flag-only reduce to rank 0 then broadcast, both binomial.
    Tree,
}

/// Broadcast algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlg {
    /// Binomial spanning tree (root sends `log2 n` times).
    Binomial,
    /// Root sends to every rank directly (needs all-pairs channels).
    Flat,
}

/// Reduce-to-root algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceAlg {
    /// Binomial tree, combining up toward the root.
    Binomial,
    /// Every rank sends to the root (needs all-pairs channels).
    Flat,
}

/// Allgather algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlg {
    /// Snake-ring: `n-1` single-hop steps, bandwidth-optimal.
    Ring,
    /// Binomial gather to rank 0 plus binomial broadcast: latency
    /// `O(log n)`, better for tiny payloads.
    GatherBcast,
}

/// Reduce-scatter algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceScatterAlg {
    /// Snake-ring, combining as blocks travel.
    Ring,
    /// Direct exchange of each block with its owner (needs all-pairs
    /// channels).
    Pairwise,
}

/// Allreduce algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlg {
    /// Ring reduce-scatter followed by ring allgather:
    /// `2(n-1)` single-hop steps moving `2·(n-1)/n` of the vector —
    /// bandwidth-optimal on the mesh.
    RingRsAg,
    /// Recursive doubling: `log2 n` rounds exchanging the full vector —
    /// latency-optimal for small payloads.
    RecursiveDoubling,
}

/// Byte allreduce size at or below which recursive doubling beats the
/// ring (measured crossover at 16 nodes; see EXPERIMENTS.md).
pub const RD_CUTOFF_BYTES: usize = 4096;

/// Total allgather bytes at or below which gather+bcast beats the ring.
pub const GATHER_BCAST_CUTOFF_BYTES: usize = 4096;

/// The contiguous element block rank `i` owns when a `count`-element
/// vector is split across `n` ranks: `count/n` elements each, with the
/// first `count % n` blocks one element longer. Returns
/// `(start, len)` in elements.
pub fn block_range(i: usize, n: usize, count: usize) -> (usize, usize) {
    let base = count / n;
    let rem = count % n;
    let start = i * base + i.min(rem);
    (start, base + usize::from(i < rem))
}

fn nchunks(len: usize, chunk: usize) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(chunk)
    }
}

impl CollComm {
    // ------------------------------------------------------------------
    // Selector
    // ------------------------------------------------------------------

    /// Pick the barrier algorithm (dissemination: fewer rounds of
    /// waiting than the tree's up-then-down pass).
    pub fn select_barrier(&self) -> BarrierAlg {
        BarrierAlg::Dissemination
    }

    /// Pick a broadcast algorithm for `len` bytes.
    pub fn select_broadcast(&self, _len: usize) -> BcastAlg {
        if self.has_flat && self.n <= 4 {
            BcastAlg::Flat
        } else {
            BcastAlg::Binomial
        }
    }

    /// Pick a reduce algorithm for `count` 8-byte elements.
    pub fn select_reduce(&self, count: usize) -> ReduceAlg {
        if self.has_flat && self.n <= 4 && count * 8 <= self.layout.chunk {
            ReduceAlg::Flat
        } else {
            ReduceAlg::Binomial
        }
    }

    /// Pick an allgather algorithm for `total` bytes across all ranks.
    pub fn select_allgather(&self, total: usize) -> AllgatherAlg {
        if total <= GATHER_BCAST_CUTOFF_BYTES {
            AllgatherAlg::GatherBcast
        } else {
            AllgatherAlg::Ring
        }
    }

    /// Pick a reduce-scatter algorithm.
    pub fn select_reduce_scatter(&self, _count: usize) -> ReduceScatterAlg {
        ReduceScatterAlg::Ring
    }

    /// Pick an allreduce algorithm for `count` 8-byte elements:
    /// recursive doubling below [`RD_CUTOFF_BYTES`] or on tiny
    /// communicators, the ring above.
    pub fn select_allreduce(&self, count: usize) -> AllreduceAlg {
        if self.n <= 4 || count * 8 <= RD_CUTOFF_BYTES {
            AllreduceAlg::RecursiveDoubling
        } else {
            AllreduceAlg::RingRsAg
        }
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Global barrier with the selected algorithm.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn barrier(&mut self, ctx: &Ctx) -> Result<(), CollError> {
        let obs_t0 = ctx.now();
        let r = if self.hw.is_some() {
            self.hw_barrier(ctx)
        } else {
            self.barrier_with(ctx, self.select_barrier())
        };
        if r.is_ok() {
            self.obs_span(ctx, "coll_barrier", obs_t0, 0);
        }
        r
    }

    /// Record a [`shrimp_obs::Layer::User`] span for a completed
    /// collective call (no-op without an installed recorder).
    fn obs_span(&self, ctx: &Ctx, name: &'static str, start: shrimp_sim::SimTime, bytes: usize) {
        if let Some(rec) = self.vmmc().obs() {
            rec.push(shrimp_obs::SpanRec {
                msg: shrimp_obs::MsgId::NONE,
                node: self.vmmc().node_index(),
                layer: shrimp_obs::Layer::User,
                name,
                start,
                end: ctx.now(),
                bytes,
            });
        }
    }

    /// Global barrier with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn barrier_with(&mut self, ctx: &Ctx, alg: BarrierAlg) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        match alg {
            BarrierAlg::Dissemination => {
                let (n, me) = (self.n, self.rank);
                let mut dist = 1;
                while dist < n {
                    let to = (me + dist) % n;
                    let from = (me + n - dist) % n;
                    self.send_flag(ctx, to)?;
                    self.recv_flag(ctx, from)?;
                    dist *= 2;
                }
            }
            BarrierAlg::Tree => {
                let tree = BinomialTree { n: self.n };
                let me = self.rank;
                for c in tree.children(me) {
                    self.recv_flag(ctx, c)?;
                }
                if let Some(p) = tree.parent(me) {
                    self.send_flag(ctx, p)?;
                    self.recv_flag(ctx, p)?;
                }
                for c in tree.children(me).into_iter().rev() {
                    self.send_flag(ctx, c)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Broadcast `len` bytes from `root`'s `buf` into every rank's
    /// `buf`, algorithm selected by size.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn broadcast(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), CollError> {
        let obs_t0 = ctx.now();
        let r = if self.hw.is_some() {
            self.hw_broadcast(ctx, root, buf, len)
        } else {
            self.broadcast_with(ctx, root, buf, len, self.select_broadcast(len))
        };
        if r.is_ok() {
            self.obs_span(ctx, "coll_broadcast", obs_t0, len);
        }
        r
    }

    /// Broadcast with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// [`CollError::Unsupported`] for [`BcastAlg::Flat`] without
    /// all-pairs channels; channel faults otherwise.
    pub fn broadcast_with(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
        alg: BcastAlg,
    ) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        match alg {
            BcastAlg::Binomial => self.binomial_bcast(ctx, root, buf, 0, len),
            BcastAlg::Flat => {
                if !self.has_flat {
                    return Err(CollError::Unsupported("flat broadcast"));
                }
                let (n, me) = (self.n, self.rank);
                if me == root {
                    for j in 1..n {
                        self.send_range(ctx, (root + j) % n, buf, 0, len)?;
                    }
                } else {
                    self.recv_range(ctx, root, buf, 0, len)?;
                }
                Ok(())
            }
        }
    }

    /// Binomial-tree broadcast of `buf[off..off+len]` rooted anywhere.
    fn binomial_bcast(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        off: usize,
        len: usize,
    ) -> Result<(), CollError> {
        let (n, me) = (self.n, self.rank);
        let tree = BinomialTree { n };
        let v = (me + n - root) % n;
        if let Some(pv) = tree.parent(v) {
            self.recv_range(ctx, (pv + root) % n, buf, off, len)?;
        }
        // Farthest child first: it roots the largest subtree.
        for cv in tree.children(v).into_iter().rev() {
            self.send_range(ctx, (cv + root) % n, buf, off, len)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reduce
    // ------------------------------------------------------------------

    /// Reduce `count` elements of `buf` element-wise onto `root`.
    /// `root`'s `buf` holds the result; other ranks' `buf` is clobbered
    /// with partial results.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn reduce(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
    ) -> Result<(), CollError> {
        let obs_t0 = ctx.now();
        let r = self.reduce_with(ctx, root, buf, count, op, self.select_reduce(count));
        if r.is_ok() {
            self.obs_span(ctx, "coll_reduce", obs_t0, count * op.elem_bytes());
        }
        r
    }

    /// Reduce with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// [`CollError::Unsupported`] for [`ReduceAlg::Flat`] without
    /// all-pairs channels; channel faults otherwise.
    pub fn reduce_with(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
        alg: ReduceAlg,
    ) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        let len = count * op.elem_bytes();
        let (n, me) = (self.n, self.rank);
        match alg {
            ReduceAlg::Binomial => {
                let tree = BinomialTree { n };
                let v = (me + n - root) % n;
                // Nearest child first: it finishes its subtree first.
                for cv in tree.children(v) {
                    self.recv_combine_range(ctx, (cv + root) % n, buf, 0, len, op)?;
                }
                if let Some(pv) = tree.parent(v) {
                    self.send_range(ctx, (pv + root) % n, buf, 0, len)?;
                }
            }
            ReduceAlg::Flat => {
                if !self.has_flat {
                    return Err(CollError::Unsupported("flat reduce"));
                }
                if me == root {
                    for j in 1..n {
                        self.recv_combine_range(ctx, (root + j) % n, buf, 0, len, op)?;
                    }
                } else {
                    self.send_range(ctx, root, buf, 0, len)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allgather
    // ------------------------------------------------------------------

    /// In-place allgather over a `total`-byte vector in `buf`: rank `i`
    /// contributes the byte block `block_range(i, n, total)`; on return
    /// every rank holds all blocks.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allgather(&mut self, ctx: &Ctx, buf: VAddr, total: usize) -> Result<(), CollError> {
        let obs_t0 = ctx.now();
        let r = self.allgather_with(ctx, buf, total, self.select_allgather(total));
        if r.is_ok() {
            self.obs_span(ctx, "coll_allgather", obs_t0, total);
        }
        r
    }

    /// Allgather with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allgather_with(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        total: usize,
        alg: AllgatherAlg,
    ) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        let blocks: Vec<(usize, usize)> =
            (0..self.n).map(|i| block_range(i, self.n, total)).collect();
        match alg {
            AllgatherAlg::Ring => self.ring_allgather(ctx, buf, &blocks),
            AllgatherAlg::GatherBcast => self.gather_bcast(ctx, buf, &blocks),
        }
    }

    /// Snake-ring allgather over explicit byte blocks (indexed by
    /// rank). Virtual block `v` is the block of rank `ring[(v-1) mod
    /// n]`, so ring position `p` starts owning virtual `p+1` and after
    /// `n-1` single-hop steps holds everything.
    fn ring_allgather(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        blocks: &[(usize, usize)],
    ) -> Result<(), CollError> {
        let n = self.n;
        let p = self.ring.pos_of[self.rank];
        let next = self.ring.next(self.rank);
        let prev = self.ring.prev(self.rank);
        let order = self.ring.ring.clone();
        let actual = |v: usize| order[(v + n - 1) % n];
        for step in 0..n - 1 {
            let sv = (p + 1 + n - step % n) % n;
            let rv = (p + n - step % n) % n;
            let (s_off, s_len) = blocks[actual(sv)];
            let (r_off, r_len) = blocks[actual(rv)];
            self.exchange_ranges(ctx, next, prev, buf, s_off, s_len, r_off, r_len, None)?;
        }
        Ok(())
    }

    /// Binomial gather of contiguous block ranges to rank 0, then a
    /// binomial broadcast of the whole vector.
    fn gather_bcast(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        blocks: &[(usize, usize)],
    ) -> Result<(), CollError> {
        let me = self.rank;
        let tree = BinomialTree { n: self.n };
        let span = |lo: usize, hi: usize| {
            let start = blocks[lo].0;
            let end = blocks[hi - 1].0 + blocks[hi - 1].1;
            (start, end - start)
        };
        for c in tree.children(me) {
            let (clo, chi) = tree.subtree(c);
            let (off, len) = span(clo, chi);
            self.recv_range(ctx, c, buf, off, len)?;
        }
        if let Some(parent) = tree.parent(me) {
            let (lo, hi) = tree.subtree(me);
            let (off, len) = span(lo, hi);
            self.send_range(ctx, parent, buf, off, len)?;
        }
        let total = blocks[self.n - 1].0 + blocks[self.n - 1].1;
        self.binomial_bcast(ctx, 0, buf, 0, total)
    }

    // ------------------------------------------------------------------
    // Reduce-scatter
    // ------------------------------------------------------------------

    /// Reduce a `count`-element vector in `buf` element-wise across all
    /// ranks, leaving each rank the fully reduced block
    /// `block_range(rank, n, count)` of it (returned as
    /// `(start, len)` in elements). Other parts of `buf` are clobbered
    /// with partial results.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn reduce_scatter(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
    ) -> Result<(usize, usize), CollError> {
        let alg = self.select_reduce_scatter(count);
        let obs_t0 = ctx.now();
        let r = self.reduce_scatter_with(ctx, buf, count, op, alg);
        if r.is_ok() {
            self.obs_span(ctx, "coll_reduce_scatter", obs_t0, count * op.elem_bytes());
        }
        r
    }

    /// Reduce-scatter with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// [`CollError::Unsupported`] for [`ReduceScatterAlg::Pairwise`]
    /// without all-pairs channels; channel faults otherwise.
    pub fn reduce_scatter_with(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
        alg: ReduceScatterAlg,
    ) -> Result<(usize, usize), CollError> {
        let mine = block_range(self.rank, self.n, count);
        if self.n == 1 {
            return Ok(mine);
        }
        let eb = op.elem_bytes();
        let blocks: Vec<(usize, usize)> = (0..self.n)
            .map(|i| {
                let (s, l) = block_range(i, self.n, count);
                (s * eb, l * eb)
            })
            .collect();
        match alg {
            ReduceScatterAlg::Ring => self.ring_reduce_scatter(ctx, buf, &blocks, op)?,
            ReduceScatterAlg::Pairwise => {
                if !self.has_flat {
                    return Err(CollError::Unsupported("pairwise reduce-scatter"));
                }
                let (n, me) = (self.n, self.rank);
                let (m_off, m_len) = blocks[me];
                for j in 1..n {
                    let to = (me + j) % n;
                    let from = (me + n - j) % n;
                    let (s_off, s_len) = blocks[to];
                    self.exchange_ranges(ctx, to, from, buf, s_off, s_len, m_off, m_len, Some(op))?;
                }
            }
        }
        Ok(mine)
    }

    /// Snake-ring reduce-scatter over explicit byte blocks: `n-1`
    /// single-hop steps, each forwarding the partially reduced virtual
    /// block while combining the one arriving — the chunk engine
    /// overlaps the transfer of chunk `k+1` with the reduction of
    /// chunk `k`.
    fn ring_reduce_scatter(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        blocks: &[(usize, usize)],
        op: ReduceOp,
    ) -> Result<(), CollError> {
        let n = self.n;
        let p = self.ring.pos_of[self.rank];
        let next = self.ring.next(self.rank);
        let prev = self.ring.prev(self.rank);
        let order = self.ring.ring.clone();
        let actual = |v: usize| order[(v + n - 1) % n];
        for step in 0..n - 1 {
            let sv = (p + n - step % n) % n;
            let rv = (p + n - 1 - step % n) % n;
            let (s_off, s_len) = blocks[actual(sv)];
            let (r_off, r_len) = blocks[actual(rv)];
            self.exchange_ranges(ctx, next, prev, buf, s_off, s_len, r_off, r_len, Some(op))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allreduce
    // ------------------------------------------------------------------

    /// Allreduce `count` elements of `buf` in place: every rank ends
    /// with the element-wise combination across all ranks.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allreduce(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
    ) -> Result<(), CollError> {
        let obs_t0 = ctx.now();
        let r = if self.hw.is_some() {
            self.hw_allreduce(ctx, buf, count, op)
        } else {
            self.allreduce_with(ctx, buf, count, op, self.select_allreduce(count))
        };
        if r.is_ok() {
            self.obs_span(ctx, "coll_allreduce", obs_t0, count * op.elem_bytes());
        }
        r
    }

    /// Allreduce with an explicit algorithm.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allreduce_with(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
        alg: AllreduceAlg,
    ) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        let eb = op.elem_bytes();
        match alg {
            AllreduceAlg::RingRsAg => {
                let blocks: Vec<(usize, usize)> = (0..self.n)
                    .map(|i| {
                        let (s, l) = block_range(i, self.n, count);
                        (s * eb, l * eb)
                    })
                    .collect();
                self.ring_reduce_scatter(ctx, buf, &blocks, op)?;
                self.ring_allgather(ctx, buf, &blocks)
            }
            AllreduceAlg::RecursiveDoubling => {
                let (n, me) = (self.n, self.rank);
                let len = count * eb;
                let pow2 = if n.is_power_of_two() {
                    n
                } else {
                    n.next_power_of_two() / 2
                };
                if me >= pow2 {
                    // Fold into the partner, then receive the result.
                    self.send_range(ctx, me - pow2, buf, 0, len)?;
                    self.recv_range(ctx, me - pow2, buf, 0, len)?;
                    return Ok(());
                }
                if me + pow2 < n {
                    self.recv_combine_range(ctx, me + pow2, buf, 0, len, op)?;
                }
                let mut dist = 1;
                while dist < pow2 {
                    let partner = me ^ dist;
                    self.exchange_ranges(ctx, partner, partner, buf, 0, len, 0, len, Some(op))?;
                    dist *= 2;
                }
                if me + pow2 < n {
                    self.send_range(ctx, me + pow2, buf, 0, len)?;
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Value-based convenience forms (back the NX wrappers)
    // ------------------------------------------------------------------

    /// Allreduce-sum a slice of `f64` values through the communicator's
    /// own scratch buffer; every rank returns the element-wise sums.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allreduce_f64(&mut self, ctx: &Ctx, vals: &[f64]) -> Result<Vec<f64>, CollError> {
        let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let out = self.allreduce_raw(ctx, &raw, ReduceOp::SumF64)?;
        Ok(out
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Allreduce-sum a slice of `i64` values; every rank returns the
    /// element-wise sums.
    ///
    /// # Errors
    ///
    /// Propagates channel faults.
    pub fn allreduce_i64(&mut self, ctx: &Ctx, vals: &[i64]) -> Result<Vec<i64>, CollError> {
        let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let out = self.allreduce_raw(ctx, &raw, ReduceOp::SumI64)?;
        Ok(out
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn allreduce_raw(&mut self, ctx: &Ctx, raw: &[u8], op: ReduceOp) -> Result<Vec<u8>, CollError> {
        if raw.is_empty() || self.n == 1 {
            return Ok(raw.to_vec());
        }
        let va = self.scratch(raw.len());
        self.vmmc.proc_().write(ctx, va, raw)?;
        self.allreduce(ctx, va, raw.len() / 8, op)?;
        Ok(self.vmmc.proc_().read(ctx, va, raw.len())?)
    }

    // ------------------------------------------------------------------
    // Chunked range engine
    // ------------------------------------------------------------------

    /// Send a zero-payload flag chunk (barrier edge).
    fn send_flag(&mut self, ctx: &Ctx, peer: usize) -> Result<(), CollError> {
        let base = self.channels[&peer].staging;
        self.send_chunk(ctx, peer, base, 0)
    }

    /// Consume a zero-payload flag chunk.
    fn recv_flag(&mut self, ctx: &Ctx, peer: usize) -> Result<(), CollError> {
        self.recv_chunk_with(ctx, peer, |_, _, _| Ok(()))
    }

    /// Send `buf[off..off+len]` to `peer` as pipeline chunks (one empty
    /// chunk for an empty range, keeping both sides in lockstep).
    fn send_range(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        buf: VAddr,
        off: usize,
        len: usize,
    ) -> Result<(), CollError> {
        let chunk = self.layout.chunk;
        for c in 0..nchunks(len, chunk) {
            let o = c * chunk;
            let l = (len - o).min(chunk);
            self.send_chunk(ctx, peer, buf.add(off + o), l)?;
        }
        Ok(())
    }

    /// Receive a chunked range from `peer` into `buf[off..off+len]`.
    fn recv_range(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        buf: VAddr,
        off: usize,
        len: usize,
    ) -> Result<(), CollError> {
        let chunk = self.layout.chunk;
        for c in 0..nchunks(len, chunk) {
            let o = c * chunk;
            let l = (len - o).min(chunk);
            self.recv_chunk(ctx, peer, buf.add(off + o), l)?;
        }
        Ok(())
    }

    /// Receive a chunked range and combine it element-wise into
    /// `buf[off..off+len]`.
    fn recv_combine_range(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        buf: VAddr,
        off: usize,
        len: usize,
        op: ReduceOp,
    ) -> Result<(), CollError> {
        let chunk = self.layout.chunk;
        for c in 0..nchunks(len, chunk) {
            let o = c * chunk;
            let l = (len - o).min(chunk);
            self.recv_combine_chunk(ctx, peer, buf.add(off + o), l, op)?;
        }
        Ok(())
    }

    fn recv_combine_chunk(
        &mut self,
        ctx: &Ctx,
        peer: usize,
        dst: VAddr,
        len: usize,
        op: ReduceOp,
    ) -> Result<(), CollError> {
        self.recv_chunk_with(ctx, peer, |comm, ctx, slot_va| {
            if len == 0 {
                return Ok(());
            }
            let other = comm.vmmc.proc_().read(ctx, slot_va, len)?;
            let mut acc = comm.vmmc.proc_().read(ctx, dst, len)?;
            op.fold(&mut acc, &other);
            comm.vmmc.proc_().write(ctx, dst, &acc)?;
            Ok(())
        })
    }

    /// Chunk-interleaved bidirectional transfer: per pipeline step,
    /// send chunk `c` of the outgoing range to `to`, then consume chunk
    /// `c` of the incoming range from `from` (copying, or combining
    /// under `op`). The interleave keeps acks flowing both ways, so
    /// symmetric exchanges (recursive doubling) and ring steps never
    /// deadlock and double-buffered slots overlap transfer with the
    /// local reduction.
    #[allow(clippy::too_many_arguments)]
    fn exchange_ranges(
        &mut self,
        ctx: &Ctx,
        to: usize,
        from: usize,
        buf: VAddr,
        s_off: usize,
        s_len: usize,
        r_off: usize,
        r_len: usize,
        op: Option<ReduceOp>,
    ) -> Result<(), CollError> {
        let chunk = self.layout.chunk;
        let sc = nchunks(s_len, chunk);
        let rc = nchunks(r_len, chunk);
        for c in 0..sc.max(rc) {
            if c < sc {
                let o = c * chunk;
                let l = (s_len - o).min(chunk);
                self.send_chunk(ctx, to, buf.add(s_off + o), l)?;
            }
            if c < rc {
                let o = c * chunk;
                let l = (r_len - o).min(chunk);
                match op {
                    Some(op) => self.recv_combine_chunk(ctx, from, buf.add(r_off + o), l, op)?,
                    None => self.recv_chunk(ctx, from, buf.add(r_off + o), l)?,
                }
            }
        }
        Ok(())
    }
}
