//! `CollImpl::Hardware`: offload to the fabric's in-network combining
//! stage.
//!
//! The software algorithms in [`crate::CollComm`] move every byte
//! through VMMC channels between end hosts. With in-network computing
//! (`shrimp_mesh::HwGroup`) the routers themselves combine
//! contributions and replicate results along a fabric spanning tree, so
//! a barrier or allreduce crosses each tree link exactly once in each
//! direction — no `log n` software rounds, no end-host store-and-forward.
//!
//! Only the collectives with router support offload — `barrier`,
//! `allreduce`, `broadcast`; everything else (and every `*_with` call
//! pinning an explicit software algorithm) runs the software path
//! unchanged. The offload also requires *one rank per node*: the
//! combining stage identifies contributors by router, so a communicator
//! that doubles up ranks on a node silently falls back to software.
//!
//! Caveat for `SumF64`: the hardware combines in deterministic spanning
//! -tree order, which may round differently than the software ring —
//! bitwise results can differ between the two implementations (both are
//! valid f64 sums).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::ShrimpSystem;
use shrimp_mesh::{Backplane, HwGroup, HwOp, NodeId};
use shrimp_nic::NicPacket;
use shrimp_node::VAddr;
use shrimp_sim::{Ctx, SimChannel, SimTime};

use crate::comm::{CollComm, CollError};
use crate::ops::ReduceOp;

/// Which engine executes a communicator's collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollImpl {
    /// The software algorithms over persistent VMMC channels (PR 2).
    #[default]
    Software,
    /// In-network offload: routers combine and replicate along a fabric
    /// spanning tree for `barrier`/`allreduce`/`broadcast`; other
    /// collectives (and explicit `*_with` algorithm pins) stay software.
    Hardware,
}

/// Shared cache of hardware groups, keyed by the root *node* (the tree
/// shape only depends on where it is rooted). Lives in the
/// [`CollWorld`](crate::CollWorld) so all ranks reuse one tree.
pub(crate) type HwGroupCache = Arc<Mutex<HashMap<usize, Arc<HwGroup>>>>;

/// Per-communicator handle on the in-network engine.
pub(crate) struct HwColl {
    net: Arc<Backplane<NicPacket>>,
    /// rank -> node index (all distinct, checked at construction).
    nodes: Vec<usize>,
    groups: HwGroupCache,
}

impl HwColl {
    /// Build the engine handle, or `None` when the rank layout cannot
    /// offload (two ranks sharing a node).
    pub(crate) fn try_new(
        system: &Arc<ShrimpSystem>,
        nodes: &[usize],
        groups: HwGroupCache,
    ) -> Option<HwColl> {
        let mut seen = vec![false; system.len()];
        for &n in nodes {
            if std::mem::replace(&mut seen[n], true) {
                return None;
            }
        }
        Some(HwColl {
            net: Arc::clone(system.net()),
            nodes: nodes.to_vec(),
            groups,
        })
    }

    /// The group rooted at `root_rank`'s node, built on first use.
    fn group_for(&self, root_rank: usize) -> Arc<HwGroup> {
        let root_node = self.nodes[root_rank];
        Arc::clone(self.groups.lock().entry(root_node).or_insert_with(|| {
            let members: Vec<NodeId> = self.nodes.iter().map(|&n| NodeId(n)).collect();
            self.net.hw_group(&members, NodeId(root_node))
        }))
    }
}

impl ReduceOp {
    fn hw(self) -> HwOp {
        match self {
            ReduceOp::SumF64 => HwOp::SumF64,
            ReduceOp::SumI64 => HwOp::SumI64,
            ReduceOp::MaxF64 => HwOp::MaxF64,
        }
    }
}

fn to_lanes(raw: &[u8]) -> Vec<u64> {
    raw.chunks(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect()
}

fn from_lanes(lanes: &[u64], len: usize) -> Vec<u8> {
    let mut out: Vec<u8> = lanes.iter().flat_map(|l| l.to_le_bytes()).collect();
    out.truncate(len);
    out
}

impl CollComm {
    /// Whether this communicator offloads to the in-network engine.
    pub fn uses_hardware(&self) -> bool {
        self.hw.is_some()
    }

    /// In-network barrier: a 1-lane fetch-and-add of 1 through the
    /// spanning tree rooted at rank 0's node.
    pub(crate) fn hw_barrier(&mut self, ctx: &Ctx) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        let (at, _) = self.hw_contribute_wait(ctx, 0, &[1], HwOp::SumI64);
        ctx.sleep_until(at);
        Ok(())
    }

    /// In-network allreduce: one ascent (combining) and one descent
    /// (replication) over the tree, whatever the vector size.
    pub(crate) fn hw_allreduce(
        &mut self,
        ctx: &Ctx,
        buf: VAddr,
        count: usize,
        op: ReduceOp,
    ) -> Result<(), CollError> {
        if self.n == 1 || count == 0 {
            return Ok(());
        }
        let len = count * op.elem_bytes();
        let raw = self.vmmc.proc_().read(ctx, buf, len)?;
        let lanes = to_lanes(&raw);
        let (at, combined) = self.hw_contribute_wait(ctx, 0, &lanes, op.hw());
        ctx.sleep_until(at);
        self.vmmc
            .proc_()
            .write(ctx, buf, &from_lanes(&combined, len))?;
        Ok(())
    }

    /// In-switch broadcast: the root injects once; the routers replicate
    /// down the tree rooted at the root's own node.
    pub(crate) fn hw_broadcast(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), CollError> {
        if self.n == 1 {
            return Ok(());
        }
        let hw = self.hw.as_ref().expect("hw path needs an engine");
        let g = hw.group_for(root);
        let me = NodeId(hw.nodes[self.rank]);
        let net = Arc::clone(&hw.net);
        if self.rank == root {
            let raw = self.vmmc.proc_().read(ctx, buf, len)?;
            let done = net.hw_bcast_send(&g, me, &to_lanes(&raw));
            // The root completes when its NIC finishes injecting — it
            // does not wait for the leaves (same contract as a software
            // tree root's last send).
            ctx.sleep_until(done);
        } else {
            let ch: SimChannel<(SimTime, Arc<Vec<u64>>)> = SimChannel::new();
            let ch2 = ch.clone();
            let h = ctx.handle();
            net.hw_bcast_recv(&g, me, Box::new(move |at, v| ch2.send(&h, (at, v))));
            let (at, lanes) = ch.recv(ctx);
            ctx.sleep_until(at);
            self.vmmc
                .proc_()
                .write(ctx, buf, &from_lanes(&lanes, len))?;
        }
        Ok(())
    }

    /// Contribute and block until this member's result ejects.
    fn hw_contribute_wait(
        &self,
        ctx: &Ctx,
        root_rank: usize,
        lanes: &[u64],
        op: HwOp,
    ) -> (SimTime, Arc<Vec<u64>>) {
        let hw = self.hw.as_ref().expect("hw path needs an engine");
        let g = hw.group_for(root_rank);
        let me = NodeId(hw.nodes[self.rank]);
        let ch: SimChannel<(SimTime, Arc<Vec<u64>>)> = SimChannel::new();
        let ch2 = ch.clone();
        let h = ctx.handle();
        hw.net.hw_contribute(
            &g,
            me,
            lanes,
            op,
            Box::new(move |at, v| ch2.send(&h, (at, v))),
        );
        ch.recv(ctx)
    }
}
