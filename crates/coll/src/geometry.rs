//! Communicator geometry: which peers each rank keeps persistent
//! channels to, the mesh-aware ring order, and the binomial tree.
//!
//! Everything here is pure arithmetic computed identically by every
//! rank, so no coordination is needed to agree on the shapes.

use shrimp_mesh::{Coord, Topology};

/// Mesh-aware ring order: a permutation of the communicator's ranks
/// such that consecutive ranks (cyclically) sit on mesh-adjacent nodes
/// whenever the grid admits a Hamiltonian cycle (`w*h` even, both
/// dimensions ≥ 2). Ranks are ordered by their node's position along a
/// snake through the grid; with an odd×odd or 1×k grid the snake is a
/// Hamiltonian *path* and the single closing hop is multi-hop.
#[derive(Debug, Clone)]
pub struct RingOrder {
    /// `ring[pos]` = rank at ring position `pos`.
    pub ring: Vec<usize>,
    /// `pos_of[rank]` = ring position of `rank`.
    pub pos_of: Vec<usize>,
}

impl RingOrder {
    /// Build the ring for ranks living on `nodes[rank]` of `topo`.
    ///
    /// Grid topologies (mesh, torus) get the mesh-aware snake; fabrics
    /// without grid coordinates (fat-tree, dragonfly) fall back to a
    /// linear order over node ids — on an indirect network all
    /// inter-node hops cost the same anyway.
    pub fn new(topo: &dyn Topology, nodes: &[usize]) -> RingOrder {
        let (w, h) = topo.grid_dims().unwrap_or((topo.len(), 1));
        let snake = snake_positions(w, h);
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        // Sort ranks by their node's snake position; ties (two ranks on
        // one node) break by rank for determinism.
        order.sort_by_key(|&r| (snake[nodes[r]], r));
        let mut pos_of = vec![0; nodes.len()];
        for (pos, &r) in order.iter().enumerate() {
            pos_of[r] = pos;
        }
        RingOrder {
            ring: order,
            pos_of,
        }
    }

    /// Rank after `rank` in ring order.
    pub fn next(&self, rank: usize) -> usize {
        self.ring[(self.pos_of[rank] + 1) % self.ring.len()]
    }

    /// Rank before `rank` in ring order.
    pub fn prev(&self, rank: usize) -> usize {
        let n = self.ring.len();
        self.ring[(self.pos_of[rank] + n - 1) % n]
    }
}

/// Snake position of every node (row-major node index → position along
/// the snake). For `w*h` even with `w,h ≥ 2` the snake is a Hamiltonian
/// cycle: one boundary row/column is traversed first, the interior
/// serpentines, and the opposite boundary column walks back — every
/// consecutive pair (including last→first) is a single mesh hop.
pub fn snake_positions(w: usize, h: usize) -> Vec<usize> {
    let cells = cycle_or_path(w, h);
    let mut pos = vec![0usize; w * h];
    for (p, c) in cells.iter().enumerate() {
        pos[c.y * w + c.x] = p;
    }
    pos
}

/// True when the snake for `w×h` closes with single-hop links only.
pub fn has_hamiltonian_cycle(w: usize, h: usize) -> bool {
    w >= 2 && h >= 2 && (w * h).is_multiple_of(2)
}

fn cycle_or_path(w: usize, h: usize) -> Vec<Coord> {
    if h >= 2 && w >= 2 && h.is_multiple_of(2) {
        return cycle_even_h(w, h);
    }
    if h >= 2 && w >= 2 && w.is_multiple_of(2) {
        // Transpose the even-height construction.
        return cycle_even_h(h, w)
            .into_iter()
            .map(|c| Coord { x: c.y, y: c.x })
            .collect();
    }
    // Odd×odd or a 1-wide strip: boustrophedon Hamiltonian path; the
    // wrap link back to (0,0) is the one multi-hop ring link.
    let mut cells = Vec::with_capacity(w * h);
    for y in 0..h {
        if y % 2 == 0 {
            for x in 0..w {
                cells.push(Coord { x, y });
            }
        } else {
            for x in (0..w).rev() {
                cells.push(Coord { x, y });
            }
        }
    }
    cells
}

/// Hamiltonian cycle for even `h`: east along row 0, serpentine through
/// columns `1..w` of rows `1..h`, then north up column 0.
fn cycle_even_h(w: usize, h: usize) -> Vec<Coord> {
    let mut cells = Vec::with_capacity(w * h);
    for x in 0..w {
        cells.push(Coord { x, y: 0 });
    }
    for y in 1..h {
        if y % 2 == 1 {
            for x in (1..w).rev() {
                cells.push(Coord { x, y });
            }
        } else {
            for x in 1..w {
                cells.push(Coord { x, y });
            }
        }
    }
    for y in (1..h).rev() {
        cells.push(Coord { x: 0, y });
    }
    cells
}

/// The peer set rank `me` keeps persistent channels to: the ring
/// neighbors, every `me ± 2^k (mod n)` partner (covers recursive
/// doubling, dissemination, and binomial trees for any root), and — for
/// small communicators (`n ≤ flat_limit`) — every rank, enabling the
/// flat/pairwise algorithm variants.
pub fn peer_set(me: usize, n: usize, ring: &RingOrder, flat_limit: usize) -> Vec<usize> {
    let mut peers: Vec<usize> = Vec::new();
    if n <= flat_limit {
        peers.extend((0..n).filter(|&p| p != me));
    } else {
        let mut dist = 1usize;
        while dist < n {
            peers.push((me + dist) % n);
            peers.push((me + n - dist) % n);
            dist *= 2;
        }
        peers.push(ring.next(me));
        peers.push(ring.prev(me));
    }
    peers.sort_unstable();
    peers.dedup();
    peers.retain(|&p| p != me);
    peers
}

/// Binomial tree with *contiguous subtrees* over virtual ranks
/// (vrank = `(rank - root) mod n`): the parent of `v` clears its lowest
/// set bit, and `v`'s subtree is the contiguous range
/// `[v, min(v + lowbit(v), n))` — which is what lets tree gathers and
/// scatters move whole contiguous block ranges.
#[derive(Debug, Clone, Copy)]
pub struct BinomialTree {
    /// Communicator size.
    pub n: usize,
}

impl BinomialTree {
    fn lowbit(v: usize) -> usize {
        v & v.wrapping_neg()
    }

    /// Parent of virtual rank `v` (None for the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        if v == 0 {
            None
        } else {
            Some(v - Self::lowbit(v))
        }
    }

    /// Children of virtual rank `v`, nearest first (`v+1, v+2, v+4, …`).
    pub fn children(&self, v: usize) -> Vec<usize> {
        let limit = if v == 0 { self.n } else { Self::lowbit(v) };
        let mut out = Vec::new();
        let mut bit = 1usize;
        while bit < limit {
            if v + bit < self.n {
                out.push(v + bit);
            }
            bit *= 2;
        }
        out
    }

    /// The contiguous virtual-rank range `[v, end)` rooted at `v`.
    pub fn subtree(&self, v: usize) -> (usize, usize) {
        let end = if v == 0 {
            self.n
        } else {
            (v + Self::lowbit(v)).min(self.n)
        };
        (v, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_ring(w: usize, h: usize) {
        let topo = shrimp_mesh::Mesh2D::new(w, h);
        let nodes: Vec<usize> = (0..w * h).collect();
        let ring = RingOrder::new(&topo, &nodes);
        let n = w * h;
        // A permutation.
        let mut seen = vec![false; n];
        for &r in &ring.ring {
            assert!(!seen[r]);
            seen[r] = true;
        }
        // Every hop single-distance when a cycle exists; at most one
        // long link otherwise.
        let mut long = 0;
        for p in 0..n {
            let a = shrimp_mesh::NodeId(nodes[ring.ring[p]]);
            let b = shrimp_mesh::NodeId(nodes[ring.ring[(p + 1) % n]]);
            if topo.min_distance(a, b) != 1 {
                long += 1;
            }
        }
        if has_hamiltonian_cycle(w, h) {
            assert_eq!(long, 0, "{w}x{h} snake should be a cycle");
        } else {
            assert!(long <= 1, "{w}x{h} snake should have one wrap link");
        }
    }

    #[test]
    fn snake_rings_are_single_hop() {
        for (w, h) in [(2, 2), (4, 4), (8, 8), (2, 3), (3, 2), (4, 2), (2, 4)] {
            check_ring(w, h);
        }
    }

    #[test]
    fn snake_paths_cover_odd_grids() {
        for (w, h) in [(1, 2), (1, 5), (3, 3), (5, 3), (1, 16)] {
            check_ring(w, h);
        }
    }

    #[test]
    fn binomial_subtrees_are_contiguous_and_cover() {
        for n in 2..=17 {
            let t = BinomialTree { n };
            for v in 0..n {
                let (lo, hi) = t.subtree(v);
                assert_eq!(lo, v);
                // Children's subtrees tile [v+1, hi).
                let mut at = v + 1;
                let mut kids = t.children(v);
                kids.sort_unstable();
                for c in kids {
                    let (clo, chi) = t.subtree(c);
                    assert_eq!(clo, at, "n={n} v={v}");
                    at = chi;
                }
                assert_eq!(at, hi, "n={n} v={v}");
                if let Some(p) = t.parent(v) {
                    assert!(t.children(p).contains(&v));
                }
            }
        }
    }

    #[test]
    fn tree_partners_are_pow2_offsets() {
        // Channel coverage: every parent/child link is a ±2^k offset in
        // virtual-rank space, hence a ±2^k offset mod n in rank space.
        for n in 2..=16 {
            let t = BinomialTree { n };
            for v in 1..n {
                let p = t.parent(v).unwrap();
                let d = v - p;
                assert!(d.is_power_of_two());
            }
        }
    }
}
