//! # shrimp-coll — topology-aware collectives directly on VMMC
//!
//! The paper's libraries (NX, RPC, sockets) layer message passing over
//! virtual memory-mapped communication; this crate does the same for
//! *collective* operations, the way mapped-memory machines earn their
//! scaling: all export/import geometry is established **once**, when
//! the communicator is created, and every collective afterwards is
//! nothing but deliberate-update sends into persistently mapped
//! buffers with flag-after-data completion (paper §2.2's in-order
//! delivery is the completion mechanism — the flag word is sent after
//! the payload, so its arrival proves the data landed).
//!
//! * [`CollWorld`] — the job-wide factory; each rank calls
//!   [`CollWorld::join`]/[`CollWorld::try_join`] to build its
//!   [`CollComm`].
//! * [`CollComm`] — persistent channels to the ring neighbors (mesh
//!   snake order: every ring hop is one mesh link), the `±2^k` partners
//!   (recursive doubling, dissemination, binomial trees for any root),
//!   and — on small communicators — every rank.
//! * [`ops`](CollComm::barrier) — `barrier`, `broadcast`, `reduce`,
//!   `allgather`, `reduce_scatter`, `allreduce`; at least two
//!   algorithms each, chosen by a size/node-count selector or pinned
//!   explicitly via the `*_with` forms.
//!
//! Chunked pipelining: vectors move in [`CollConfig::chunk_bytes`]
//! pieces through double-buffered slots, so the transfer of chunk `k+1`
//! overlaps the local copy/reduction of chunk `k`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod comm;
pub mod geometry;
mod hw;
mod ops;

pub use comm::{CollComm, CollConfig, CollError, CollWorld};
pub use hw::CollImpl;
pub use ops::{
    block_range, AllgatherAlg, AllreduceAlg, BarrierAlg, BcastAlg, ReduceAlg, ReduceOp,
    ReduceScatterAlg, GATHER_BCAST_CUTOFF_BYTES, RD_CUTOFF_BYTES,
};
