//! Bus-contention integration tests: the shared-resource model that
//! shapes every bandwidth curve in the evaluation.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, CostModel, Node, PAddr, UserProc};
use shrimp_sim::{Kernel, SimDur, SimTime};

fn node_on(kernel: &Kernel) -> Arc<Node> {
    Node::new(
        kernel.handle(),
        NodeId(0),
        1024,
        CostModel::shrimp_prototype(),
    )
}

#[test]
fn dma_delays_cpu_copy_on_the_memory_bus() {
    // A large incoming DMA stream and a CPU copy contend for the Xpress
    // bus: the copy must take longer than it would alone.
    fn copy_time(with_dma: bool) -> SimDur {
        let kernel = Kernel::new();
        let node = node_on(&kernel);
        let out: Arc<Mutex<SimDur>> = Arc::new(Mutex::new(SimDur::ZERO));
        if with_dma {
            // 10 x 32 KB of DMA arriving back to back.
            for i in 0..10u64 {
                let n = Arc::clone(&node);
                kernel.schedule_in(SimDur::from_us(i as f64), move || {
                    n.dma_write(PAddr(i * 32_768), vec![0xAA; 32_768], |_| {});
                });
            }
        }
        {
            let node = Arc::clone(&node);
            let out = Arc::clone(&out);
            kernel.spawn("copier", move |ctx| {
                let p = UserProc::new(node, "copier");
                let src = p.alloc(128 * 1024, CacheMode::WriteBack);
                let dst = p.alloc(128 * 1024, CacheMode::WriteBack);
                let t0 = ctx.now();
                p.copy(ctx, src, dst, 128 * 1024).unwrap();
                *out.lock() = ctx.now() - t0;
            });
        }
        kernel.run_until_quiescent().unwrap();
        let v = *out.lock();
        v
    }
    let alone = copy_time(false);
    let contended = copy_time(true);
    assert!(
        contended > alone + SimDur::from_us(100.0),
        "contended copy {contended} should exceed uncontended {alone}"
    );
}

#[test]
fn back_to_back_dma_reads_and_writes_share_eisa() {
    let kernel = Kernel::new();
    let node = node_on(&kernel);
    node.mem().write(PAddr(0), &[1u8; 16_384]);
    let times: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let t = Arc::clone(&times);
        node.dma_read(PAddr(0), 16_384, move |at, data| {
            assert_eq!(data.len(), 16_384);
            t.lock().push(at);
        });
    }
    {
        let t = Arc::clone(&times);
        node.dma_write(PAddr(65_536), vec![2u8; 16_384], move |at| {
            t.lock().push(at)
        });
    }
    kernel.run_until_quiescent().unwrap();
    let times = times.lock();
    // 16 KB at 30 MB/s = 546 us each; the second transfer must queue
    // behind the first on the EISA bus.
    let gap = times[1] - times[0];
    assert!(
        gap >= SimDur::from_us(500.0),
        "EISA serialization gap {gap}"
    );
}

#[test]
fn writethrough_stores_contend_with_dma() {
    // Write-through store runs reserve memory-bus bandwidth; heavy DMA
    // traffic slows them down.
    fn store_time(with_dma: bool) -> SimDur {
        let kernel = Kernel::new();
        let node = node_on(&kernel);
        if with_dma {
            for i in 0..20u64 {
                let n = Arc::clone(&node);
                kernel.schedule_in(SimDur::from_us(i as f64 * 10.0), move || {
                    n.dma_write(PAddr(i * 32_768), vec![0xAA; 32_768], |_| {});
                });
            }
        }
        let out: Arc<Mutex<SimDur>> = Arc::new(Mutex::new(SimDur::ZERO));
        {
            let node = Arc::clone(&node);
            let out = Arc::clone(&out);
            kernel.spawn("storer", move |ctx| {
                let p = UserProc::new(node, "storer");
                let buf = p.alloc(64 * 1024, CacheMode::WriteThrough);
                let t0 = ctx.now();
                p.write(ctx, buf, &vec![7u8; 64 * 1024]).unwrap();
                *out.lock() = ctx.now() - t0;
            });
        }
        kernel.run_until_quiescent().unwrap();
        let v = *out.lock();
        v
    }
    let alone = store_time(false);
    let contended = store_time(true);
    assert!(contended > alone, "contended {contended} vs alone {alone}");
}

#[test]
#[should_panic(expected = "interrupt with no handler")]
fn interrupt_without_handler_is_a_configuration_bug() {
    let kernel = Kernel::new();
    let node = node_on(&kernel);
    node.raise_interrupt(shrimp_node::Interrupt { vector: 1, info: 0 });
    let _ = kernel.run_until_quiescent();
}

#[test]
fn write_back_traffic_stays_off_the_bus_model() {
    // Write-back stores charge no memory-bus reservation: a concurrent
    // DMA stream finishes at the same time with or without them.
    fn dma_done(with_stores: bool) -> SimTime {
        let kernel = Kernel::new();
        let node = node_on(&kernel);
        let done: Arc<Mutex<SimTime>> = Arc::new(Mutex::new(SimTime::ZERO));
        {
            let d = Arc::clone(&done);
            node.dma_write(PAddr(0), vec![1u8; 65_536], move |at| *d.lock() = at);
        }
        if with_stores {
            let node = Arc::clone(&node);
            kernel.spawn("storer", move |ctx| {
                let p = UserProc::new(node, "storer");
                let buf = p.alloc(64 * 1024, CacheMode::WriteBack);
                p.write(ctx, buf, &vec![7u8; 64 * 1024]).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        let v = *done.lock();
        v
    }
    assert_eq!(dma_done(false), dma_done(true));
}
