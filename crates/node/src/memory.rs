//! Physical memory and page frame allocation.

use parking_lot::Mutex;

/// Page size of the simulated Pentium nodes (4 KB).
pub const PAGE_SIZE: usize = 4096;

/// A physical byte address on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PAddr(pub u64);

impl PAddr {
    /// Physical page number containing this address.
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Byte offset within the page.
    pub fn offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }
}

/// A virtual byte address within one process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Virtual page number containing this address.
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Byte offset within the page.
    pub fn offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Address advanced by `n` bytes.
    #[allow(clippy::should_implement_trait)] // pointer-style offset, not ops::Add
    pub fn add(self, n: usize) -> VAddr {
        VAddr(self.0 + n as u64)
    }

    /// True if the address is 4-byte (word) aligned — the alignment the
    /// SHRIMP deliberate-update engine requires of source and destination.
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(4)
    }
}

/// The DRAM of one node: a flat byte array with page-frame accounting.
///
/// Reads and writes here are *functional only* — they move bytes without
/// charging simulated time. Timing is charged by the caller (CPU store
/// helpers in [`crate::UserProc`], DMA engines in [`crate::Node`]).
#[derive(Debug)]
pub struct PhysMem {
    data: Mutex<Vec<u8>>,
}

impl PhysMem {
    /// Allocate `pages` page frames of zeroed memory.
    pub fn new(pages: usize) -> PhysMem {
        PhysMem {
            data: Mutex::new(vec![0; pages * PAGE_SIZE]),
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of page frames.
    pub fn pages(&self) -> usize {
        self.len() / PAGE_SIZE
    }

    /// Copy `out.len()` bytes starting at `at` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, at: PAddr, out: &mut [u8]) {
        let data = self.data.lock();
        let s = at.0 as usize;
        out.copy_from_slice(&data[s..s + out.len()]);
    }

    /// Copy `bytes` into memory starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&self, at: PAddr, bytes: &[u8]) {
        let mut data = self.data.lock();
        let s = at.0 as usize;
        data[s..s + bytes.len()].copy_from_slice(bytes);
    }

    /// Read a little-endian u32 (flag words, descriptors).
    pub fn read_u32(&self, at: PAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(at, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write a little-endian u32.
    pub fn write_u32(&self, at: PAddr, v: u32) {
        self.write(at, &v.to_le_bytes());
    }
}

/// A simple page-frame allocator (free list + bump).
#[derive(Debug)]
pub struct PageAllocator {
    next: u64,
    limit: u64,
    free: Vec<u64>,
}

impl PageAllocator {
    /// Manage frames `[first, first + count)`.
    pub fn new(first: u64, count: u64) -> PageAllocator {
        PageAllocator {
            next: first,
            limit: first + count,
            free: Vec::new(),
        }
    }

    /// Allocate `n` *contiguous* page frames; returns the first frame
    /// number, or `None` if out of memory. Freed single frames are reused
    /// only for single-frame requests.
    pub fn alloc(&mut self, n: u64) -> Option<u64> {
        if n == 1 {
            if let Some(f) = self.free.pop() {
                return Some(f);
            }
        }
        if self.next + n <= self.limit {
            let f = self.next;
            self.next += n;
            Some(f)
        } else {
            None
        }
    }

    /// Return frames to the allocator.
    pub fn free(&mut self, first: u64, n: u64) {
        for f in first..first + n {
            debug_assert!(!self.free.contains(&f), "double free of frame {f}");
            self.free.push(f);
        }
    }

    /// Frames still available (contiguity ignored).
    pub fn available(&self) -> u64 {
        (self.limit - self.next) + self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_split_into_page_and_offset() {
        let a = PAddr(2 * PAGE_SIZE as u64 + 17);
        assert_eq!(a.page(), 2);
        assert_eq!(a.offset(), 17);
        let v = VAddr(5 * PAGE_SIZE as u64);
        assert_eq!(v.page(), 5);
        assert_eq!(v.offset(), 0);
        assert!(v.is_word_aligned());
        assert!(!v.add(2).is_word_aligned());
    }

    #[test]
    fn physmem_read_write_round_trip() {
        let m = PhysMem::new(2);
        m.write(PAddr(100), b"hello shrimp");
        let mut out = [0u8; 12];
        m.read(PAddr(100), &mut out);
        assert_eq!(&out, b"hello shrimp");
        m.write_u32(PAddr(0), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(PAddr(0)), 0xDEAD_BEEF);
        assert_eq!(m.pages(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic]
    fn physmem_out_of_bounds_panics() {
        let m = PhysMem::new(1);
        m.write(PAddr(PAGE_SIZE as u64 - 2), &[1, 2, 3, 4]);
    }

    #[test]
    fn allocator_bumps_and_reuses() {
        let mut a = PageAllocator::new(10, 5);
        assert_eq!(a.alloc(2), Some(10));
        assert_eq!(a.alloc(1), Some(12));
        assert_eq!(a.available(), 2);
        a.free(12, 1);
        assert_eq!(a.alloc(1), Some(12)); // reused
        assert_eq!(a.alloc(3), None); // only 2 contiguous left
        assert_eq!(a.alloc(2), Some(13));
        assert_eq!(a.available(), 0);
    }
}
