//! One PC node: DRAM, buses, DMA service, snoop and interrupt hooks.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;
use shrimp_sim::{BandwidthResource, SimBuf, SimDur, SimHandle, SimTime};

use crate::costs::CostModel;
use crate::memory::{PAddr, PageAllocator, PhysMem, PAGE_SIZE};

/// A run of CPU stores observed on the memory bus, reported to the NIC's
/// snoop logic. The stored data is already visible in [`Node::mem`]; the
/// NIC reads it from there if it needs to packetize it.
#[derive(Debug, Clone, Copy)]
pub struct SnoopWrite {
    /// Physical address of the first byte written.
    pub paddr: PAddr,
    /// Length of the contiguous write run in bytes (never crosses a page
    /// boundary).
    pub len: usize,
    /// Time at which the last store of the run completed.
    pub at: SimTime,
}

/// An interrupt raised to the node CPU.
#[derive(Debug, Clone)]
pub struct Interrupt {
    /// Interrupt source identifier (NIC notification, receive-path
    /// freeze, buffer exhaustion, ...).
    pub vector: u32,
    /// Source-specific data word (e.g. the physical page involved).
    pub info: u64,
}

type SnoopHook = Arc<dyn Fn(SnoopWrite) + Send + Sync>;
type InterruptHook = Arc<dyn Fn(Interrupt) + Send + Sync>;

/// A simulated DEC 560ST node: 60 MHz Pentium, DRAM, Xpress memory bus,
/// EISA expansion bus.
///
/// The node is pure hardware: user processes are modelled by
/// [`crate::UserProc`], the network interface by `shrimp-nic`, and system
/// software by `shrimp-core`.
pub struct Node {
    id: NodeId,
    handle: SimHandle,
    costs: CostModel,
    mem: Arc<PhysMem>,
    membus: Arc<BandwidthResource>,
    eisa: Arc<BandwidthResource>,
    page_alloc: Mutex<PageAllocator>,
    snoop_hook: Mutex<Option<SnoopHook>>,
    interrupt_hook: Mutex<Option<InterruptHook>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Build a node with `mem_pages` of DRAM and the given cost model.
    pub fn new(handle: SimHandle, id: NodeId, mem_pages: usize, costs: CostModel) -> Arc<Node> {
        let membus = Arc::new(BandwidthResource::new(
            "xpress-membus",
            costs.membus_bytes_per_sec,
            costs.membus_per_txn,
        ));
        let eisa = Arc::new(BandwidthResource::new(
            "eisa",
            costs.eisa_bytes_per_sec,
            costs.eisa_per_txn,
        ));
        Arc::new(Node {
            id,
            handle,
            costs,
            mem: Arc::new(PhysMem::new(mem_pages)),
            membus,
            eisa,
            page_alloc: Mutex::new(PageAllocator::new(0, mem_pages as u64)),
            snoop_hook: Mutex::new(None),
            interrupt_hook: Mutex::new(None),
        })
    }

    /// This node's mesh id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The calibrated cost model in force on this node.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The node's DRAM.
    pub fn mem(&self) -> &Arc<PhysMem> {
        &self.mem
    }

    /// The Xpress memory bus (CPU copies and DMA contend here).
    pub fn membus(&self) -> &Arc<BandwidthResource> {
        &self.membus
    }

    /// The EISA expansion bus (NIC DMA and programmed I/O contend here).
    pub fn eisa(&self) -> &Arc<BandwidthResource> {
        &self.eisa
    }

    /// The simulation handle this node schedules events with.
    pub fn sim(&self) -> &SimHandle {
        &self.handle
    }

    /// Allocate `n` contiguous physical page frames.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of memory — simulation configurations
    /// size DRAM generously and exhaustion indicates a harness bug.
    pub fn alloc_frames(&self, n: u64) -> u64 {
        self.page_alloc
            .lock()
            .alloc(n)
            .unwrap_or_else(|| panic!("node {} out of physical memory", self.id))
    }

    /// Return `n` frames starting at `first` to the allocator.
    pub fn free_frames(&self, first: u64, n: u64) {
        self.page_alloc.lock().free(first, n);
    }

    /// Install the memory-bus snoop hook (the NIC's snoop logic). At most
    /// one hook; installing replaces the previous one.
    pub fn set_snoop_hook(&self, hook: impl Fn(SnoopWrite) + Send + Sync + 'static) {
        *self.snoop_hook.lock() = Some(Arc::new(hook));
    }

    /// Report a write-through/uncached store run to the snoop hook, if any.
    pub fn snoop(&self, w: SnoopWrite) {
        let hook = self.snoop_hook.lock().clone();
        if let Some(h) = hook {
            h(w);
        }
    }

    /// Install the CPU interrupt hook (the OS's first-level handler).
    pub fn set_interrupt_hook(&self, hook: impl Fn(Interrupt) + Send + Sync + 'static) {
        *self.interrupt_hook.lock() = Some(Arc::new(hook));
    }

    /// Raise an interrupt; the OS hook runs after the configured
    /// interrupt latency.
    ///
    /// # Panics
    ///
    /// Panics (at dispatch time) if no interrupt hook is installed.
    pub fn raise_interrupt(self: &Arc<Self>, irq: Interrupt) {
        let me = Arc::clone(self);
        self.handle
            .schedule_in(self.costs.interrupt_latency, move || {
                let hook = me
                    .interrupt_hook
                    .lock()
                    .clone()
                    .unwrap_or_else(|| panic!("node {}: interrupt with no handler", me.id));
                hook(irq);
            });
    }

    /// Start a DMA transfer **into** DRAM (the NIC's incoming DMA engine):
    /// reserves the EISA bus and the memory bus, commits the bytes when
    /// the transfer completes, then calls `on_done` with the completion
    /// time. The data becomes visible to polling CPUs only at completion.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn dma_write(
        self: &Arc<Self>,
        paddr: PAddr,
        data: impl Into<SimBuf>,
        on_done: impl FnOnce(SimTime) + Send + 'static,
    ) {
        let data = data.into();
        let now = self.handle.now();
        let bytes = data.len();
        let setup = self.costs.dma_setup;
        let e = self.eisa.reserve(now + setup, bytes);
        let m = self.membus.reserve(now + setup, bytes);
        let done = e.end.max(m.end);
        let me = Arc::clone(self);
        self.handle.schedule_at(done, move || {
            me.mem.write(paddr, &data);
            on_done(done);
        });
    }

    /// Start a DMA transfer **out of** DRAM (the deliberate-update
    /// engine's source read): reserves both buses, then calls `on_done`
    /// with the completion time and the bytes read (snapshotted at
    /// completion).
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn dma_read(
        self: &Arc<Self>,
        paddr: PAddr,
        len: usize,
        on_done: impl FnOnce(SimTime, Vec<u8>) + Send + 'static,
    ) {
        let now = self.handle.now();
        let setup = self.costs.dma_setup;
        let e = self.eisa.reserve(now + setup, len);
        let m = self.membus.reserve(now + setup, len);
        let done = e.end.max(m.end);
        let me = Arc::clone(self);
        self.handle.schedule_at(done, move || {
            let mut buf = vec![0u8; len];
            me.mem.read(paddr, &mut buf);
            on_done(done, buf);
        });
    }

    /// Charge the memory bus for `bytes` of CPU-generated traffic
    /// starting at `at`; returns when the bus is done with it. Used by
    /// the CPU store/copy helpers so CPU traffic and DMA contend.
    pub fn charge_membus(&self, at: SimTime, bytes: usize) -> SimTime {
        self.membus.reserve(at, bytes).end
    }

    /// Number of whole pages of DRAM.
    pub fn mem_pages(&self) -> usize {
        self.mem.len() / PAGE_SIZE
    }

    /// Convenience: duration of an EISA programmed-I/O access.
    pub fn eisa_pio(&self) -> SimDur {
        self.costs.eisa_pio_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::Kernel;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_node(kernel: &Kernel) -> Arc<Node> {
        Node::new(
            kernel.handle(),
            NodeId(0),
            64,
            CostModel::shrimp_prototype(),
        )
    }

    #[test]
    fn dma_write_commits_at_completion_not_start() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        let when = Arc::new(AtomicU64::new(0));
        let w = Arc::clone(&when);
        let n2 = Arc::clone(&node);
        node.dma_write(PAddr(128), vec![0xAB; 4], move |t| {
            assert_eq!(n2.mem().read_u32(PAddr(128)), 0xABAB_ABAB);
            w.store(t.as_ps(), Ordering::SeqCst);
        });
        // Before the simulation runs, memory is untouched.
        assert_eq!(node.mem().read_u32(PAddr(128)), 0);
        kernel.run_until_quiescent().unwrap();
        assert!(when.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn dma_read_returns_snapshot() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        node.mem().write(PAddr(4096), b"shrimp-data!");
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        node.dma_read(PAddr(4096), 12, move |_t, data| {
            *g.lock() = data;
        });
        kernel.run_until_quiescent().unwrap();
        assert_eq!(got.lock().as_slice(), b"shrimp-data!");
    }

    #[test]
    fn back_to_back_dma_queues_on_eisa() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        let times = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..2 {
            let t = Arc::clone(&times);
            node.dma_write(PAddr(0), vec![1u8; 3300], move |at| t.lock().push(at));
        }
        kernel.run_until_quiescent().unwrap();
        let times = times.lock();
        // 3300 B at 33 MB/s = 100 us serialization each; the second must
        // finish at least 100 us after the first.
        let gap = times[1] - times[0];
        assert!(gap >= SimDur::from_us(100.0), "gap={gap}");
    }

    #[test]
    fn interrupts_reach_the_hook_after_latency() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let h = kernel.handle();
        node.set_interrupt_hook(move |irq| s.lock().push((irq.vector, irq.info, h.now())));
        node.raise_interrupt(Interrupt {
            vector: 7,
            info: 42,
        });
        kernel.run_until_quiescent().unwrap();
        let seen = seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!((seen[0].0, seen[0].1), (7, 42));
        assert_eq!(
            seen[0].2 - SimTime::ZERO,
            CostModel::shrimp_prototype().interrupt_latency
        );
    }

    #[test]
    fn snoop_hook_sees_reported_writes() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        node.set_snoop_hook(move |w| s.lock().push((w.paddr, w.len)));
        node.snoop(SnoopWrite {
            paddr: PAddr(512),
            len: 16,
            at: SimTime::ZERO,
        });
        assert_eq!(*seen.lock(), vec![(PAddr(512), 16)]);
    }

    #[test]
    fn frame_alloc_and_free_round_trip() {
        let kernel = Kernel::new();
        let node = test_node(&kernel);
        let f = node.alloc_frames(4);
        node.free_frames(f, 4);
        assert_eq!(node.mem_pages(), 64);
    }
}
