//! # shrimp-node — the commodity PC node model
//!
//! Each SHRIMP node is a DEC 560ST PC: a 60 MHz Pentium with a 256 KB
//! second-level cache on an Intel Xpress motherboard (73 MB/s burst
//! memory bus) and an EISA expansion bus (33 MB/s burst, bus-mastering
//! DMA), running Linux. This crate models the parts of that machine the
//! communication system touches:
//!
//! * [`PhysMem`] / [`PageAllocator`] — DRAM and page frames;
//! * [`AddressSpace`] — per-process page tables with per-page cache modes
//!   ([`CacheMode`]): write-back, write-through (snoopable by the NIC),
//!   or uncached;
//! * [`Node`] — the buses as contended bandwidth resources, DMA service
//!   used by the NIC, the snoop hook, and interrupts;
//! * [`UserProc`] — timed user-level memory operations (stores, loads,
//!   copies, polls) charged through the calibrated [`CostModel`];
//! * [`Ethernet`] — the slow commodity side channel used for connection
//!   establishment and diagnostics.
//!
//! ```
//! use shrimp_sim::Kernel;
//! use shrimp_mesh::NodeId;
//! use shrimp_node::{Node, UserProc, CostModel, CacheMode};
//!
//! let kernel = Kernel::new();
//! let node = Node::new(kernel.handle(), NodeId(0), 1024, CostModel::shrimp_prototype());
//! kernel.spawn("app", move |ctx| {
//!     let proc_ = UserProc::new(node, "app");
//!     let buf = proc_.alloc(4096, CacheMode::WriteBack);
//!     proc_.write(ctx, buf, b"hello").unwrap();
//!     assert_eq!(proc_.read(ctx, buf, 5).unwrap(), b"hello");
//! });
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod costs;
mod ethernet;
mod memory;
mod mmu;
mod node;
mod user;

pub use costs::CostModel;
pub use ethernet::{EthAddr, EthFrame, Ethernet};
pub use memory::{PAddr, PageAllocator, PhysMem, VAddr, PAGE_SIZE};
pub use mmu::{AddressSpace, CacheMode, MemFault, Pte};
pub use node::{Interrupt, Node, SnoopWrite};
pub use user::UserProc;
