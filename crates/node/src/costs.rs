//! The calibrated cost model.
//!
//! Every software and hardware cost in the simulation is a named constant
//! in [`CostModel`] — one place to read, one place to calibrate. The
//! defaults ([`CostModel::shrimp_prototype`]) are tuned so that the
//! base-layer microbenchmarks reproduce the anchors quoted in the paper
//! (§3.4): a one-word automatic-update transfer of 4.75 µs user-to-user
//! (3.7 µs with caching disabled), a one-word deliberate-update transfer
//! of 7.6 µs, and a DU-0copy peak bandwidth of ≈23 MB/s.
//!
//! The *structure* of every protocol — how many copies, transfers,
//! control packets — comes from the real library implementations; only
//! these per-operation costs are tuned. EXPERIMENTS.md records the final
//! calibration against each figure.

use shrimp_sim::SimDur;

/// Per-operation costs of the simulated node and its software.
///
/// Construct with [`CostModel::shrimp_prototype`] (the calibrated
/// defaults) and override individual fields for ablation studies:
///
/// ```
/// use shrimp_node::CostModel;
/// use shrimp_sim::SimDur;
/// let mut costs = CostModel::shrimp_prototype();
/// costs.au_combine_timeout = SimDur::from_us(4.0); // ablation: slow combine timer
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- buses -------------------------------------------------------
    /// Xpress memory bus burst bandwidth (paper: 73 MB/s).
    pub membus_bytes_per_sec: f64,
    /// Per-transaction memory bus arbitration overhead.
    pub membus_per_txn: SimDur,
    /// EISA expansion bus sustained DMA bandwidth. The nominal burst is
    /// 33 MB/s (paper §3.1); sustained bus-master transfers achieve a
    /// little less, and 30 MB/s reproduces the measured DU curves.
    pub eisa_bytes_per_sec: f64,
    /// Per-transaction EISA arbitration/setup overhead.
    pub eisa_per_txn: SimDur,
    /// One programmed-I/O access to an EISA-decoded address (the
    /// deliberate-update initiation sequence uses two of these).
    pub eisa_pio_access: SimDur,

    // ---- CPU stores and loads ----------------------------------------
    /// First store of a run to a write-through page (cache + bus setup).
    pub store_first_wt: SimDur,
    /// Each subsequent sequential word stored write-through. Sets the
    /// automatic-update streaming rate.
    pub store_word_wt: SimDur,
    /// First store of a run to an uncached page.
    pub store_first_uc: SimDur,
    /// Each subsequent sequential word stored uncached.
    pub store_word_uc: SimDur,
    /// Per-word store to a write-back page (cache hit).
    pub store_word_wb: SimDur,
    /// Per-word load (cache hit assumed for control variables).
    pub load_word: SimDur,
    /// One iteration of a poll loop that misses (load + compare + branch,
    /// plus the cache-invalidation traffic of re-reading a DMA target).
    pub poll_gap: SimDur,

    // ---- memory copies -----------------------------------------------
    /// Fixed cost to enter the copy routine.
    pub copy_setup: SimDur,
    /// `memcpy` bandwidth when the destination is write-back cacheable.
    pub copy_bytes_per_sec_wb: f64,
    /// `memcpy` bandwidth when the destination is write-through (i.e. an
    /// automatic-update send buffer — this is the "extra copy" that also
    /// acts as the send operation).
    pub copy_bytes_per_sec_wt: f64,
    /// `memcpy` bandwidth when the destination is uncached.
    pub copy_bytes_per_sec_uc: f64,

    // ---- NIC datapath --------------------------------------------------
    /// Snoop-logic capture plus outgoing-page-table lookup for a write run.
    pub nic_snoop: SimDur,
    /// Building a packet header into the outgoing FIFO.
    pub nic_packetize: SimDur,
    /// Combine window: how long the packetizer holds an open packet
    /// waiting for a consecutive write before sending (hardware timer).
    pub au_combine_timeout: SimDur,
    /// Deliberate-update engine: decoding the two-access initiation
    /// sequence and starting the source DMA.
    pub du_engine_setup: SimDur,
    /// DMA engine setup per transaction (both directions).
    pub dma_setup: SimDur,
    /// Building a remote-fetch descriptor in the user library and
    /// presenting it to the NIC (one-sided read extension).
    pub fetch_issue: SimDur,
    /// Remote-fetch engine: decoding a presented descriptor and
    /// emitting the request packet.
    pub fetch_engine_setup: SimDur,
    /// Incoming page table lookup + receive checks per packet.
    pub nic_ipt_check: SimDur,
    /// Largest payload the NIC puts in one packet.
    pub max_packet_payload: usize,
    /// Largest automatic-update packet the combining buffer accumulates
    /// before sending. Keeping this small lets a streaming store run
    /// overlap with the receiver's incoming DMA instead of arriving as
    /// one late burst.
    pub au_combine_limit: usize,

    // ---- OS / notifications -------------------------------------------
    /// Hardware interrupt to the node CPU (dispatch into the kernel).
    pub interrupt_latency: SimDur,
    /// Delivering a notification to a user-level handler via a signal
    /// (the paper's current implementation uses UNIX signals; §2.3).
    pub signal_delivery: SimDur,
    /// Exporting a receive buffer: daemon registration plus the
    /// SHRIMP-specific system calls that pin pages and program the IPT.
    pub os_export: SimDur,
    /// Importing a remote buffer: the daemon-to-daemon handshake that
    /// validates permissions and returns the mapping.
    pub os_import: SimDur,

    // ---- library software costs ----------------------------------------
    /// A user-level library procedure call + argument checks.
    pub lib_call: SimDur,
    /// Building or parsing a small message descriptor/header.
    pub lib_descriptor: SimDur,
    /// Updating buffer-management state (queue pointers, credits).
    pub lib_bookkeeping: SimDur,
}

impl CostModel {
    /// Calibrated defaults reproducing the prototype anchors (see module
    /// docs and EXPERIMENTS.md).
    pub fn shrimp_prototype() -> CostModel {
        CostModel {
            membus_bytes_per_sec: 73.0e6,
            membus_per_txn: SimDur::from_ns(50.0),
            eisa_bytes_per_sec: 30.0e6,
            eisa_per_txn: SimDur::from_ns(150.0),
            eisa_pio_access: SimDur::from_ns(1200.0),

            store_first_wt: SimDur::from_ns(950.0),
            store_word_wt: SimDur::from_ns(190.0),
            store_first_uc: SimDur::from_ns(150.0),
            store_word_uc: SimDur::from_ns(200.0),
            store_word_wb: SimDur::from_ns(35.0),
            load_word: SimDur::from_ns(35.0),
            poll_gap: SimDur::from_ns(250.0),

            copy_setup: SimDur::from_ns(300.0),
            copy_bytes_per_sec_wb: 35.0e6,
            copy_bytes_per_sec_wt: 21.0e6,
            copy_bytes_per_sec_uc: 20.0e6,

            nic_snoop: SimDur::from_ns(250.0),
            nic_packetize: SimDur::from_ns(200.0),
            au_combine_timeout: SimDur::from_ns(800.0),
            du_engine_setup: SimDur::from_ns(1100.0),
            dma_setup: SimDur::from_ns(1200.0),
            fetch_issue: SimDur::from_ns(300.0),
            fetch_engine_setup: SimDur::from_ns(900.0),
            nic_ipt_check: SimDur::from_ns(150.0),
            max_packet_payload: 2048,
            au_combine_limit: 256,

            interrupt_latency: SimDur::from_us(5.0),
            signal_delivery: SimDur::from_us(25.0),
            os_export: SimDur::from_us(40.0),
            os_import: SimDur::from_us(500.0),

            lib_call: SimDur::from_ns(300.0),
            lib_descriptor: SimDur::from_ns(350.0),
            lib_bookkeeping: SimDur::from_ns(300.0),
        }
    }

    /// Cost of a run of `words` sequential stores to a page with the
    /// given cache mode.
    pub fn store_run(&self, mode: crate::CacheMode, words: usize) -> SimDur {
        if words == 0 {
            return SimDur::ZERO;
        }
        let extra = (words - 1) as u64;
        match mode {
            crate::CacheMode::WriteThrough => self.store_first_wt + self.store_word_wt * extra,
            crate::CacheMode::Uncached => self.store_first_uc + self.store_word_uc * extra,
            crate::CacheMode::WriteBack => self.store_word_wb * words as u64,
        }
    }

    /// Cost of the first store of a run for the given cache mode (cache
    /// and bus setup; write-through pays the most on this platform,
    /// which is why disabling caching *lowers* small-transfer latency —
    /// the paper's 4.75 µs vs 3.7 µs).
    pub fn store_first(&self, mode: crate::CacheMode) -> SimDur {
        match mode {
            crate::CacheMode::WriteThrough => self.store_first_wt,
            crate::CacheMode::Uncached => self.store_first_uc,
            crate::CacheMode::WriteBack => self.store_word_wb,
        }
    }

    /// Per-word streaming store cost for a cache mode.
    pub fn store_word_of(&self, mode: crate::CacheMode) -> SimDur {
        match mode {
            crate::CacheMode::WriteThrough => self.store_word_wt,
            crate::CacheMode::Uncached => self.store_word_uc,
            crate::CacheMode::WriteBack => self.store_word_wb,
        }
    }

    /// Streaming `memcpy` bandwidth for a destination cache mode.
    pub fn copy_rate(&self, dst_mode: crate::CacheMode) -> f64 {
        match dst_mode {
            crate::CacheMode::WriteBack => self.copy_bytes_per_sec_wb,
            crate::CacheMode::WriteThrough => self.copy_bytes_per_sec_wt,
            crate::CacheMode::Uncached => self.copy_bytes_per_sec_uc,
        }
    }

    /// `memcpy` time for `bytes` into a destination with the given cache
    /// mode: routine setup, the first-store cost, then streaming.
    pub fn copy_time(&self, dst_mode: crate::CacheMode, bytes: usize) -> SimDur {
        self.copy_setup
            + self.store_first(dst_mode)
            + SimDur::per_bytes(bytes.saturating_sub(4), self.copy_rate(dst_mode))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::shrimp_prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheMode;

    #[test]
    fn store_run_zero_words_is_free() {
        let c = CostModel::shrimp_prototype();
        assert_eq!(c.store_run(CacheMode::WriteThrough, 0), SimDur::ZERO);
    }

    #[test]
    fn store_run_first_word_costs_more_writethrough() {
        let c = CostModel::shrimp_prototype();
        let one = c.store_run(CacheMode::WriteThrough, 1);
        let two = c.store_run(CacheMode::WriteThrough, 2);
        assert_eq!(one, c.store_first_wt);
        assert_eq!(two - one, c.store_word_wt);
    }

    #[test]
    fn writeback_stores_are_cheapest() {
        let c = CostModel::shrimp_prototype();
        let wb = c.store_run(CacheMode::WriteBack, 100);
        let wt = c.store_run(CacheMode::WriteThrough, 100);
        let uc = c.store_run(CacheMode::Uncached, 100);
        assert!(wb < wt && wb < uc);
    }

    #[test]
    fn copy_time_scales_with_size() {
        let c = CostModel::shrimp_prototype();
        let small = c.copy_time(CacheMode::WriteBack, 64);
        let large = c.copy_time(CacheMode::WriteBack, 6400);
        assert!(large > small * 50 && large < small * 120);
    }
}
