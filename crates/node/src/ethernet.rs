//! The commodity Ethernet side channel.
//!
//! Besides the fast backplane, the prototype's PC nodes are connected by
//! an ordinary shared Ethernet used for diagnostics, booting, and
//! low-priority messages (paper §3.1). The sockets library uses it to
//! exchange the data needed to establish VMMC mappings during connection
//! setup (§4.3), and the daemons could use it for mapping negotiation.
//!
//! The model is a single shared 10 Mbit/s segment: one bandwidth resource
//! plus a fixed per-frame software overhead (the in-kernel UDP/IP path of
//! 1995-era Linux), delivering into per-(node, port) mailboxes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;
use shrimp_sim::{BandwidthResource, Ctx, SimChannel, SimDur, SimHandle};

/// Address of an Ethernet mailbox: node plus 16-bit port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthAddr {
    /// Destination node.
    pub node: NodeId,
    /// Destination port.
    pub port: u16,
}

/// A received Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthFrame {
    /// Sending node.
    pub from: NodeId,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// The shared Ethernet segment connecting every node.
pub struct Ethernet {
    handle: SimHandle,
    wire: BandwidthResource,
    frame_overhead: SimDur,
    ports: Mutex<HashMap<EthAddr, SimChannel<EthFrame>>>,
}

impl std::fmt::Debug for Ethernet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ethernet").finish_non_exhaustive()
    }
}

impl Ethernet {
    /// A 10 Mbit/s (1.25 MB/s) segment with 300 µs per-frame protocol
    /// overhead, matching mid-90s kernel UDP stacks.
    pub fn new(handle: SimHandle) -> Arc<Ethernet> {
        Arc::new(Ethernet {
            handle,
            wire: BandwidthResource::new("ethernet", 1.25e6, SimDur::from_us(50.0)),
            frame_overhead: SimDur::from_us(300.0),
            ports: Mutex::new(HashMap::new()),
        })
    }

    /// Bind a mailbox at `addr`, returning its receive channel. Binding
    /// an already-bound address returns the existing mailbox.
    pub fn bind(&self, addr: EthAddr) -> SimChannel<EthFrame> {
        self.ports.lock().entry(addr).or_default().clone()
    }

    /// Send `data` from `from` to the mailbox at `to`. The frame is
    /// delivered after protocol overhead plus wire serialization; frames
    /// are reliable and ordered (the real system ran a handshake over
    /// UDP; modelling loss would add nothing to the reproduction).
    ///
    /// The destination mailbox is created on demand, so a send can
    /// precede the matching bind.
    pub fn send(self: &Arc<Self>, from: NodeId, to: EthAddr, data: Vec<u8>) {
        let grant = self
            .wire
            .reserve(self.handle.now() + self.frame_overhead, data.len());
        let me = Arc::clone(self);
        let frame = EthFrame { from, data };
        self.handle.schedule_at(grant.end, move || {
            let ch = me.bind(to);
            let h = me.handle.clone();
            ch.send(&h, frame);
        });
    }

    /// Blocking receive on a mailbox (helper over the bound channel).
    pub fn recv(&self, ctx: &Ctx, addr: EthAddr) -> EthFrame {
        let ch = self.bind(addr);
        ch.recv(ctx)
    }

    /// Like [`Ethernet::recv`] but gives up at `deadline`, returning
    /// `None`. Bounded control-plane waits (connection handshakes, RPC
    /// binds) build their retry loops on this.
    pub fn recv_deadline(
        &self,
        ctx: &Ctx,
        addr: EthAddr,
        deadline: shrimp_sim::SimTime,
    ) -> Option<EthFrame> {
        let ch = self.bind(addr);
        ch.recv_deadline(ctx, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::{Kernel, SimTime};

    #[test]
    fn frames_arrive_in_order_with_ethernet_latency() {
        let kernel = Kernel::new();
        let eth = Ethernet::new(kernel.handle());
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let eth = Arc::clone(&eth);
            let got = Arc::clone(&got);
            kernel.spawn("rx", move |ctx| {
                for _ in 0..2 {
                    let f = eth.recv(
                        ctx,
                        EthAddr {
                            node: NodeId(1),
                            port: 9,
                        },
                    );
                    got.lock().push((f.from, f.data, ctx.now()));
                }
            });
        }
        {
            let eth = Arc::clone(&eth);
            kernel.spawn("tx", move |ctx| {
                eth.send(
                    NodeId(0),
                    EthAddr {
                        node: NodeId(1),
                        port: 9,
                    },
                    vec![1, 2, 3],
                );
                ctx.advance(SimDur::from_us(1.0));
                eth.send(
                    NodeId(2),
                    EthAddr {
                        node: NodeId(1),
                        port: 9,
                    },
                    vec![4],
                );
            });
        }
        kernel.run_until_quiescent().unwrap();
        let got = got.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, NodeId(0));
        assert_eq!(got[0].1, vec![1, 2, 3]);
        assert_eq!(got[1].0, NodeId(2));
        assert_eq!(got[1].1, vec![4]);
        // Ethernet is slow: at least the 300us frame overhead.
        assert!(got[0].2 >= SimTime::ZERO + SimDur::from_us(300.0));
    }

    #[test]
    fn send_before_bind_is_not_lost() {
        let kernel = Kernel::new();
        let eth = Ethernet::new(kernel.handle());
        eth.send(
            NodeId(0),
            EthAddr {
                node: NodeId(3),
                port: 1,
            },
            vec![9],
        );
        let got = Arc::new(Mutex::new(None));
        {
            let eth = Arc::clone(&eth);
            let got = Arc::clone(&got);
            kernel.spawn("late-rx", move |ctx| {
                ctx.advance(SimDur::from_us(10_000.0));
                *got.lock() = Some(
                    eth.recv(
                        ctx,
                        EthAddr {
                            node: NodeId(3),
                            port: 1,
                        },
                    )
                    .data,
                );
            });
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(got.lock().clone(), Some(vec![9]));
    }

    #[test]
    fn distinct_ports_are_independent() {
        let kernel = Kernel::new();
        let eth = Ethernet::new(kernel.handle());
        let a = eth.bind(EthAddr {
            node: NodeId(0),
            port: 1,
        });
        let b = eth.bind(EthAddr {
            node: NodeId(0),
            port: 2,
        });
        eth.send(
            NodeId(1),
            EthAddr {
                node: NodeId(0),
                port: 2,
            },
            vec![5],
        );
        kernel.run_until_quiescent().unwrap();
        assert!(a.is_empty());
        assert_eq!(b.try_recv().map(|f| f.data), Some(vec![5]));
    }
}
