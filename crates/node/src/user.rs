//! User processes: timed access to simulated virtual memory.
//!
//! A [`UserProc`] ties together a node, an address space, and the cost
//! model. Message *payloads and flags* live in simulated DRAM and are
//! moved with the timed operations here; library bookkeeping (queue
//! indices, descriptors held in Rust structures) is charged through the
//! abstract `lib_*` costs of the [`CostModel`](crate::CostModel).

use std::sync::Arc;

use shrimp_sim::Ctx;

use crate::memory::{PAddr, VAddr, PAGE_SIZE};

/// Granularity at which long store runs and copies report to the snoop
/// logic, letting the NIC stream packets while the run continues.
const STREAM_QUANTUM: usize = 512;
use crate::mmu::{AddressSpace, CacheMode, MemFault, Pte};
use crate::node::{Node, SnoopWrite};

/// A user-level process on one node.
///
/// Cloning is cheap and shares the same address space (threads of one
/// process).
#[derive(Clone)]
pub struct UserProc {
    name: Arc<String>,
    node: Arc<Node>,
    aspace: Arc<AddressSpace>,
}

impl std::fmt::Debug for UserProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserProc")
            .field("name", &self.name)
            .field("node", &self.node.id())
            .finish()
    }
}

impl UserProc {
    /// Create a process with an empty address space on `node`.
    pub fn new(node: Arc<Node>, name: impl Into<String>) -> UserProc {
        UserProc {
            name: Arc::new(name.into()),
            node,
            aspace: Arc::new(AddressSpace::new()),
        }
    }

    /// Process name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node this process runs on.
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// The process's page table.
    pub fn aspace(&self) -> &Arc<AddressSpace> {
        &self.aspace
    }

    /// Allocate a writable buffer of `bytes`, page-aligned, with the
    /// given cache mode. Fresh physical frames are mapped for it.
    pub fn alloc(&self, bytes: usize, cache: CacheMode) -> VAddr {
        self.alloc_at_offset(bytes, 0, cache)
    }

    /// Allocate a writable buffer whose start is `offset` bytes into its
    /// first page — used to exercise the word-alignment restrictions of
    /// the deliberate-update engine.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE` or `bytes == 0`.
    pub fn alloc_at_offset(&self, bytes: usize, offset: usize, cache: CacheMode) -> VAddr {
        assert!(offset < PAGE_SIZE, "offset must be within one page");
        assert!(bytes > 0, "cannot allocate an empty buffer");
        let pages = (offset + bytes).div_ceil(PAGE_SIZE) as u64;
        let vfirst = self.aspace.reserve_vpages(pages);
        let pfirst = self.node.alloc_frames(pages);
        for i in 0..pages {
            self.aspace.map(
                vfirst + i,
                Pte {
                    ppage: pfirst + i,
                    writable: true,
                    cache,
                },
            );
        }
        VAddr(vfirst * PAGE_SIZE as u64 + offset as u64)
    }

    /// Timed CPU store of `data` at `va`: charges the per-word store cost
    /// for each page run, contends on the memory bus for write-through and
    /// uncached pages, and reports those runs to the NIC snoop logic.
    ///
    /// # Errors
    ///
    /// Fails without side effects if any page is unmapped or read-only.
    pub fn write(&self, ctx: &Ctx, va: VAddr, data: &[u8]) -> Result<(), MemFault> {
        if data.is_empty() {
            return Ok(());
        }
        let chunks = self.aspace.translate_range(va, data.len(), true)?;
        let costs = self.node.costs();
        let mut off = 0usize;
        let mut first_run = true;
        for (pa, len, cache) in chunks {
            // Sub-chunk so a long store run *streams*: the NIC sees (and
            // can forward) earlier stores while later ones are still
            // executing, as the real snooping hardware does. The
            // first-store cost is charged once for the whole run.
            let mut sub = 0usize;
            while sub < len {
                let n = (len - sub).min(STREAM_QUANTUM);
                let words = n.div_ceil(4);
                let mut cpu = costs.store_run(cache, words);
                if !first_run {
                    cpu = cpu - costs.store_first(cache) + costs.store_word_of(cache);
                }
                first_run = false;
                let mut end = ctx.now() + cpu;
                if !matches!(cache, CacheMode::WriteBack) {
                    end = end.max(self.node.charge_membus(ctx.now(), n));
                }
                ctx.sleep_until(end);
                let pa_sub = PAddr(pa.0 + sub as u64);
                self.node
                    .mem()
                    .write(pa_sub, &data[off + sub..off + sub + n]);
                if !matches!(cache, CacheMode::WriteBack) {
                    self.node.snoop(SnoopWrite {
                        paddr: pa_sub,
                        len: n,
                        at: ctx.now(),
                    });
                }
                sub += n;
            }
            off += len;
        }
        Ok(())
    }

    /// Timed CPU load of `len` bytes at `va`.
    ///
    /// # Errors
    ///
    /// Fails without side effects if any page is unmapped.
    pub fn read(&self, ctx: &Ctx, va: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        let chunks = self.aspace.translate_range(va, len, false)?;
        let costs = self.node.costs();
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        for (pa, n, _cache) in chunks {
            let words = n.div_ceil(4);
            ctx.advance(costs.load_word * words as u64);
            self.node.mem().read(pa, &mut out[off..off + n]);
            off += n;
        }
        Ok(out)
    }

    /// Timed `memcpy` from `src` to `dst` within this address space,
    /// charged at the copy bandwidth of the destination's cache mode
    /// (this is how an "extra copy" becomes the automatic-update send
    /// operation: the destination is a write-through AU-bound region and
    /// each chunk is snooped).
    ///
    /// # Errors
    ///
    /// Fails if either range faults. Partial time may have been charged
    /// for earlier chunks, but no bytes of a faulting chunk are moved.
    pub fn copy(&self, ctx: &Ctx, src: VAddr, dst: VAddr, len: usize) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let costs = self.node.costs().clone();
        // Chunk by destination pages, then sub-chunk so long copies
        // stream through the snooping NIC instead of arriving as one
        // late burst.
        let dst_chunks = self.aspace.translate_range(dst, len, true)?;
        ctx.advance(costs.copy_setup + costs.store_first(dst_chunks[0].2));
        let mut off = 0usize;
        for (dpa, page_n, dcache) in dst_chunks {
            let mut sub = 0usize;
            while sub < page_n {
                let n = (page_n - sub).min(STREAM_QUANTUM);
                let data = {
                    // Source read is untimed here: its cost is folded
                    // into the copy bandwidth.
                    let schunks = self.aspace.translate_range(src.add(off + sub), n, false)?;
                    let mut buf = vec![0u8; n];
                    let mut so = 0usize;
                    for (spa, sn, _) in schunks {
                        self.node.mem().read(spa, &mut buf[so..so + sn]);
                        so += sn;
                    }
                    buf
                };
                let cpu = shrimp_sim::SimDur::per_bytes(n, costs.copy_rate(dcache));
                let mut end = ctx.now() + cpu;
                end = end.max(self.node.charge_membus(ctx.now(), 2 * n));
                ctx.sleep_until(end);
                let dpa_sub = PAddr(dpa.0 + sub as u64);
                self.node.mem().write(dpa_sub, &data);
                if !matches!(dcache, CacheMode::WriteBack) {
                    self.node.snoop(SnoopWrite {
                        paddr: dpa_sub,
                        len: n,
                        at: ctx.now(),
                    });
                }
                sub += n;
            }
            off += page_n;
        }
        Ok(())
    }

    /// Timed store of a little-endian word (flags, descriptors).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped or read-only.
    pub fn write_u32(&self, ctx: &Ctx, va: VAddr, v: u32) -> Result<(), MemFault> {
        self.write(ctx, va, &v.to_le_bytes())
    }

    /// Timed load of a little-endian word.
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    pub fn read_u32(&self, ctx: &Ctx, va: VAddr) -> Result<u32, MemFault> {
        let b = self.read(ctx, va, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Poll the word at `va` until `pred` is true, charging one
    /// [`poll_gap`](crate::CostModel::poll_gap) per missed iteration.
    /// Returns the satisfying value.
    ///
    /// The poll budget is bounded by `max_polls`; returns `None` if
    /// exhausted, letting callers fall back to blocking (the paper's
    /// libraries switch between polling and blocking; §6).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    pub fn poll_u32(
        &self,
        ctx: &Ctx,
        va: VAddr,
        max_polls: usize,
        mut pred: impl FnMut(u32) -> bool,
    ) -> Result<Option<u32>, MemFault> {
        let (pa, _cache) = self.aspace.translate(va, false)?;
        let costs = self.node.costs();
        for _ in 0..max_polls {
            let v = self.node.mem().read_u32(pa);
            if pred(v) {
                ctx.advance(costs.load_word);
                return Ok(Some(v));
            }
            ctx.advance(costs.poll_gap);
        }
        Ok(None)
    }

    /// Untimed read for assertions and test setup.
    ///
    /// # Errors
    ///
    /// Fails if any page is unmapped.
    pub fn peek(&self, va: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        let chunks = self.aspace.translate_range(va, len, false)?;
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        for (pa, n, _) in chunks {
            self.node.mem().read(pa, &mut out[off..off + n]);
            off += n;
        }
        Ok(out)
    }

    /// Untimed write for test setup (does not snoop).
    ///
    /// # Errors
    ///
    /// Fails if any page is unmapped or read-only.
    pub fn poke(&self, va: VAddr, data: &[u8]) -> Result<(), MemFault> {
        let chunks = self.aspace.translate_range(va, data.len(), true)?;
        let mut off = 0usize;
        for (pa, n, _) in chunks {
            self.node.mem().write(pa, &data[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Charge the cost of one library procedure call.
    pub fn charge_call(&self, ctx: &Ctx) {
        ctx.advance(self.node.costs().lib_call);
    }

    /// Charge the cost of building or parsing a descriptor/header.
    pub fn charge_descriptor(&self, ctx: &Ctx) {
        ctx.advance(self.node.costs().lib_descriptor);
    }

    /// Charge the cost of buffer-management bookkeeping.
    pub fn charge_bookkeeping(&self, ctx: &Ctx) {
        ctx.advance(self.node.costs().lib_bookkeeping);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use parking_lot::Mutex;
    use shrimp_mesh::NodeId;
    use shrimp_sim::{Kernel, SimDur, SimTime};

    #[test]
    fn write_then_read_round_trips_data() {
        let kernel = Kernel::new();
        let done = Arc::new(Mutex::new(false));
        let d = Arc::clone(&done);
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let buf = p.alloc(10_000, CacheMode::WriteBack);
            let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            p.write(ctx, buf, &data).unwrap();
            assert_eq!(p.read(ctx, buf, 10_000).unwrap(), data);
            *d.lock() = true;
        });
        kernel.run_until_quiescent().unwrap();
        assert!(*done.lock());
    }

    fn setup_in_proc(ctx: &Ctx) -> UserProc {
        let node = Node::new(ctx.handle(), NodeId(0), 256, CostModel::shrimp_prototype());
        UserProc::new(node, "tester")
    }

    #[test]
    fn writethrough_stores_are_snooped_writeback_not() {
        let kernel = Kernel::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let s2 = Arc::clone(&s);
            p.node().set_snoop_hook(move |w| s2.lock().push(w.len));
            let wt = p.alloc(64, CacheMode::WriteThrough);
            let wb = p.alloc(64, CacheMode::WriteBack);
            p.write(ctx, wt, &[1u8; 64]).unwrap();
            p.write(ctx, wb, &[2u8; 64]).unwrap();
        });
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*seen.lock(), vec![64]);
    }

    #[test]
    fn write_to_unmapped_address_faults() {
        let kernel = Kernel::new();
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let err = p.write(ctx, VAddr(0), &[1]).unwrap_err();
            assert!(matches!(err, MemFault::NotMapped { .. }));
        });
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn writethrough_write_takes_longer_than_writeback() {
        let kernel = Kernel::new();
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let wt = p.alloc(4096, CacheMode::WriteThrough);
            let wb = p.alloc(4096, CacheMode::WriteBack);
            let t0 = ctx.now();
            p.write(ctx, wb, &[1u8; 4096]).unwrap();
            let t1 = ctx.now();
            p.write(ctx, wt, &[1u8; 4096]).unwrap();
            let t2 = ctx.now();
            t.lock().push((t1 - t0, t2 - t1));
        });
        kernel.run_until_quiescent().unwrap();
        let g = times.lock();
        let (wb_time, wt_time) = g[0];
        assert!(wt_time > wb_time * 3, "wt={wt_time} wb={wb_time}");
    }

    #[test]
    fn poll_sees_concurrent_dma_flag() {
        let kernel = Kernel::new();
        let observed = Arc::new(Mutex::new(None));
        let o = Arc::clone(&observed);
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let flag = p.alloc(4, CacheMode::WriteBack);
            let (pa, _) = p.aspace().translate(flag, false).unwrap();
            // Simulated device sets the flag via DMA after 50 us.
            let node = Arc::clone(p.node());
            ctx.schedule_in(SimDur::from_us(50.0), move || {
                node.dma_write(pa, 1u32.to_le_bytes().to_vec(), |_| {});
            });
            let v = p.poll_u32(ctx, flag, 100_000, |v| v != 0).unwrap();
            *o.lock() = Some((v, ctx.now()));
        });
        kernel.run_until_quiescent().unwrap();
        let (v, at) = observed.lock().unwrap();
        assert_eq!(v, Some(1));
        assert!(at >= SimTime::ZERO + SimDur::from_us(50.0));
        assert!(at < SimTime::ZERO + SimDur::from_us(60.0));
    }

    #[test]
    fn poll_budget_exhaustion_returns_none() {
        let kernel = Kernel::new();
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let flag = p.alloc(4, CacheMode::WriteBack);
            let v = p.poll_u32(ctx, flag, 10, |v| v != 0).unwrap();
            assert_eq!(v, None);
        });
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn copy_to_writethrough_snoops_and_is_slower() {
        let kernel = Kernel::new();
        let result = Arc::new(Mutex::new((SimDur::ZERO, SimDur::ZERO, 0usize)));
        let r = Arc::clone(&result);
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let snoops = Arc::new(Mutex::new(0usize));
            let sn = Arc::clone(&snoops);
            p.node().set_snoop_hook(move |_| *sn.lock() += 1);
            let src = p.alloc(8192, CacheMode::WriteBack);
            let dst_wb = p.alloc(8192, CacheMode::WriteBack);
            let dst_wt = p.alloc(8192, CacheMode::WriteThrough);
            p.poke(src, &vec![7u8; 8192]).unwrap();
            let t0 = ctx.now();
            p.copy(ctx, src, dst_wb, 8192).unwrap();
            let t1 = ctx.now();
            p.copy(ctx, src, dst_wt, 8192).unwrap();
            let t2 = ctx.now();
            assert_eq!(p.peek(dst_wt, 8192).unwrap(), vec![7u8; 8192]);
            *r.lock() = (t1 - t0, t2 - t1, *snoops.lock());
        });
        kernel.run_until_quiescent().unwrap();
        let (wb, wt, snoops) = *result.lock();
        assert!(wt > wb, "wt copy {wt} should exceed wb copy {wb}");
        assert_eq!(snoops, 16); // 8 KB streamed in 512-byte quanta
    }

    #[test]
    fn alloc_at_offset_gives_unaligned_buffer() {
        let kernel = Kernel::new();
        kernel.spawn("t", move |ctx| {
            let p = setup_in_proc(ctx);
            let v = p.alloc_at_offset(100, 3, CacheMode::WriteBack);
            assert!(!v.is_word_aligned());
            p.write(ctx, v, &[9u8; 100]).unwrap();
            assert_eq!(p.peek(v, 100).unwrap(), vec![9u8; 100]);
        });
        kernel.run_until_quiescent().unwrap();
    }
}
