//! Per-process virtual memory: page tables, translation, protection.
//!
//! The SHRIMP design leans on the ordinary MMU for protection: receive
//! buffers are exported at page granularity, deliberate-update source
//! pages are validated through the page tables, and the incoming page
//! table of the NIC guards physical pages. This module models the
//! process-side page table; the NIC-side tables live in `shrimp-nic`.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::memory::{PAddr, VAddr, PAGE_SIZE};

/// Per-page cacheability, as configured in the process page tables
/// (paper §3.1: write-through or write-back per virtual page; caching can
/// also be disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheMode {
    /// Cached write-back (default for ordinary data).
    #[default]
    WriteBack,
    /// Cached write-through — required for automatic-update send regions,
    /// so every store appears on the memory bus for the NIC to snoop.
    WriteThrough,
    /// Uncached.
    Uncached,
}

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical page frame.
    pub ppage: u64,
    /// Whether user stores are permitted.
    pub writable: bool,
    /// Cacheability of the page.
    pub cache: CacheMode,
}

/// A failed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// No mapping for the virtual page.
    NotMapped {
        /// The faulting virtual page number.
        vpage: u64,
    },
    /// Store attempted to a read-only page.
    ReadOnly {
        /// The faulting virtual page number.
        vpage: u64,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::NotMapped { vpage } => write!(f, "virtual page {vpage} not mapped"),
            MemFault::ReadOnly { vpage } => write!(f, "store to read-only virtual page {vpage}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// One process's address space: a software page table plus a bump
/// allocator for fresh virtual ranges.
#[derive(Debug)]
pub struct AddressSpace {
    inner: Mutex<AspaceInner>,
}

#[derive(Debug)]
struct AspaceInner {
    ptes: HashMap<u64, Pte>,
    next_vpage: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// An empty address space. User mappings start at virtual page 16
    /// (keeping low addresses unmapped catches null-ish pointer bugs in
    /// protocol code).
    pub fn new() -> AddressSpace {
        AddressSpace {
            inner: Mutex::new(AspaceInner {
                ptes: HashMap::new(),
                next_vpage: 16,
            }),
        }
    }

    /// Reserve `n` fresh consecutive virtual pages (no physical backing
    /// yet); returns the first page number.
    pub fn reserve_vpages(&self, n: u64) -> u64 {
        let mut g = self.inner.lock();
        let first = g.next_vpage;
        g.next_vpage += n;
        first
    }

    /// Install or replace the mapping for a virtual page.
    pub fn map(&self, vpage: u64, pte: Pte) {
        self.inner.lock().ptes.insert(vpage, pte);
    }

    /// Remove the mapping for a virtual page; returns the old entry.
    pub fn unmap(&self, vpage: u64) -> Option<Pte> {
        self.inner.lock().ptes.remove(&vpage)
    }

    /// Look up the entry for a virtual page.
    pub fn pte(&self, vpage: u64) -> Option<Pte> {
        self.inner.lock().ptes.get(&vpage).copied()
    }

    /// Change the cache mode of an already-mapped page.
    ///
    /// # Errors
    ///
    /// Fails with [`MemFault::NotMapped`] if the page has no mapping.
    pub fn set_cache_mode(&self, vpage: u64, cache: CacheMode) -> Result<(), MemFault> {
        let mut g = self.inner.lock();
        match g.ptes.get_mut(&vpage) {
            Some(pte) => {
                pte.cache = cache;
                Ok(())
            }
            None => Err(MemFault::NotMapped { vpage }),
        }
    }

    /// Translate a virtual address, checking write permission if `write`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NotMapped`] or [`MemFault::ReadOnly`].
    pub fn translate(&self, va: VAddr, write: bool) -> Result<(PAddr, CacheMode), MemFault> {
        let vpage = va.page();
        let g = self.inner.lock();
        match g.ptes.get(&vpage) {
            None => Err(MemFault::NotMapped { vpage }),
            Some(pte) => {
                if write && !pte.writable {
                    return Err(MemFault::ReadOnly { vpage });
                }
                Ok((
                    PAddr(pte.ppage * PAGE_SIZE as u64 + va.offset() as u64),
                    pte.cache,
                ))
            }
        }
    }

    /// Split the byte range `[va, va + len)` into per-page contiguous
    /// chunks, translating each. Used by every multi-page memory
    /// operation.
    ///
    /// # Errors
    ///
    /// Any chunk's translation fault aborts the whole operation (no time
    /// is charged by this call; it is pure address arithmetic).
    pub fn translate_range(
        &self,
        va: VAddr,
        len: usize,
        write: bool,
    ) -> Result<Vec<(PAddr, usize, CacheMode)>, MemFault> {
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < len {
            let cur = va.add(off);
            let in_page = PAGE_SIZE - cur.offset();
            let n = in_page.min(len - off);
            let (pa, cache) = self.translate(cur, write)?;
            chunks.push((pa, n, cache));
            off += n;
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspace_with(vpage: u64, ppage: u64, writable: bool) -> AddressSpace {
        let a = AddressSpace::new();
        a.map(
            vpage,
            Pte {
                ppage,
                writable,
                cache: CacheMode::WriteBack,
            },
        );
        a
    }

    #[test]
    fn translate_maps_page_and_offset() {
        let a = aspace_with(20, 3, true);
        let va = VAddr(20 * PAGE_SIZE as u64 + 100);
        let (pa, cache) = a.translate(va, true).unwrap();
        assert_eq!(pa, PAddr(3 * PAGE_SIZE as u64 + 100));
        assert_eq!(cache, CacheMode::WriteBack);
    }

    #[test]
    fn unmapped_page_faults() {
        let a = AddressSpace::new();
        let err = a.translate(VAddr(0), false).unwrap_err();
        assert_eq!(err, MemFault::NotMapped { vpage: 0 });
    }

    #[test]
    fn readonly_page_rejects_stores_but_allows_loads() {
        let a = aspace_with(20, 3, false);
        let va = VAddr(20 * PAGE_SIZE as u64);
        assert!(a.translate(va, false).is_ok());
        assert_eq!(
            a.translate(va, true).unwrap_err(),
            MemFault::ReadOnly { vpage: 20 }
        );
    }

    #[test]
    fn translate_range_splits_on_page_boundaries() {
        let a = AddressSpace::new();
        a.map(
            20,
            Pte {
                ppage: 7,
                writable: true,
                cache: CacheMode::WriteThrough,
            },
        );
        a.map(
            21,
            Pte {
                ppage: 3,
                writable: true,
                cache: CacheMode::WriteBack,
            },
        );
        let va = VAddr(20 * PAGE_SIZE as u64 + PAGE_SIZE as u64 - 10);
        let chunks = a.translate_range(va, 30, true).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(
            chunks[0],
            (
                PAddr(7 * PAGE_SIZE as u64 + PAGE_SIZE as u64 - 10),
                10,
                CacheMode::WriteThrough
            )
        );
        assert_eq!(
            chunks[1],
            (PAddr(3 * PAGE_SIZE as u64), 20, CacheMode::WriteBack)
        );
    }

    #[test]
    fn translate_range_fails_if_any_page_unmapped() {
        let a = aspace_with(20, 7, true);
        let va = VAddr(20 * PAGE_SIZE as u64 + PAGE_SIZE as u64 - 10);
        assert!(a.translate_range(va, 30, false).is_err());
    }

    #[test]
    fn set_cache_mode_changes_translation() {
        let a = aspace_with(20, 7, true);
        a.set_cache_mode(20, CacheMode::WriteThrough).unwrap();
        let (_, cache) = a.translate(VAddr(20 * PAGE_SIZE as u64), false).unwrap();
        assert_eq!(cache, CacheMode::WriteThrough);
        assert!(a.set_cache_mode(99, CacheMode::Uncached).is_err());
    }

    #[test]
    fn reserve_vpages_is_monotonic() {
        let a = AddressSpace::new();
        let p1 = a.reserve_vpages(4);
        let p2 = a.reserve_vpages(1);
        assert_eq!(p2, p1 + 4);
    }

    #[test]
    fn unmap_removes_mapping() {
        let a = aspace_with(20, 7, true);
        assert!(a.unmap(20).is_some());
        assert!(a.translate(VAddr(20 * PAGE_SIZE as u64), false).is_err());
        assert!(a.unmap(20).is_none());
    }
}
