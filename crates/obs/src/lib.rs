//! # shrimp-obs — virtual-time observability for the VMMC stack
//!
//! The paper's evaluation is an instrumentation exercise: Fig. 5
//! decomposes a null VRPC call into header-prep / return /
//! header-processing / transfer budgets, and §5 attributes the <1 µs of
//! software overhead in SHRIMP RPC. This crate makes that attribution a
//! first-class subsystem instead of ad-hoc `--breakdown` flags:
//!
//! * a causal [`MsgId`] allocated at the send syscall and carried on
//!   every packet so each hop of a transfer is attributable;
//! * a span model ([`SpanRec`]) recording virtual-time enter/exit at
//!   each [`Layer`] of the stack, collected by a [`Recorder`];
//! * per-message latency [`breakdown`]s whose segments sum *exactly*
//!   (in integer picoseconds) to end-to-end latency;
//! * a [`perfetto`] exporter emitting Chrome trace-event JSON with one
//!   track per (node, layer) and fault-injection instants overlaid.
//!
//! Recording is pull-free and passive: layers push [`SpanRec`]s into
//! the recorder and never schedule events or advance virtual time, so
//! enabling observability cannot perturb simulated results (the
//! determinism tests in `tests/` assert bit-identical golden-trace
//! hashes and workload digests either way). When disabled, each layer
//! pays a single relaxed atomic load per operation ([`ObsSlot::get`]),
//! the same fast-flag pattern as the kernel tracer.
//!
//! Because the simulation kernel serializes execution (one token, one
//! running thread), the push order into a recorder is deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_sim::{SimDur, SimTime};

pub mod breakdown;
pub mod hist;
pub mod perfetto;

pub use breakdown::{breakdown, Breakdown, LayerStats, Segment};
pub use hist::Log2Hist;

/// A causal message/transfer id, allocated at the send syscall and
/// carried on every packet derived from that send.
///
/// `MsgId::NONE` (zero) marks untraced traffic; real ids start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl MsgId {
    /// The null id: traffic sent while observability is disabled.
    pub const NONE: MsgId = MsgId(0);

    /// True for any id other than [`MsgId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The stack layer a span was recorded from, ordered outermost →
/// innermost along the send path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// User-level library: NX, sockets, VRPC, SRPC, collectives.
    User,
    /// VMMC endpoint: the send syscall and mapping checks.
    Endpoint,
    /// Outgoing NIC: packetizer, deliberate-update DMA read, FIFO.
    NicOut,
    /// Mesh backplane traversal (injection to tail arrival).
    Mesh,
    /// Incoming NIC: page-table check, stall windows.
    NicIn,
    /// Receive-side deposit: incoming DMA write into memory.
    Deposit,
    /// Serving-layer overlay (shrimp-svc): request spans, hedged
    /// reads, shard migrations, and re-replication syncs. Not part of
    /// the message path, so conservation breakdowns never see it
    /// (service spans carry [`MsgId::NONE`]).
    Service,
}

impl Layer {
    /// All layers, in path order (the [`Layer::Service`] overlay
    /// last).
    pub const ALL: [Layer; 7] = [
        Layer::User,
        Layer::Endpoint,
        Layer::NicOut,
        Layer::Mesh,
        Layer::NicIn,
        Layer::Deposit,
        Layer::Service,
    ];

    /// Stable display name (also the Perfetto track name).
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::User => "user",
            Layer::Endpoint => "endpoint",
            Layer::NicOut => "nic-out",
            Layer::Mesh => "mesh",
            Layer::NicIn => "nic-in",
            Layer::Deposit => "deposit",
            Layer::Service => "service",
        }
    }

    /// Path depth: higher is closer to the wire / destination memory.
    pub fn depth(self) -> u8 {
        match self {
            Layer::User => 0,
            Layer::Endpoint => 1,
            Layer::NicOut => 2,
            Layer::Mesh => 3,
            Layer::NicIn => 4,
            Layer::Deposit => 5,
            Layer::Service => 6,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded span: virtual-time enter/exit of a named phase at one
/// layer on one node, attributed to a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// The causal id this work belongs to ([`MsgId::NONE`] when the
    /// layer could not attribute it).
    pub msg: MsgId,
    /// Node index the work ran on.
    pub node: usize,
    /// Stack layer.
    pub layer: Layer,
    /// Phase name within the layer (e.g. `"header_prep"`).
    pub name: &'static str,
    /// Virtual-time entry.
    pub start: SimTime,
    /// Virtual-time exit (`end >= start`).
    pub end: SimTime,
    /// Payload bytes attributed to the span (0 when not meaningful).
    pub bytes: usize,
}

impl SpanRec {
    /// Span length.
    pub fn dur(&self) -> SimDur {
        self.end.since(self.start)
    }
}

/// A timeline instant (no duration): fault injections, repairs,
/// workload phase markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantRec {
    /// When it happened.
    pub at: SimTime,
    /// Node it applies to, if any (`None` renders on a global track).
    pub node: Option<usize>,
    /// Description, e.g. the `FaultLog` line.
    pub label: String,
}

/// Collects spans and instants for one observed run.
///
/// A `Recorder` is shared (`Arc`) between every instrumented layer of a
/// system. It allocates [`MsgId`]s and stores records; it never touches
/// the simulation, so recording cannot perturb virtual time.
#[derive(Debug, Default)]
pub struct Recorder {
    next_msg: AtomicU64,
    spans: Mutex<Vec<SpanRec>>,
    instants: Mutex<Vec<InstantRec>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder {
            next_msg: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            instants: Mutex::new(Vec::new()),
        })
    }

    /// Allocate the next causal message id (1, 2, 3, …).
    pub fn alloc_msg(&self) -> MsgId {
        MsgId(self.next_msg.fetch_add(1, Ordering::Relaxed).max(1))
    }

    /// Record a span.
    pub fn push(&self, rec: SpanRec) {
        debug_assert!(rec.end >= rec.start, "span ends before it starts");
        self.spans.lock().push(rec);
    }

    /// Record a timeline instant.
    pub fn instant(&self, at: SimTime, node: Option<usize>, label: impl Into<String>) {
        self.instants.lock().push(InstantRec {
            at,
            node,
            label: label.into(),
        });
    }

    /// Copy out every span recorded so far, in push (deterministic
    /// execution) order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.spans.lock().clone()
    }

    /// Copy out every instant recorded so far.
    pub fn instants(&self) -> Vec<InstantRec> {
        self.instants.lock().clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Drop all recorded spans and instants (keeps the id counter, so
    /// ids stay unique across a recorder's lifetime).
    pub fn clear(&self) {
        self.spans.lock().clear();
        self.instants.lock().clear();
    }

    /// Install this recorder as the thread's *current* recorder until
    /// the returned guard drops. `ShrimpSystem::build` (and anything
    /// else constructing instrumented components) attaches the current
    /// recorder automatically, so existing workload functions gain
    /// observability without signature changes.
    pub fn install(self: &Arc<Self>) -> InstallGuard {
        let prev = CURRENT.with(|c| c.replace(Some(Arc::clone(self))));
        InstallGuard { prev }
    }

    /// The thread's current recorder, if one is installed.
    pub fn current() -> Option<Arc<Recorder>> {
        CURRENT.with(|c| c.borrow().clone())
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
}

/// Restores the previously-installed recorder on drop. Returned by
/// [`Recorder::install`]; hold it for the scope you want observed.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Arc<Recorder>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// A layer's slot for an optional recorder, with the kernel tracer's
/// fast-flag pattern: when no recorder is attached, [`ObsSlot::get`]
/// is a single relaxed atomic load — no lock, no `Arc` clone — so
/// instrumentation is zero-cost when disabled.
#[derive(Debug, Default)]
pub struct ObsSlot {
    enabled: AtomicBool,
    rec: Mutex<Option<Arc<Recorder>>>,
}

impl ObsSlot {
    /// An empty (disabled) slot.
    pub fn new() -> ObsSlot {
        ObsSlot::default()
    }

    /// Attach (or, with `None`, detach) a recorder.
    pub fn set(&self, rec: Option<Arc<Recorder>>) {
        let enabled = rec.is_some();
        *self.rec.lock() = rec;
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The attached recorder, or `None` on the disabled fast path.
    #[inline]
    pub fn get(&self) -> Option<Arc<Recorder>> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        self.rec.lock().clone()
    }

    /// True when a recorder is attached (single relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDur::from_us(us)
    }

    #[test]
    fn msg_ids_are_unique_and_nonzero() {
        let r = Recorder::new();
        let a = r.alloc_msg();
        let b = r.alloc_msg();
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
        assert!(!MsgId::NONE.is_some());
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(Recorder::current().is_none());
        let outer = Recorder::new();
        let inner = Recorder::new();
        {
            let _g1 = outer.install();
            assert!(Arc::ptr_eq(&Recorder::current().unwrap(), &outer));
            {
                let _g2 = inner.install();
                assert!(Arc::ptr_eq(&Recorder::current().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&Recorder::current().unwrap(), &outer));
        }
        assert!(Recorder::current().is_none());
    }

    #[test]
    fn slot_fast_path_is_none_until_set() {
        let slot = ObsSlot::new();
        assert!(slot.get().is_none());
        assert!(!slot.is_enabled());
        let r = Recorder::new();
        slot.set(Some(Arc::clone(&r)));
        assert!(slot.is_enabled());
        assert!(Arc::ptr_eq(&slot.get().unwrap(), &r));
        slot.set(None);
        assert!(slot.get().is_none());
    }

    #[test]
    fn recorder_stores_spans_in_push_order() {
        let r = Recorder::new();
        let m = r.alloc_msg();
        r.push(SpanRec {
            msg: m,
            node: 0,
            layer: Layer::User,
            name: "a",
            start: t(0.0),
            end: t(1.0),
            bytes: 4,
        });
        r.push(SpanRec {
            msg: m,
            node: 1,
            layer: Layer::Deposit,
            name: "b",
            start: t(1.0),
            end: t(2.0),
            bytes: 4,
        });
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].layer, Layer::Deposit);
        assert_eq!(spans[1].dur(), SimDur::from_us(1.0));
        r.clear();
        assert!(r.is_empty());
    }
}
