//! Per-message latency breakdowns and per-layer span statistics.
//!
//! [`breakdown`] partitions a message's end-to-end interval into
//! labelled segments using an interval sweep: boundaries are the
//! recorded span edges, each elementary interval is attributed to the
//! *innermost* covering span (latest start, then deepest layer), and
//! uncovered intervals become the `transfer+wait` segment — time the
//! message spent in flight or queued where no layer was doing
//! attributable work. Because the segments partition the interval in
//! integer picoseconds, they sum **exactly** to end-to-end latency;
//! the conservation tests in `crates/bench` assert this across the
//! fig3/fig5/fig7 workloads.

use shrimp_sim::{SimDur, SimTime};

use crate::hist::Log2Hist;
use crate::{Layer, MsgId, SpanRec};

/// Label for time no recorded span covers: wire transfer, FIFO/queue
/// residence, and blocked waiting.
pub const TRANSFER_WAIT: &str = "transfer+wait";

/// One labelled slice of a message's end-to-end interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Layer the time is attributed to; `None` for [`TRANSFER_WAIT`].
    pub layer: Option<Layer>,
    /// Phase name ([`TRANSFER_WAIT`] for uncovered time).
    pub name: &'static str,
    /// Slice length.
    pub dur: SimDur,
}

impl Segment {
    /// `layer/name` label used in tables and exports.
    pub fn label(&self) -> String {
        match self.layer {
            Some(l) => format!("{}/{}", l.as_str(), self.name),
            None => self.name.to_string(),
        }
    }
}

/// A message's end-to-end latency, partitioned into segments that sum
/// exactly to `end - start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breakdown {
    /// The message.
    pub msg: MsgId,
    /// Earliest span entry for the message.
    pub start: SimTime,
    /// Latest span exit for the message.
    pub end: SimTime,
    /// Ordered, merged segments partitioning `[start, end]`.
    pub segments: Vec<Segment>,
}

impl Breakdown {
    /// End-to-end latency.
    pub fn total(&self) -> SimDur {
        self.end.since(self.start)
    }

    /// Sum of the segment durations (picosecond-exact).
    pub fn segment_sum(&self) -> SimDur {
        SimDur(self.segments.iter().map(|s| s.dur.0).sum())
    }

    /// The conservation invariant: segments sum exactly to the
    /// end-to-end latency.
    pub fn is_conserved(&self) -> bool {
        self.segment_sum() == self.total()
    }

    /// Total time attributed to `name` (summed over segments).
    pub fn named(&self, name: &str) -> SimDur {
        SimDur(
            self.segments
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur.0)
                .sum(),
        )
    }
}

/// Build the [`Breakdown`] for message `msg` from a span set.
///
/// Returns `None` when no span mentions the message.
pub fn breakdown(spans: &[SpanRec], msg: MsgId) -> Option<Breakdown> {
    let mine: Vec<&SpanRec> = spans.iter().filter(|s| s.msg == msg).collect();
    if mine.is_empty() {
        return None;
    }
    let start = mine.iter().map(|s| s.start).min().unwrap();
    let end = mine.iter().map(|s| s.end).max().unwrap();

    // Elementary boundaries: every span edge, sorted and deduplicated.
    let mut edges: Vec<SimTime> = Vec::with_capacity(mine.len() * 2);
    for s in &mine {
        edges.push(s.start);
        edges.push(s.end);
    }
    edges.sort_unstable();
    edges.dedup();

    let mut segments: Vec<Segment> = Vec::new();
    for w in edges.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        // Innermost covering span: latest start wins (tightest
        // enclosure), then deepest layer, then later push order.
        let owner = mine
            .iter()
            .filter(|s| s.start <= a && s.end >= b && s.end > s.start)
            .max_by_key(|s| (s.start, s.layer.depth()));
        let (layer, name) = match owner {
            Some(s) => (Some(s.layer), s.name),
            None => (None, TRANSFER_WAIT),
        };
        let dur = b.since(a);
        match segments.last_mut() {
            Some(last) if last.layer == layer && last.name == name => {
                last.dur = SimDur(last.dur.0 + dur.0);
            }
            _ => segments.push(Segment { layer, name, dur }),
        }
    }

    Some(Breakdown {
        msg,
        start,
        end,
        segments,
    })
}

/// Every distinct [`MsgId`] appearing in a span set, ascending.
pub fn message_ids(spans: &[SpanRec]) -> Vec<MsgId> {
    let mut ids: Vec<MsgId> = spans
        .iter()
        .map(|s| s.msg)
        .filter(|m| m.is_some())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Aggregated statistics for one `(layer, name)` phase: count, total,
/// min/max, and a base-2 duration histogram (bucket *k* counts spans
/// with `2^k <= ps < 2^(k+1)`; bucket 0 also holds zero-length spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// Stack layer.
    pub layer: Layer,
    /// Phase name.
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed duration.
    pub total: SimDur,
    /// Shortest span.
    pub min: SimDur,
    /// Longest span.
    pub max: SimDur,
    /// Log2 histogram of span durations in picoseconds.
    pub hist: Log2Hist,
}

impl LayerStats {
    /// Mean span duration.
    pub fn mean(&self) -> SimDur {
        SimDur(self.total.0.checked_div(self.count).unwrap_or(0))
    }
}

/// Aggregate spans into per-`(layer, name)` statistics, sorted by
/// layer depth then name.
pub fn layer_stats(spans: &[SpanRec]) -> Vec<LayerStats> {
    let mut out: Vec<LayerStats> = Vec::new();
    for s in spans {
        let dur = s.dur();
        let entry = match out
            .iter_mut()
            .find(|e| e.layer == s.layer && e.name == s.name)
        {
            Some(e) => e,
            None => {
                out.push(LayerStats {
                    layer: s.layer,
                    name: s.name,
                    count: 0,
                    total: SimDur::ZERO,
                    min: SimDur(u64::MAX),
                    max: SimDur::ZERO,
                    hist: Log2Hist::new(),
                });
                out.last_mut().unwrap()
            }
        };
        entry.count += 1;
        entry.total = SimDur(entry.total.0 + dur.0);
        entry.min = SimDur(entry.min.0.min(dur.0));
        entry.max = SimDur(entry.max.0.max(dur.0));
        entry.hist.record(dur.0);
    }
    out.sort_by_key(|e| (e.layer.depth(), e.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDur::from_us(us)
    }

    fn span(msg: u64, layer: Layer, name: &'static str, a: f64, b: f64) -> SpanRec {
        SpanRec {
            msg: MsgId(msg),
            node: 0,
            layer,
            name,
            start: t(a),
            end: t(b),
            bytes: 0,
        }
    }

    #[test]
    fn gaps_become_transfer_wait_and_sum_is_exact() {
        let spans = vec![
            span(1, Layer::User, "prep", 0.0, 2.0),
            span(1, Layer::Deposit, "dma", 5.0, 6.0),
        ];
        let b = breakdown(&spans, MsgId(1)).unwrap();
        assert!(b.is_conserved());
        assert_eq!(b.total(), SimDur::from_us(6.0));
        assert_eq!(b.segments.len(), 3);
        assert_eq!(b.segments[1].name, TRANSFER_WAIT);
        assert_eq!(b.named(TRANSFER_WAIT), SimDur::from_us(3.0));
    }

    #[test]
    fn nested_spans_attribute_to_innermost() {
        let spans = vec![
            span(1, Layer::User, "call", 0.0, 10.0),
            span(1, Layer::Endpoint, "send", 2.0, 4.0),
        ];
        let b = breakdown(&spans, MsgId(1)).unwrap();
        assert!(b.is_conserved());
        // call [0,2), send [2,4), call [4,10) — merged into 3 segments.
        assert_eq!(b.segments.len(), 3);
        assert_eq!(b.segments[1].layer, Some(Layer::Endpoint));
        assert_eq!(b.named("call"), SimDur::from_us(8.0));
        assert_eq!(b.named("send"), SimDur::from_us(2.0));
    }

    #[test]
    fn unknown_message_is_none_and_ids_are_sorted() {
        let spans = vec![
            span(7, Layer::User, "a", 0.0, 1.0),
            span(3, Layer::User, "b", 0.0, 1.0),
            span(7, Layer::Mesh, "c", 1.0, 2.0),
        ];
        assert!(breakdown(&spans, MsgId(99)).is_none());
        assert_eq!(message_ids(&spans), vec![MsgId(3), MsgId(7)]);
    }

    #[test]
    fn layer_stats_aggregate_and_bucket() {
        let spans = vec![
            span(1, Layer::Mesh, "hop", 0.0, 1.0),
            span(2, Layer::Mesh, "hop", 0.0, 3.0),
            span(2, Layer::User, "call", 0.0, 2.0),
        ];
        let stats = layer_stats(&spans);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].layer, Layer::User); // depth order
        let hop = &stats[1];
        assert_eq!(hop.count, 2);
        assert_eq!(hop.total, SimDur::from_us(4.0));
        assert_eq!(hop.min, SimDur::from_us(1.0));
        assert_eq!(hop.max, SimDur::from_us(3.0));
        assert_eq!(hop.mean(), SimDur::from_us(2.0));
        assert_eq!(hop.hist.count(), 2);
        assert_eq!(hop.hist.max(), SimDur::from_us(3.0).as_ps());
    }
}
