//! A base-2 duration histogram with percentile readout.
//!
//! This is the one histogram type the workspace uses for virtual-time
//! latency distributions: [`LayerStats`](crate::LayerStats) aggregates
//! per-layer span durations into it, and `shrimp-svc`'s load engine
//! feeds per-request latencies into it for p50/p95/p99/p999 curves.
//! Bucket *k* counts values with `2^k <= v < 2^(k+1)`; bucket 0 also
//! holds zeros. Everything is integer picoseconds, so merging and
//! percentile readout are bit-identical across replays.

use shrimp_sim::SimDur;

/// Number of buckets — one per possible leading-bit position of a
/// `u64` value.
pub const BUCKETS: usize = 64;

/// A log2 histogram over `u64` values (picosecond durations in
/// practice) with exact count/total/min/max sidecars.
///
/// Percentiles are resolved to the histogram's bucket granularity (a
/// factor-of-two resolution band), clamped into the observed
/// `[min, max]` range so degenerate distributions read back exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist::new()
    }
}

/// The bucket index a value falls into.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Log2Hist {
        Log2Hist {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.total += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration (picoseconds).
    pub fn record_dur(&mut self, d: SimDur) {
        self.record(d.as_ps());
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean value (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper
    /// bound of the bucket holding the `ceil(q * count)`-th value and
    /// clamped into `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket k is 2^(k+1) - 1.
                let upper = if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`percentile`](Log2Hist::percentile) as a duration.
    pub fn percentile_dur(&self, q: f64) -> SimDur {
        SimDur::from_ps(self.percentile(q))
    }

    /// FNV-1a digest over the full histogram state (buckets and
    /// sidecars) — replay-stable fingerprint for benchmark gating.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for &b in &self.buckets {
            eat(b);
        }
        eat(self.count);
        eat(self.total);
        eat(self.min());
        eat(self.max);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_count_and_percentiles_resolve() {
        let mut h = Log2Hist::new();
        assert_eq!(h.percentile(0.99), 0);
        for v in [0u64, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.total(), 1_001_010);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 2); // 2 and 3
        assert_eq!(h.buckets()[2], 1); // 4
        assert_eq!(h.buckets()[bucket_of(1000)], 1);
        // p50 lands in bucket 1 (values 2,3): upper bound 3.
        assert_eq!(h.percentile(0.5), 3);
        // High quantiles clamp to the observed max.
        assert_eq!(h.percentile(1.0), 1_000_000);
        // Low quantiles resolve to the first bucket's upper bound.
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let vals_a = [5u64, 17, 90, 4096];
        let vals_b = [1u64, 2, 65_535, 7];
        let mut merged = Log2Hist::new();
        let (mut a, mut b) = (Log2Hist::new(), Log2Hist::new());
        for &v in &vals_a {
            a.record(v);
            merged.record(v);
        }
        for &v in &vals_b {
            b.record(v);
            merged.record(v);
        }
        a.merge(&b);
        assert_eq!(a, merged);
        assert_eq!(a.digest(), merged.digest());
    }

    #[test]
    fn degenerate_single_value_reads_back_exactly() {
        let mut h = Log2Hist::new();
        for _ in 0..100 {
            h.record(29_737);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 29_737, "q={q}");
        }
        assert_eq!(h.mean(), 29_737);
    }
}
