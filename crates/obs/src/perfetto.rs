//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Emits the JSON-object form (`{"traceEvents": [...]}`) with:
//!
//! * one *process* per node (`pid` = node index) named `node<N>`;
//! * one *thread* per stack layer (`tid` = layer depth) named after
//!   [`Layer::as_str`], so each node renders as a stack of per-layer
//!   tracks in path order;
//! * `"X"` complete events for spans (`ts`/`dur` in microseconds of
//!   virtual time, with `args.msg` and `args.bytes` for attribution);
//! * `"i"` instant events for [`InstantRec`]s — fault injections and
//!   repairs land here — process-scoped when a node is known, global
//!   otherwise.
//!
//! No serde: the vendored dependency set has no JSON crate, and the
//! event shape is flat enough that direct string building stays
//! readable.

use crate::{InstantRec, Layer, SpanRec};

/// Render spans and instants as a Chrome trace-event JSON document.
pub fn export(spans: &[SpanRec], instants: &[InstantRec]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160 + instants.len() * 120);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;

    // Metadata: name every (node, layer) track that will appear.
    let mut nodes: Vec<usize> = spans
        .iter()
        .map(|s| s.node)
        .chain(instants.iter().filter_map(|i| i.node))
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    for &node in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"node{node}\"}}}}"
            ),
        );
        for layer in Layer::ALL {
            if spans.iter().any(|s| s.node == node && s.layer == layer) {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{lname}\"}}}}",
                        tid = layer.depth(),
                        lname = layer.as_str()
                    ),
                );
            }
        }
    }

    for s in spans {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"args\":{{\"msg\":{msg},\"bytes\":{bytes}}}}}",
                pid = s.node,
                tid = s.layer.depth(),
                ts = us(s.start.as_ps()),
                dur = us(s.end.as_ps() - s.start.as_ps()),
                name = escape(s.name),
                cat = s.layer.as_str(),
                msg = s.msg.0,
                bytes = s.bytes,
            ),
        );
    }

    for i in instants {
        let (pid, scope) = match i.node {
            Some(n) => (n, "p"),
            None => (0, "g"),
        };
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"s\":\"{scope}\",\
                 \"name\":\"{name}\",\"cat\":\"fault\"}}",
                ts = us(i.at.as_ps()),
                name = escape(&i.label),
            ),
        );
    }

    out.push_str("]}");
    out
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(ev);
}

/// Picoseconds → trace-event microseconds, exact: integer part plus up
/// to six fractional digits (1 ps = 1e-6 µs), trailing zeros trimmed.
fn us(ps: u64) -> String {
    let whole = ps / 1_000_000;
    let frac = ps % 1_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:06}");
        s.trim_end_matches('0').to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use shrimp_sim::{SimDur, SimTime};

    #[test]
    fn exports_spans_instants_and_metadata() {
        let r = Recorder::new();
        let m = r.alloc_msg();
        let t0 = SimTime::ZERO + SimDur::from_us(1.5);
        r.push(SpanRec {
            msg: m,
            node: 2,
            layer: Layer::Mesh,
            name: "xfer",
            start: t0,
            end: t0 + SimDur::from_ns(250.0),
            bytes: 64,
        });
        r.instant(t0, Some(2), "link down \"x\"");
        r.instant(t0, None, "plan start");
        let json = export(&r.spans(), &r.instants());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"node2\""));
        assert!(json.contains("\"name\":\"mesh\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":0.25"));
        assert!(json.contains("\"s\":\"p\""));
        assert!(json.contains("\"s\":\"g\""));
        assert!(json.contains("link down \\\"x\\\""));
    }

    #[test]
    fn us_rendering_is_exact() {
        assert_eq!(us(0), "0");
        assert_eq!(us(1), "0.000001");
        assert_eq!(us(1_000_000), "1");
        assert_eq!(us(29_123_456), "29.123456");
        assert_eq!(us(2_500_000), "2.5");
    }
}
