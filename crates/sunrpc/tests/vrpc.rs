//! End-to-end VRPC tests: a real client and server over the simulated
//! prototype.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_sim::Kernel;
use shrimp_sunrpc::{
    AcceptStat, RpcDirectory, RpcError, StreamVariant, VrpcClient, VrpcServer, XdrError,
};

const PROG: u32 = 0x2000_0099;
const VERS: u32 = 1;

/// Spawn a server with an `add`, an `echo`, and a `reverse` procedure,
/// serving exactly one connection.
fn spawn_calc_server(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    dir: &Arc<RpcDirectory>,
    node: usize,
) {
    let vmmc = system.endpoint(node, "calc-server");
    let dir = Arc::clone(dir);
    kernel.spawn("calc-server", move |ctx| {
        let mut server = VrpcServer::new(vmmc, PROG, VERS);
        server.register(
            1, // add(i32, i32) -> i32
            Box::new(|_ctx, args, out| {
                let (Ok(a), Ok(b)) = (args.get_i32(), args.get_i32()) else {
                    return AcceptStat::GarbageArgs;
                };
                out.put_i32(a + b);
                AcceptStat::Success
            }),
        );
        server.register(
            2, // echo(opaque) -> opaque
            Box::new(|_ctx, args, out| {
                let Ok(data) = args.get_opaque() else {
                    return AcceptStat::GarbageArgs;
                };
                out.put_opaque(data);
                AcceptStat::Success
            }),
        );
        server.register(
            3, // reverse(string) -> string
            Box::new(|_ctx, args, out| {
                let Ok(s) = args.get_string() else {
                    return AcceptStat::GarbageArgs;
                };
                let rev: String = s.chars().rev().collect();
                out.put_string(&rev);
                AcceptStat::Success
            }),
        );
        let mut conn = server.accept(ctx, &dir).unwrap();
        server.serve(ctx, &mut conn).unwrap();
    });
}

fn run_client_server(
    variant: StreamVariant,
    body: impl FnOnce(&shrimp_sim::Ctx, &mut VrpcClient) + Send + 'static,
) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let dir = RpcDirectory::new();
    spawn_calc_server(&kernel, &system, &dir, 1);
    let vmmc = system.endpoint(0, "client");
    let dir2 = Arc::clone(&dir);
    kernel.spawn("client", move |ctx| {
        let mut client = VrpcClient::bind(vmmc, ctx, &dir2, PROG, VERS, variant).unwrap();
        body(ctx, &mut client);
        client.close(ctx).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn add_echo_reverse_over_au() {
    run_client_server(StreamVariant::AutomaticUpdate, |ctx, client| {
        let sum = client
            .call(
                ctx,
                1,
                |e| {
                    e.put_i32(40);
                    e.put_i32(2);
                },
                |d| d.get_i32(),
            )
            .unwrap();
        assert_eq!(sum, 42);

        let payload: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let p2 = payload.clone();
        let echoed = client
            .call(
                ctx,
                2,
                move |e| e.put_opaque(&p2),
                |d| Ok(d.get_opaque()?.to_vec()),
            )
            .unwrap();
        assert_eq!(echoed, payload);

        let rev = client
            .call(
                ctx,
                3,
                |e| e.put_string("shrimp"),
                |d| Ok(d.get_string()?.to_string()),
            )
            .unwrap();
        assert_eq!(rev, "pmirhs");
    });
}

#[test]
fn add_over_du() {
    run_client_server(StreamVariant::DeliberateUpdate, |ctx, client| {
        for i in 0..20 {
            let sum = client
                .call(
                    ctx,
                    1,
                    move |e| {
                        e.put_i32(i);
                        e.put_i32(i * 2);
                    },
                    |d| d.get_i32(),
                )
                .unwrap();
            assert_eq!(sum, i * 3);
        }
    });
}

#[test]
fn null_procedure_and_dispatch_errors() {
    run_client_server(StreamVariant::AutomaticUpdate, |ctx, client| {
        // Null procedure: success, empty results.
        client.call(ctx, 0, |_| {}, |_| Ok(())).unwrap();
        // Unknown procedure.
        let err = client.call(ctx, 99, |_| {}, |_| Ok(())).unwrap_err();
        assert_eq!(err, RpcError::Rejected(AcceptStat::ProcUnavail));
        // Garbage arguments (add with no args).
        let err = client.call(ctx, 1, |_| {}, |_| Ok(())).unwrap_err();
        assert_eq!(err, RpcError::Rejected(AcceptStat::GarbageArgs));
        // The connection still works afterwards.
        let sum = client
            .call(
                ctx,
                1,
                |e| {
                    e.put_i32(1);
                    e.put_i32(2);
                },
                |d| d.get_i32(),
            )
            .unwrap();
        assert_eq!(sum, 3);
    });
}

#[test]
fn wrong_program_and_version_rejected() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let dir = RpcDirectory::new();
    // Server speaks PROG/VERS...
    spawn_calc_server(&kernel, &system, &dir, 1);
    let vmmc = system.endpoint(2, "client");
    let dir2 = Arc::clone(&dir);
    kernel.spawn("client", move |ctx| {
        // ...client binds the same program number but asks for version 9.
        let mut client =
            VrpcClient::bind(vmmc, ctx, &dir2, PROG, 9, StreamVariant::AutomaticUpdate).unwrap();
        let err = client
            .call(
                ctx,
                1,
                |e| {
                    e.put_i32(1);
                    e.put_i32(1);
                },
                |d| d.get_i32(),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Rejected(AcceptStat::ProgMismatch));
        client.close(ctx).unwrap();
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn result_decode_errors_surface() {
    run_client_server(StreamVariant::AutomaticUpdate, |ctx, client| {
        // add returns one i32; try to decode two.
        let err = client
            .call(
                ctx,
                1,
                |e| {
                    e.put_i32(1);
                    e.put_i32(2);
                },
                |d| {
                    d.get_i32()?;
                    d.get_i32() // not there
                },
            )
            .unwrap_err();
        assert!(matches!(err, RpcError::Xdr(XdrError::Short { .. })));
    });
}

#[test]
fn many_calls_pipeline_through_ring_wrap() {
    // 200 x 2 KB echoes: > 6 ring wraps in each direction.
    run_client_server(StreamVariant::AutomaticUpdate, |ctx, client| {
        let payload = vec![0xABu8; 2048];
        for _ in 0..200 {
            let p2 = payload.clone();
            let echoed = client
                .call(
                    ctx,
                    2,
                    move |e| e.put_opaque(&p2),
                    |d| Ok(d.get_opaque()?.to_vec()),
                )
                .unwrap();
            assert_eq!(echoed.len(), 2048);
        }
    });
}

#[test]
fn two_clients_served_sequentially() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let dir = RpcDirectory::new();
    {
        let vmmc = system.endpoint(1, "server");
        let dir = Arc::clone(&dir);
        kernel.spawn("server", move |ctx| {
            let mut server = VrpcServer::new(vmmc, PROG, VERS);
            server.register(
                1,
                Box::new(|_ctx, args, out| {
                    let Ok(v) = args.get_i32() else {
                        return AcceptStat::GarbageArgs;
                    };
                    out.put_i32(v * 10);
                    AcceptStat::Success
                }),
            );
            for _ in 0..2 {
                let mut conn = server.accept(ctx, &dir).unwrap();
                server.serve(ctx, &mut conn).unwrap();
            }
        });
    }
    let order = Arc::new(Mutex::new(Vec::new()));
    for (i, node) in [(1u32, 0usize), (2u32, 2usize)] {
        let vmmc = system.endpoint(node, format!("client{i}"));
        let dir = Arc::clone(&dir);
        let order = Arc::clone(&order);
        kernel.spawn(format!("client{i}"), move |ctx| {
            // Stagger so connection order is deterministic.
            ctx.advance(shrimp_sim::SimDur::from_us(i as f64 * 5000.0));
            let mut client =
                VrpcClient::bind(vmmc, ctx, &dir, PROG, VERS, StreamVariant::AutomaticUpdate)
                    .unwrap();
            let v = client
                .call(ctx, 1, move |e| e.put_i32(i as i32), |d| d.get_i32())
                .unwrap();
            assert_eq!(v, i as i32 * 10);
            client.close(ctx).unwrap();
            order.lock().push(i);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(order.lock().len(), 2);
}

#[test]
fn in_place_decode_is_faster_and_correct() {
    // The §4.2 "further optimization": eliminating the receiver-side
    // copy speeds up large-argument calls without changing results.
    fn run(in_place: bool) -> (f64, Vec<u8>) {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let dir = RpcDirectory::new();
        {
            let vmmc = system.endpoint(1, "server");
            let dir = Arc::clone(&dir);
            kernel.spawn("server", move |ctx| {
                let mut server = VrpcServer::new(vmmc, PROG, VERS);
                server.set_in_place_args(in_place);
                server.register(
                    2,
                    Box::new(|_ctx, args, out| {
                        let Ok(data) = args.get_opaque() else {
                            return AcceptStat::GarbageArgs;
                        };
                        out.put_opaque(data);
                        AcceptStat::Success
                    }),
                );
                let mut conn = server.accept(ctx, &dir).unwrap();
                server.serve(ctx, &mut conn).unwrap();
            });
        }
        let out: Arc<parking_lot::Mutex<(f64, Vec<u8>)>> =
            Arc::new(parking_lot::Mutex::new((0.0, Vec::new())));
        {
            let vmmc = system.endpoint(0, "client");
            let dir = Arc::clone(&dir);
            let out = Arc::clone(&out);
            kernel.spawn("client", move |ctx| {
                let mut client =
                    VrpcClient::bind(vmmc, ctx, &dir, PROG, VERS, StreamVariant::AutomaticUpdate)
                        .unwrap();
                client.set_in_place_results(in_place);
                let payload = vec![0x6Bu8; 8000];
                // Warmup.
                let p2 = payload.clone();
                client
                    .call(
                        ctx,
                        2,
                        move |e| e.put_opaque(&p2),
                        |d| Ok(d.get_opaque()?.to_vec()),
                    )
                    .unwrap();
                let t0 = ctx.now();
                let p2 = payload.clone();
                let echoed = client
                    .call(
                        ctx,
                        2,
                        move |e| e.put_opaque(&p2),
                        |d| Ok(d.get_opaque()?.to_vec()),
                    )
                    .unwrap();
                *out.lock() = ((ctx.now() - t0).as_us(), echoed);
                client.close(ctx).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        let v = out.lock().clone();
        v
    }
    let (copy_rtt, copy_data) = run(false);
    let (zc_rtt, zc_data) = run(true);
    assert_eq!(copy_data, zc_data);
    assert_eq!(zc_data, vec![0x6Bu8; 8000]);
    assert!(
        zc_rtt < copy_rtt - 100.0,
        "in-place {zc_rtt:.0} us should save the two 8 KB copies of {copy_rtt:.0} us"
    );
}
