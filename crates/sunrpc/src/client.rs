//! The VRPC client: `clnt_call` over the SBL stream.

use std::sync::Arc;

use shrimp_core::{Vmmc, VmmcError};
use shrimp_sim::{Ctx, RetryPolicy, SimChannel, SimDur};

use crate::connect::{ConnectRequest, RpcDirectory};
use crate::msg::{AcceptStat, CallHeader, ReplyHeader};
use crate::stream::{SblStream, StreamVariant};
use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// Software costs of the compatible SunRPC path, calibrated to the
/// paper's §4.2 budget for a null call: about 7 µs preparing the header
/// and making the call, 5–6 µs processing the header at the server, and
/// 1–2 µs returning from the call. The stream-transfer time itself comes
/// from the simulated hardware.
pub mod costs {
    use shrimp_sim::SimDur;

    /// Client-side: argument setup, header marshaling, dispatch into the
    /// transport (part of the paper's ~7 µs; the rest is the header's
    /// marshaling stores, charged by the stream).
    pub fn client_prep() -> SimDur {
        SimDur::from_us(2.8)
    }

    /// Server-side: header parse, credential checks, dispatch table
    /// lookup (the paper's 5–6 µs).
    pub fn server_dispatch() -> SimDur {
        SimDur::from_us(3.3)
    }

    /// Client-side: reply validation and return (the paper's 1–2 µs).
    pub fn client_return() -> SimDur {
        SimDur::from_us(0.8)
    }

    /// Per-byte cost of the generic XDR decode path — per-element
    /// function-pointer dispatch, bounds checks, and representation
    /// conversion. This is compatibility baggage the specialized RPC
    /// does not pay, and a large part of why the gap between the two
    /// systems stays near a factor of two even for big arguments
    /// (Figure 8).
    pub fn xdr_decode(bytes: usize) -> SimDur {
        SimDur::from_ns(25.0 * bytes as f64)
    }
}

/// VRPC errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The server rejected or failed the call.
    Rejected(AcceptStat),
    /// Serialization failure.
    Xdr(XdrError),
    /// Transport failure.
    Vmmc(VmmcError),
    /// The reply's transaction id did not match (protocol bug).
    BadXid {
        /// Expected transaction id.
        want: u32,
        /// Received transaction id.
        got: u32,
    },
    /// A bounded control-plane wait (binding, connection setup) gave up.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// Total virtual time spent waiting across every retry.
        waited: SimDur,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Rejected(s) => write!(f, "call rejected: {s:?}"),
            RpcError::Xdr(e) => write!(f, "xdr: {e}"),
            RpcError::Vmmc(e) => write!(f, "transport: {e}"),
            RpcError::BadXid { want, got } => {
                write!(f, "reply xid {got} does not match call {want}")
            }
            RpcError::Timeout { op, waited } => write!(f, "{op} timed out after {waited}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<XdrError> for RpcError {
    fn from(e: XdrError) -> Self {
        RpcError::Xdr(e)
    }
}

impl From<VmmcError> for RpcError {
    fn from(e: VmmcError) -> Self {
        RpcError::Vmmc(e)
    }
}

/// A bound VRPC client (the `CLIENT` handle of the SunRPC API).
pub struct VrpcClient {
    vmmc: Vmmc,
    stream: SblStream,
    prog: u32,
    vers: u32,
    next_xid: u32,
    in_place: bool,
}

impl std::fmt::Debug for VrpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VrpcClient")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .finish()
    }
}

impl VrpcClient {
    /// Bind to `prog`/`vers` (the `clnt_create` step): exchanges region
    /// names with the server through the directory, establishes the
    /// mapping pair, and assembles the stream. Waits are bounded by
    /// [`RetryPolicy::bootstrap`]; use [`VrpcClient::bind_with`] to tune.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] when no server answers within the policy's
    /// budget; mapping-establishment failures otherwise.
    pub fn bind(
        vmmc: Vmmc,
        ctx: &Ctx,
        directory: &Arc<RpcDirectory>,
        prog: u32,
        vers: u32,
        variant: StreamVariant,
    ) -> Result<VrpcClient, RpcError> {
        Self::bind_with(
            vmmc,
            ctx,
            directory,
            prog,
            vers,
            variant,
            RetryPolicy::bootstrap(),
        )
    }

    /// [`VrpcClient::bind`] with an explicit retry policy bounding the
    /// wait for the server's answer and the import of its region.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] when the server never answers within the
    /// policy's budget; mapping-establishment failures otherwise.
    pub fn bind_with(
        vmmc: Vmmc,
        ctx: &Ctx,
        directory: &Arc<RpcDirectory>,
        prog: u32,
        vers: u32,
        variant: StreamVariant,
        policy: RetryPolicy,
    ) -> Result<VrpcClient, RpcError> {
        let (local, my_name) = SblStream::export_region(&vmmc, ctx)?;
        let reply: SimChannel<(shrimp_mesh::NodeId, shrimp_core::BufferName)> = SimChannel::new();
        directory.lookup(prog).send(
            &ctx.handle(),
            ConnectRequest {
                client_node: vmmc.node_id(),
                client_region: my_name,
                variant,
                reply: reply.clone(),
            },
        );
        // Binding-time latency of the out-of-band exchange.
        ctx.advance(SimDur::from_us(400.0));
        // The request is queued; wait for the server's answer with
        // exponentially growing patience rather than forever.
        let mut answer = None;
        for attempt in 0..policy.attempts {
            if let Some(got) = reply.recv_deadline(ctx, ctx.now() + policy.timeout(attempt)) {
                answer = Some(got);
                break;
            }
        }
        let Some((server_node, server_region)) = answer else {
            return Err(RpcError::Timeout {
                op: "bind",
                waited: policy.total_budget(),
            });
        };
        let peer = vmmc.import_retry(ctx, server_node, server_region, policy)?;
        let stream = SblStream::assemble(&vmmc, ctx, local, peer, variant)?;
        Ok(VrpcClient {
            vmmc,
            stream,
            prog,
            vers,
            next_xid: 1,
            in_place: false,
        })
    }

    /// The VMMC endpoint (for allocating argument buffers in examples).
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Enable the §4.2 "further optimization": decode replies directly
    /// from the stream's ring, eliminating the receiver-side copy. In the
    /// real system this needed slight stub-generator modifications; here
    /// it is a flag on the runtime.
    pub fn set_in_place_results(&mut self, on: bool) {
        self.in_place = on;
    }

    /// Perform a remote procedure call (the `clnt_call` of the SunRPC
    /// API): encode arguments with `args`, decode results with `res`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Rejected`] when the server cannot dispatch the call;
    /// transport and serialization errors otherwise.
    pub fn call<T>(
        &mut self,
        ctx: &Ctx,
        proc_: u32,
        args: impl FnOnce(&mut XdrEncoder),
        res: impl FnOnce(&mut XdrDecoder<'_>) -> Result<T, XdrError>,
    ) -> Result<T, RpcError> {
        // Fig. 5 budget boundaries: t0..t1 header prep (client CPU up
        // to the last byte handed to the stream), t1..t2 waiting for
        // the reply (transfer + server time), t2..t3 client return.
        let obs = self.vmmc.obs();
        let msg = match &obs {
            Some(rec) => rec.alloc_msg(),
            None => shrimp_obs::MsgId::NONE,
        };
        let t0 = ctx.now();
        ctx.advance(costs::client_prep());
        let xid = self.next_xid;
        self.next_xid += 1;
        let mut enc = XdrEncoder::new();
        CallHeader {
            xid,
            prog: self.prog,
            vers: self.vers,
            proc_,
        }
        .encode(&mut enc);
        args(&mut enc);
        let call_bytes = enc.as_bytes().len();
        self.stream.send_record(&self.vmmc, ctx, enc.as_bytes())?;
        let t1 = ctx.now();

        let reply = if self.in_place {
            self.stream.recv_record_in_place(&self.vmmc, ctx)?
        } else {
            self.stream.recv_record(&self.vmmc, ctx)?
        };
        let t2 = ctx.now();
        ctx.advance(costs::xdr_decode(reply.len()));
        ctx.advance(costs::client_return());
        if let Some(rec) = &obs {
            let node = self.vmmc.node_index();
            let user = shrimp_obs::Layer::User;
            for (name, start, end, bytes) in [
                ("header_prep", t0, t1, call_bytes),
                ("wait_reply", t1, t2, reply.len()),
                ("return", t2, ctx.now(), reply.len()),
            ] {
                rec.push(shrimp_obs::SpanRec {
                    msg,
                    node,
                    layer: user,
                    name,
                    start,
                    end,
                    bytes,
                });
            }
        }
        let mut dec = XdrDecoder::new(&reply);
        let header = ReplyHeader::decode(&mut dec)?;
        if header.xid != xid {
            return Err(RpcError::BadXid {
                want: xid,
                got: header.xid,
            });
        }
        if header.stat != AcceptStat::Success {
            return Err(RpcError::Rejected(header.stat));
        }
        Ok(res(&mut dec)?)
    }

    /// Close the connection: tells the server to stop serving this
    /// client (an empty record is the close marker).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn close(&mut self, ctx: &Ctx) -> Result<(), RpcError> {
        self.stream.send_record(&self.vmmc, ctx, &[])?;
        Ok(())
    }
}
