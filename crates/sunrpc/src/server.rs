//! The VRPC server: dispatch loop over the SBL stream.

use std::collections::HashMap;
use std::sync::Arc;

use shrimp_core::Vmmc;
use shrimp_sim::{Ctx, SimHandle, SimTime};

use crate::client::{costs, RpcError};
use crate::connect::RpcDirectory;
use crate::msg::{AcceptStat, CallHeader, ReplyHeader};
use crate::stream::SblStream;
use crate::xdr::{XdrDecoder, XdrEncoder};

/// A procedure implementation: decodes its arguments, encodes its
/// results, and reports the disposition.
pub type ProcHandler =
    Box<dyn FnMut(&Ctx, &mut XdrDecoder<'_>, &mut XdrEncoder) -> AcceptStat + Send>;

/// Drop guard recording the server-side "header processing" span (see
/// [`VrpcServer::serve`]): closes at whatever virtual time the dispatch
/// path reaches its `send_record`.
struct HeaderProcSpan {
    rec: Arc<shrimp_obs::Recorder>,
    node: usize,
    start: SimTime,
    ctx_handle: SimHandle,
    bytes: usize,
}

impl Drop for HeaderProcSpan {
    fn drop(&mut self) {
        self.rec.push(shrimp_obs::SpanRec {
            msg: shrimp_obs::MsgId::NONE,
            node: self.node,
            layer: shrimp_obs::Layer::User,
            name: "header_proc",
            start: self.start,
            end: self.ctx_handle.now(),
            bytes: self.bytes,
        });
    }
}

/// A VRPC server for one program/version.
pub struct VrpcServer {
    vmmc: Vmmc,
    prog: u32,
    vers: u32,
    procs: HashMap<u32, ProcHandler>,
    in_place: bool,
}

impl std::fmt::Debug for VrpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VrpcServer")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .field("procs", &self.procs.len())
            .finish()
    }
}

/// An accepted client connection, ready to serve calls.
pub struct ServerConn {
    stream: SblStream,
}

impl std::fmt::Debug for ServerConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConn").finish_non_exhaustive()
    }
}

impl VrpcServer {
    /// Create a server for `prog`/`vers` on the given endpoint.
    pub fn new(vmmc: Vmmc, prog: u32, vers: u32) -> VrpcServer {
        VrpcServer {
            vmmc,
            prog,
            vers,
            procs: HashMap::new(),
            in_place: false,
        }
    }

    /// Register the handler for procedure `proc_` (procedure 0, the null
    /// procedure, is implicit but may be overridden).
    pub fn register(&mut self, proc_: u32, handler: ProcHandler) {
        self.procs.insert(proc_, handler);
    }

    /// The VMMC endpoint.
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Enable the §4.2 "further optimization": decode call arguments
    /// directly from the ring (no receiver-side copy; the client cannot
    /// overwrite them because the ring space is acknowledged only after
    /// the call is dispatched).
    pub fn set_in_place_args(&mut self, on: bool) {
        self.in_place = on;
    }

    /// Block until one client connects (through the directory), then
    /// establish the mapping pair.
    ///
    /// # Errors
    ///
    /// Propagates mapping-establishment failures.
    pub fn accept(
        &mut self,
        ctx: &Ctx,
        directory: &Arc<RpcDirectory>,
    ) -> Result<ServerConn, RpcError> {
        let req = directory.listen(self.prog).recv(ctx);
        let (local, my_name) = SblStream::export_region(&self.vmmc, ctx)?;
        let peer = self.vmmc.import(ctx, req.client_node, req.client_region)?;
        req.reply
            .send(&ctx.handle(), (self.vmmc.node_id(), my_name));
        let stream = SblStream::assemble(&self.vmmc, ctx, local, peer, req.variant)?;
        Ok(ServerConn { stream })
    }

    /// Serve calls on a connection until the client closes it (empty
    /// record). Returns the number of calls served.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; malformed calls are answered with
    /// error dispositions, not errors here.
    pub fn serve(&mut self, ctx: &Ctx, conn: &mut ServerConn) -> Result<u64, RpcError> {
        let mut served = 0u64;
        loop {
            let record = if self.in_place {
                conn.stream.recv_record_in_place(&self.vmmc, ctx)?
            } else {
                conn.stream.recv_record(&self.vmmc, ctx)?
            };
            if record.is_empty() {
                return Ok(served);
            }
            // Fig. 5 "header processing": server CPU from the record
            // becoming available to the reply being handed to the
            // stream. Recorded via a drop guard because the dispatch
            // below exits through two `send_record` paths.
            let obs_t0 = ctx.now();
            let _hdr_span = self.vmmc.obs().map(|rec| HeaderProcSpan {
                rec,
                node: self.vmmc.node_index(),
                start: obs_t0,
                ctx_handle: ctx.handle(),
                bytes: record.len(),
            });
            ctx.advance(costs::server_dispatch());
            ctx.advance(costs::xdr_decode(record.len()));
            let mut dec = XdrDecoder::new(&record);
            let mut enc = XdrEncoder::new();
            match CallHeader::decode(&mut dec) {
                Err(_) => {
                    // Unparseable header: nothing sensible to echo;
                    // answer with a garbage-args reply on xid 0.
                    ReplyHeader {
                        xid: 0,
                        stat: AcceptStat::GarbageArgs,
                    }
                    .encode(&mut enc);
                }
                Ok(call) => {
                    let stat = if call.prog != self.prog {
                        AcceptStat::ProgUnavail
                    } else if call.vers != self.vers {
                        AcceptStat::ProgMismatch
                    } else {
                        match self.procs.get_mut(&call.proc_) {
                            None if call.proc_ == 0 => AcceptStat::Success, // null procedure
                            None => AcceptStat::ProcUnavail,
                            Some(h) => {
                                // Results are encoded after the header;
                                // build the header first with a
                                // placeholder pass: encode into a side
                                // buffer, then assemble.
                                let mut results = XdrEncoder::new();
                                let stat = h(ctx, &mut dec, &mut results);
                                ReplyHeader {
                                    xid: call.xid,
                                    stat,
                                }
                                .encode(&mut enc);
                                if stat == AcceptStat::Success {
                                    enc.append_encoded(results.as_bytes());
                                }
                                conn.stream.send_record(&self.vmmc, ctx, enc.as_bytes())?;
                                served += 1;
                                continue;
                            }
                        }
                    };
                    ReplyHeader {
                        xid: call.xid,
                        stat,
                    }
                    .encode(&mut enc);
                }
            }
            conn.stream.send_record(&self.vmmc, ctx, enc.as_bytes())?;
            served += 1;
        }
    }
}
