//! Service binding: how a VRPC client finds a server and how the
//! mapping pair for the SBL stream is established.
//!
//! Plays the role of the portmapper plus connection setup. The name
//! exchange itself travels out of band (as the prototype did over its
//! service network); each side then exports one region and imports the
//! peer's, and the pair forms the bidirectional stream.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::BufferName;
use shrimp_mesh::NodeId;
use shrimp_sim::SimChannel;

use crate::stream::StreamVariant;

/// A connection request delivered to a listening server.
#[derive(Debug)]
pub struct ConnectRequest {
    /// The client's node.
    pub client_node: NodeId,
    /// Name of the region the client exported (the server→client
    /// direction's ring lives there... no: the client's export receives
    /// data *for the client*, i.e. the server writes into it).
    pub client_region: BufferName,
    /// Stream variant the client wants.
    pub variant: StreamVariant,
    /// Where the server sends its own exported region's name.
    pub reply: SimChannel<(NodeId, BufferName)>,
}

/// The per-system service directory: program number → listener queue.
#[derive(Default)]
pub struct RpcDirectory {
    services: Mutex<HashMap<u32, SimChannel<ConnectRequest>>>,
}

impl std::fmt::Debug for RpcDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcDirectory").finish_non_exhaustive()
    }
}

impl RpcDirectory {
    /// An empty directory. Share one per simulated system.
    pub fn new() -> Arc<RpcDirectory> {
        Arc::new(RpcDirectory::default())
    }

    /// Register (or look up) the listener queue for a program.
    pub fn listen(&self, prog: u32) -> SimChannel<ConnectRequest> {
        self.services.lock().entry(prog).or_default().clone()
    }

    /// The listener queue for a program, if any client/server registered
    /// it. Connecting to a never-served program returns the queue too —
    /// the connect will simply block until a server arrives, matching
    /// retry-until-bound portmapper behaviour.
    pub fn lookup(&self, prog: u32) -> SimChannel<ConnectRequest> {
        self.listen(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_and_lookup_share_a_queue() {
        let d = RpcDirectory::new();
        let a = d.listen(77);
        let b = d.lookup(77);
        let c = d.lookup(78);
        // Same program: same queue (pushing to one is visible to the other).
        assert_eq!(a.len(), 0);
        drop(b);
        drop(c);
        assert_eq!(d.services.lock().len(), 2);
    }
}
