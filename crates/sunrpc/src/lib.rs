//! # shrimp-sunrpc — VRPC: SunRPC-compatible remote procedure call
//!
//! A fast, fully compatible implementation of the SunRPC runtime (paper
//! §4.2), restructured for virtual memory-mapped communication exactly
//! as Figure 6 shows:
//!
//! * the network protocol stack is replaced with the **SBL** — a pair of
//!   VMMC mappings forming a bidirectional stream, one cyclic shared
//!   queue per direction ([`SblStream`]);
//! * the stream layer is folded into the **XDR** layer ([`XdrEncoder`] /
//!   [`XdrDecoder`]), so argument marshaling writes straight into the
//!   transport (no sender-side copy);
//! * the stub generator and kernel are unchanged — [`CallHeader`] /
//!   [`ReplyHeader`] carry the full RFC 1057 wire format, including the
//!   "nontrivial header" that separates VRPC from the specialized RPC of
//!   `shrimp-srpc`.
//!
//! Servers register procedure handlers ([`VrpcServer`]); clients bind
//! through the [`RpcDirectory`] and issue [`VrpcClient::call`].
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod connect;
mod msg;
mod server;
mod stream;
mod xdr;

pub use client::{costs, RpcError, VrpcClient};
pub use connect::{ConnectRequest, RpcDirectory};
pub use msg::{AcceptStat, CallHeader, ReplyHeader, MSG_CALL, MSG_REPLY, RPC_VERS};
pub use server::{ProcHandler, ServerConn, VrpcServer};
pub use stream::{SblStream, StreamVariant, REGION_BYTES, RING_BYTES};
pub use xdr::{XdrDecoder, XdrEncoder, XdrError};
