//! SunRPC message headers (RFC 1057).
//!
//! Full compatibility means the whole header goes over the wire for
//! every call — the paper points to exactly this as the reason the
//! compatible RPC cannot match the specialized one (§5, Figure 8): the
//! SunRPC standard "requires a nontrivial header to be sent for every
//! RPC".

use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// `msg_type` discriminants.
pub const MSG_CALL: u32 = 0;
/// Reply discriminant.
pub const MSG_REPLY: u32 = 1;
/// The only RPC protocol version.
pub const RPC_VERS: u32 = 2;

/// An authentication structure (we implement `AUTH_NONE`, as the
/// prototype's experiments did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpaqueAuth;

impl OpaqueAuth {
    fn encode(self, e: &mut XdrEncoder) {
        e.put_u32(0); // AUTH_NONE
        e.put_opaque(&[]);
    }

    fn decode(d: &mut XdrDecoder<'_>) -> Result<OpaqueAuth, XdrError> {
        let flavor = d.get_u32()?;
        let body = d.get_opaque()?;
        if flavor != 0 || !body.is_empty() {
            return Err(XdrError::Invalid("auth flavor"));
        }
        Ok(OpaqueAuth)
    }
}

/// A call message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallHeader {
    /// Transaction id.
    pub xid: u32,
    /// Remote program number.
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number.
    pub proc_: u32,
}

impl CallHeader {
    /// Encode the full RFC 1057 call header (credentials and verifier
    /// included); the procedure arguments follow directly.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.xid);
        e.put_u32(MSG_CALL);
        e.put_u32(RPC_VERS);
        e.put_u32(self.prog);
        e.put_u32(self.vers);
        e.put_u32(self.proc_);
        OpaqueAuth.encode(e); // cred
        OpaqueAuth.encode(e); // verf
    }

    /// Decode a call header.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncated or malformed headers.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<CallHeader, XdrError> {
        let xid = d.get_u32()?;
        if d.get_u32()? != MSG_CALL {
            return Err(XdrError::Invalid("msg_type"));
        }
        if d.get_u32()? != RPC_VERS {
            return Err(XdrError::Invalid("rpc version"));
        }
        let prog = d.get_u32()?;
        let vers = d.get_u32()?;
        let proc_ = d.get_u32()?;
        OpaqueAuth::decode(d)?;
        OpaqueAuth::decode(d)?;
        Ok(CallHeader {
            xid,
            prog,
            vers,
            proc_,
        })
    }
}

/// Reply status: how the server disposed of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// The call succeeded; results follow.
    Success,
    /// The program is not exported here.
    ProgUnavail,
    /// The program version is not supported.
    ProgMismatch,
    /// The procedure number is unknown.
    ProcUnavail,
    /// The arguments could not be decoded.
    GarbageArgs,
}

impl AcceptStat {
    fn as_u32(self) -> u32 {
        match self {
            AcceptStat::Success => 0,
            AcceptStat::ProgUnavail => 1,
            AcceptStat::ProgMismatch => 2,
            AcceptStat::ProcUnavail => 3,
            AcceptStat::GarbageArgs => 4,
        }
    }

    fn from_u32(v: u32) -> Result<AcceptStat, XdrError> {
        Ok(match v {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch,
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            _ => return Err(XdrError::Invalid("accept_stat")),
        })
    }
}

/// A reply message header (accepted replies only; the reliable VMMC
/// transport never produces the `MSG_DENIED` arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyHeader {
    /// Echoed transaction id.
    pub xid: u32,
    /// Disposition.
    pub stat: AcceptStat,
}

impl ReplyHeader {
    /// Encode the reply header; successful results follow directly.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.xid);
        e.put_u32(MSG_REPLY);
        e.put_u32(0); // MSG_ACCEPTED
        OpaqueAuth.encode(e); // verf
        e.put_u32(self.stat.as_u32());
    }

    /// Decode a reply header.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncated or malformed headers.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<ReplyHeader, XdrError> {
        let xid = d.get_u32()?;
        if d.get_u32()? != MSG_REPLY {
            return Err(XdrError::Invalid("msg_type"));
        }
        if d.get_u32()? != 0 {
            return Err(XdrError::Invalid("reply_stat"));
        }
        OpaqueAuth::decode(d)?;
        let stat = AcceptStat::from_u32(d.get_u32()?)?;
        Ok(ReplyHeader { xid, stat })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_header_round_trips_and_is_nontrivial() {
        let h = CallHeader {
            xid: 99,
            prog: 0x2000_0001,
            vers: 1,
            proc_: 7,
        };
        let mut e = XdrEncoder::new();
        h.encode(&mut e);
        // The "nontrivial header" of §5: 40 bytes before any argument.
        assert_eq!(e.len(), 40);
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(CallHeader::decode(&mut d).unwrap(), h);
    }

    #[test]
    fn reply_header_round_trips() {
        for stat in [
            AcceptStat::Success,
            AcceptStat::ProgUnavail,
            AcceptStat::ProgMismatch,
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
        ] {
            let h = ReplyHeader { xid: 5, stat };
            let mut e = XdrEncoder::new();
            h.encode(&mut e);
            let mut d = XdrDecoder::new(e.as_bytes());
            assert_eq!(ReplyHeader::decode(&mut d).unwrap(), h);
        }
    }

    #[test]
    fn wrong_discriminants_rejected() {
        let h = CallHeader {
            xid: 1,
            prog: 2,
            vers: 3,
            proc_: 4,
        };
        let mut e = XdrEncoder::new();
        h.encode(&mut e);
        // A call header is not a reply header.
        let mut d = XdrDecoder::new(e.as_bytes());
        assert!(ReplyHeader::decode(&mut d).is_err());
    }
}
