//! XDR: eXternal Data Representation (RFC 1014), the serialization
//! layer of SunRPC.
//!
//! Everything is big-endian and padded to 4-byte units, exactly as the
//! standard library's `xdr_*` routines produce. In the VRPC structure
//! (paper Figure 6) the stream layer has been folded into this layer:
//! the encoder writes into a buffer that the transport transmits without
//! further copying.

/// XDR encoding errors never occur (encoding is total); decoding errors:
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// Ran off the end of the input.
    Short {
        /// Bytes needed by the failing read.
        needed: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A decoded discriminant or length was invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for XdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XdrError::Short { needed, have } => {
                write!(f, "xdr input too short: needed {needed} bytes, have {have}")
            }
            XdrError::Invalid(what) => write!(f, "invalid xdr value: {what}"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Serializer producing XDR bytes.
///
/// ```
/// use shrimp_sunrpc::{XdrEncoder, XdrDecoder};
/// let mut enc = XdrEncoder::new();
/// enc.put_u32(7);
/// enc.put_string("hi");
/// let mut dec = XdrDecoder::new(enc.as_bytes());
/// assert_eq!(dec.get_u32().unwrap(), 7);
/// assert_eq!(dec.get_string().unwrap(), "hi");
/// ```
#[derive(Debug, Default, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Empty encoder.
    pub fn new() -> XdrEncoder {
        XdrEncoder::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the encoded byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Append an unsigned 64-bit integer (XDR hyper).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a boolean (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Append a double (IEEE 754, big-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append fixed-length opaque data (padded to 4 bytes).
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        let pad = (4 - data.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
    }

    /// Append variable-length opaque data (length-prefixed, padded).
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Append a string (UTF-8 bytes as opaque).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Append already-encoded XDR bytes verbatim (results after a reply
    /// header, for instance).
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a whole number of XDR units (4 bytes).
    pub fn append_encoded(&mut self, bytes: &[u8]) {
        assert!(bytes.len().is_multiple_of(4), "XDR data is 4-byte aligned");
        self.buf.extend_from_slice(bytes);
    }

    /// Append an array with a length prefix, encoding each element.
    pub fn put_array<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }
}

/// Deserializer consuming XDR bytes.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decode from a byte slice.
    pub fn new(buf: &'a [u8]) -> XdrDecoder<'a> {
        XdrDecoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Short {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`XdrError::Short`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a signed 32-bit integer.
    ///
    /// # Errors
    ///
    /// As [`XdrDecoder::get_u32`].
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`XdrError::Short`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a boolean.
    ///
    /// # Errors
    ///
    /// [`XdrError::Invalid`] unless the value is 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(XdrError::Invalid("bool")),
        }
    }

    /// Read a double.
    ///
    /// # Errors
    ///
    /// [`XdrError::Short`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, XdrError> {
        let b = self.take(8)?;
        Ok(f64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read `len` bytes of fixed opaque data (skipping padding).
    ///
    /// # Errors
    ///
    /// [`XdrError::Short`] on truncated input.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(len)?;
        let pad = (4 - len % 4) % 4;
        self.take(pad)?;
        Ok(data)
    }

    /// Read variable-length opaque data.
    ///
    /// # Errors
    ///
    /// [`XdrError::Short`] on truncated input.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()? as usize;
        self.get_opaque_fixed(len)
    }

    /// Read a string.
    ///
    /// # Errors
    ///
    /// [`XdrError::Invalid`] if the bytes are not UTF-8.
    pub fn get_string(&mut self) -> Result<&'a str, XdrError> {
        let b = self.get_opaque()?;
        std::str::from_utf8(b).map_err(|_| XdrError::Invalid("utf-8 string"))
    }

    /// Read a length-prefixed array, decoding each element.
    ///
    /// # Errors
    ///
    /// Propagates element decoding errors.
    pub fn get_array<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, XdrError>,
    ) -> Result<Vec<T>, XdrError> {
        let n = self.get_u32()? as usize;
        // Guard against absurd lengths from corrupt input.
        if n > self.remaining() {
            return Err(XdrError::Invalid("array length"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        e.put_i32(-5);
        e.put_u64(0x1122_3344_5566_7788);
        e.put_bool(true);
        e.put_f64(-2.5);
        assert_eq!(&e.as_bytes()[..4], &[1, 2, 3, 4]); // big-endian
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(d.get_u32().unwrap(), 0x0102_0304);
        assert_eq!(d.get_i32().unwrap(), -5);
        assert_eq!(d.get_u64().unwrap(), 0x1122_3344_5566_7788);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_f64().unwrap(), -2.5);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn opaque_is_padded_to_four_bytes() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde");
        assert_eq!(e.len(), 4 + 8); // length + 5 data + 3 pad
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(d.get_opaque().unwrap(), b"abcde");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn strings_and_arrays_round_trip() {
        let mut e = XdrEncoder::new();
        e.put_string("SHRIMP");
        e.put_array(&[10u32, 20, 30], |e, v| e.put_u32(*v));
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(d.get_string().unwrap(), "SHRIMP");
        assert_eq!(d.get_array(|d| d.get_u32()).unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn short_input_is_an_error() {
        let mut d = XdrDecoder::new(&[0, 0]);
        assert_eq!(
            d.get_u32().unwrap_err(),
            XdrError::Short { needed: 4, have: 2 }
        );
    }

    #[test]
    fn invalid_bool_and_array_length_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(7);
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(d.get_bool().unwrap_err(), XdrError::Invalid("bool"));

        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX);
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(
            d.get_array(|d| d.get_u32()).unwrap_err(),
            XdrError::Invalid("array length")
        );
    }

    #[test]
    fn zero_length_opaque() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"");
        assert_eq!(e.len(), 4);
        let mut d = XdrDecoder::new(e.as_bytes());
        assert_eq!(d.get_opaque().unwrap(), b"");
    }
}
