//! The SBL — SHRIMP base layer: a bidirectional byte stream over a pair
//! of import-export mappings.
//!
//! Each direction is a **cyclic shared queue** (paper §4.2): the data
//! ring lives in the receiver's exported memory and the writer deposits
//! bytes directly into it. The control information is two reserved
//! words — a running *written* count, and the writer's *consumed* count
//! of the opposite direction (the flow-control ack) — always transferred
//! by automatic update, while the data moves by automatic or deliberate
//! update according to the configured variant.
//!
//! Layout of one direction's region (exported by that direction's
//! receiver): one control page (`written` at offset 0, `consumed` of the
//! opposite direction at offset 4), then `RING_BYTES` of data ring.

use shrimp_core::{ImportHandle, Vmmc, VmmcError};
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::Ctx;

/// Ring capacity per direction. Comfortably exceeds the largest message
/// in the paper's sweeps (10 KB) so steady-state calls never stall on
/// flow control.
pub const RING_BYTES: usize = 64 * 1024;

/// Total region size per direction (control page + ring).
pub const REGION_BYTES: usize = PAGE_SIZE + RING_BYTES;

/// How message *data* is moved (control always uses automatic update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamVariant {
    /// Marshal straight into the automatic-update mirror of the peer's
    /// ring; the stores are the transfer.
    #[default]
    AutomaticUpdate,
    /// Marshal into a local staging ring, then one deliberate update.
    DeliberateUpdate,
}

/// One endpoint of an established bidirectional stream.
pub struct SblStream {
    vmmc_name: String,
    variant: StreamVariant,
    /// My export: the peer deposits data for me here.
    local: VAddr,
    /// The peer's region (my outgoing direction).
    peer: ImportHandle,
    /// AU mirror of the peer's region (whole region for AU data, control
    /// page only for DU data — but mapping the whole region is free, so
    /// we always bind it all and the variant picks the data path).
    mirror: VAddr,
    /// Staging ring for the deliberate-update data path.
    staging: VAddr,
    /// Scratch area the receive path copies messages into (the
    /// receiver-side copy of the 1-copy protocol).
    scratch: VAddr,
    sent_total: u64,
    consumed_total: u64,
}

impl std::fmt::Debug for SblStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SblStream")
            .field("endpoint", &self.vmmc_name)
            .field("variant", &self.variant)
            .finish_non_exhaustive()
    }
}

impl SblStream {
    /// Assemble an endpoint from an established mapping pair: `local` is
    /// this side's exported region, `peer` the imported remote region.
    /// Call once per side after the out-of-band name exchange; the AU
    /// binding for the outgoing direction is created here.
    ///
    /// # Errors
    ///
    /// Fails if the AU binding cannot be created.
    pub fn assemble(
        vmmc: &Vmmc,
        ctx: &Ctx,
        local: VAddr,
        peer: ImportHandle,
        variant: StreamVariant,
    ) -> Result<SblStream, VmmcError> {
        let mirror = vmmc.proc_().alloc(REGION_BYTES, CacheMode::WriteBack);
        vmmc.bind_au(ctx, mirror, &peer, 0, REGION_BYTES / PAGE_SIZE, true, false)?;
        let staging = vmmc.proc_().alloc(RING_BYTES, CacheMode::WriteBack);
        let scratch = vmmc.proc_().alloc(RING_BYTES, CacheMode::WriteBack);
        Ok(SblStream {
            vmmc_name: vmmc.proc_().name().to_string(),
            variant,
            local,
            peer,
            mirror,
            staging,
            scratch,
            sent_total: 0,
            consumed_total: 0,
        })
    }

    /// Allocate and export one direction's region; helper for connection
    /// setup.
    ///
    /// # Errors
    ///
    /// Fails if the export is rejected.
    pub fn export_region(
        vmmc: &Vmmc,
        ctx: &Ctx,
    ) -> Result<(VAddr, shrimp_core::BufferName), VmmcError> {
        let va = vmmc.proc_().alloc(REGION_BYTES, CacheMode::WriteBack);
        let name = vmmc.export(ctx, va, REGION_BYTES, shrimp_core::ExportOpts::default())?;
        Ok((va, name))
    }

    /// Bytes the peer has acknowledged consuming from our outgoing ring.
    ///
    /// # Errors
    ///
    /// Fails if the control page is no longer mapped.
    fn peer_ack(&self, vmmc: &Vmmc) -> Result<u32, VmmcError> {
        let b = vmmc.proc_().peek(self.local.add(4), 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Send one message (a length-delimited record). Blocks for ring
    /// space, deposits `[len | bytes]` into the peer's ring, then
    /// updates the written count (control after data; in-order delivery
    /// makes the count the commit point).
    ///
    /// # Errors
    ///
    /// Propagates transfer faults.
    pub fn send_record(&mut self, vmmc: &Vmmc, ctx: &Ctx, bytes: &[u8]) -> Result<(), VmmcError> {
        let framed_len = 4 + bytes.len();
        let padded = framed_len.div_ceil(4) * 4;
        assert!(padded <= RING_BYTES, "record exceeds ring capacity");
        // Flow control: wait until the ring has room (counters are
        // modulo 2^32; differences stay correct across wrap because the
        // ring is far smaller than 2^31).
        let sent32 = self.sent_total as u32;
        let ack = self.peer_ack(vmmc)?;
        if sent32.wrapping_sub(ack) as usize + padded > RING_BYTES {
            let needed_ack = sent32
                .wrapping_add(padded as u32)
                .wrapping_sub(RING_BYTES as u32);
            vmmc.wait_u32(ctx, self.local.add(4), 256, move |v| {
                v.wrapping_sub(needed_ack) as i32 >= 0
            })?;
        }

        let mut framed = Vec::with_capacity(padded);
        framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        framed.extend_from_slice(bytes);
        framed.resize(padded, 0);

        // Deposit into the ring, splitting on wrap.
        let mut off = 0usize;
        while off < padded {
            let pos = ((self.sent_total + off as u64) % RING_BYTES as u64) as usize;
            let n = (padded - off).min(RING_BYTES - pos);
            match self.variant {
                StreamVariant::AutomaticUpdate => {
                    // XDR output written straight into the AU-bound ring:
                    // the marshaling stores are the send.
                    vmmc.proc_().write(
                        ctx,
                        self.mirror.add(PAGE_SIZE + pos),
                        &framed[off..off + n],
                    )?;
                }
                StreamVariant::DeliberateUpdate => {
                    // Marshal into the staging ring (write-back cost)...
                    vmmc.proc_()
                        .write(ctx, self.staging.add(pos), &framed[off..off + n])?;
                    // ...then one deliberate update into the peer's ring.
                    vmmc.send(ctx, self.staging.add(pos), &self.peer, PAGE_SIZE + pos, n)?;
                }
            }
            off += n;
        }
        self.sent_total += padded as u64;
        // Control word after the data (automatic update).
        vmmc.proc_()
            .write_u32(ctx, self.mirror, self.sent_total as u32)?;
        Ok(())
    }

    /// True if a complete record is already available (untimed check).
    ///
    /// # Errors
    ///
    /// Fails if the stream's local region is no longer mapped.
    pub fn record_available(&self, vmmc: &Vmmc) -> Result<bool, VmmcError> {
        let b = vmmc.proc_().peek(self.local, 4)?;
        let written = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let avail = written.wrapping_sub(self.consumed_total as u32);
        if avail < 4 {
            return Ok(false);
        }
        let len = self.peek_ring_u32(vmmc, self.consumed_total)? as usize;
        Ok(avail as usize >= (4 + len).div_ceil(4) * 4)
    }

    fn peek_ring_u32(&self, vmmc: &Vmmc, at: u64) -> Result<u32, VmmcError> {
        let pos = (at % RING_BYTES as u64) as usize;
        debug_assert!(
            pos + 4 <= RING_BYTES,
            "records are 4-aligned so a length never wraps"
        );
        let b = vmmc.proc_().peek(self.local.add(PAGE_SIZE + pos), 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Receive one message, blocking until it has fully arrived. The
    /// record is copied out of the ring into scratch memory (the
    /// receiver-side copy) and returned; the consumed count is
    /// acknowledged to the writer through automatic update.
    ///
    /// # Errors
    ///
    /// Propagates transfer faults.
    pub fn recv_record(&mut self, vmmc: &Vmmc, ctx: &Ctx) -> Result<Vec<u8>, VmmcError> {
        self.recv_record_impl(vmmc, ctx, true)
    }

    /// Receive one message **in place** — the §4.2 "further
    /// optimization": with slightly modified stubs the XDR decode can
    /// consume the arguments directly from the ring, eliminating the
    /// receiver-side copy. The consequence the paper notes holds here
    /// too: the record's ring space is only acknowledged on this call,
    /// so the peer cannot overwrite data the server is still consuming
    /// (the server must finish the current call before the next arrives
    /// anyway).
    ///
    /// # Errors
    ///
    /// Propagates transfer faults.
    pub fn recv_record_in_place(&mut self, vmmc: &Vmmc, ctx: &Ctx) -> Result<Vec<u8>, VmmcError> {
        self.recv_record_impl(vmmc, ctx, false)
    }

    fn recv_record_impl(
        &mut self,
        vmmc: &Vmmc,
        ctx: &Ctx,
        copy: bool,
    ) -> Result<Vec<u8>, VmmcError> {
        // Wait for the length word.
        let need_len = (self.consumed_total + 4) as u32;
        vmmc.wait_u32(ctx, self.local, 256, move |v| {
            v.wrapping_sub(need_len) as i32 >= 0
        })?;
        let len = self.peek_ring_u32(vmmc, self.consumed_total)? as usize;
        let padded = (4 + len).div_ceil(4) * 4;
        // Wait for the full record.
        let need_all = (self.consumed_total + padded as u64) as u32;
        vmmc.wait_u32(ctx, self.local, 256, move |v| {
            v.wrapping_sub(need_all) as i32 >= 0
        })?;

        let mut out = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let at = self.consumed_total + 4 + off as u64;
            let pos = (at % RING_BYTES as u64) as usize;
            let n = (len - off).min(RING_BYTES - pos);
            if copy {
                // The 1-copy protocol's receiver copy.
                vmmc.proc_().copy(
                    ctx,
                    self.local.add(PAGE_SIZE + pos),
                    self.scratch.add(off),
                    n,
                )?;
                let bytes = vmmc.proc_().peek(self.scratch.add(off), n)?;
                out[off..off + n].copy_from_slice(&bytes);
            } else {
                // In-place decode: per-word loads only.
                let bytes = vmmc.proc_().read(ctx, self.local.add(PAGE_SIZE + pos), n)?;
                out[off..off + n].copy_from_slice(&bytes);
            }
            off += n;
        }
        self.consumed_total += padded as u64;
        // Acknowledge through the peer's control page.
        vmmc.proc_()
            .write_u32(ctx, self.mirror.add(4), self.consumed_total as u32)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::{BufferName, ShrimpSystem, SystemConfig};
    use shrimp_mesh::NodeId;
    use shrimp_sim::{Kernel, SimChannel};

    fn pair_test(variant: StreamVariant, records: Vec<Vec<u8>>) {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let a_names: SimChannel<BufferName> = SimChannel::new();
        let b_names: SimChannel<BufferName> = SimChannel::new();
        let expected = records.clone();

        {
            let vmmc = system.endpoint(0, "a");
            let (a_names, b_names) = (a_names.clone(), b_names.clone());
            let records = records.clone();
            kernel.spawn("a", move |ctx| {
                let (_local, name) = SblStream::export_region(&vmmc, ctx).unwrap();
                a_names.send(&ctx.handle(), name);
                let peer_name = b_names.recv(ctx);
                let peer = vmmc.import(ctx, NodeId(1), peer_name).unwrap();
                let local = _local;
                let mut s = SblStream::assemble(&vmmc, ctx, local, peer, variant).unwrap();
                for r in &records {
                    s.send_record(&vmmc, ctx, r).unwrap();
                }
                // Echo check: receive them back.
                for r in &records {
                    assert_eq!(&s.recv_record(&vmmc, ctx).unwrap(), r);
                }
            });
        }
        {
            let vmmc = system.endpoint(1, "b");
            kernel.spawn("b", move |ctx| {
                let (local, name) = SblStream::export_region(&vmmc, ctx).unwrap();
                b_names.send(&ctx.handle(), name);
                let peer_name = a_names.recv(ctx);
                let peer = vmmc.import(ctx, NodeId(0), peer_name).unwrap();
                let mut s = SblStream::assemble(&vmmc, ctx, local, peer, variant).unwrap();
                for r in &expected {
                    let got = s.recv_record(&vmmc, ctx).unwrap();
                    assert_eq!(&got, r);
                    s.send_record(&vmmc, ctx, &got).unwrap();
                }
            });
        }
        kernel.run_until_quiescent().unwrap();
        assert!(system.violations().is_empty());
    }

    #[test]
    fn echo_small_records_au() {
        pair_test(
            StreamVariant::AutomaticUpdate,
            vec![b"null".to_vec(), b"".to_vec(), vec![7; 100]],
        );
    }

    #[test]
    fn echo_small_records_du() {
        pair_test(
            StreamVariant::DeliberateUpdate,
            vec![b"abc".to_vec(), vec![1; 33], vec![2; 4096]],
        );
    }

    #[test]
    fn ring_wraps_correctly() {
        // Enough traffic to wrap the 64 KB ring several times.
        let records: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 9000]).collect();
        pair_test(StreamVariant::AutomaticUpdate, records);
    }

    #[test]
    fn du_ring_wraps_correctly() {
        let records: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 10000]).collect();
        pair_test(StreamVariant::DeliberateUpdate, records);
    }
}
