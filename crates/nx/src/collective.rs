//! NX global (collective) operations: `gsync`, `gdsum`, `gisum`.
//!
//! Implemented, as on the real machines, as message-passing algorithms
//! over the point-to-point layer: a dissemination barrier and
//! recursive-doubling reductions. Internal messages use types at
//! [`INTERNAL_TYPE_BASE`](crate::proc::INTERNAL_TYPE_BASE) and are
//! invisible to `crecv(-1, ...)`.

use shrimp_node::{CacheMode, VAddr};
use shrimp_sim::Ctx;

use crate::proc::{NxError, NxProc, INTERNAL_TYPE_BASE};

/// Scratch buffers for collectives, allocated lazily per process.
#[derive(Debug, Clone, Copy)]
struct Scratch {
    send: VAddr,
    recv: VAddr,
}

impl NxProc {
    fn scratch(&mut self) -> Scratch {
        // Allocate once; stash the addresses in a small table keyed by a
        // marker export-free allocation (cheap: two words stored in the
        // struct would be nicer, but keeps NxProc lean).
        if let Some(s) = self.collective_scratch {
            return Scratch {
                send: s.0,
                recv: s.1,
            };
        }
        let send = self.vmmc().proc_().alloc(64, CacheMode::WriteBack);
        let recv = self.vmmc().proc_().alloc(64, CacheMode::WriteBack);
        self.collective_scratch = Some((send, recv));
        Scratch { send, recv }
    }

    /// Global barrier (NX `gsync`): dissemination algorithm,
    /// `ceil(log2 n)` rounds.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gsync(&mut self, ctx: &Ctx) -> Result<(), NxError> {
        let n = self.numnodes();
        if n == 1 {
            return Ok(());
        }
        let me = self.mynode();
        let s = self.scratch();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let mtype = INTERNAL_TYPE_BASE + ((epoch as i32 & 0xFFF) << 8) + round as i32;
            let to = (me + dist) % n;
            let _from = (me + n - dist) % n;
            self.csend(ctx, mtype, s.send, 0, to)?;
            self.crecv(ctx, mtype, s.recv, 64)?;
            dist *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Global sum of one `f64` across all ranks (NX `gdsum` with a
    /// single element): recursive doubling over the power-of-two portion
    /// with fold-in for the remainder.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gdsum(&mut self, ctx: &Ctx, x: f64) -> Result<f64, NxError> {
        self.reduce_bytes(ctx, &x.to_le_bytes(), |a, b| {
            let fa = f64::from_le_bytes(a.try_into().expect("8 bytes"));
            let fb = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            (fa + fb).to_le_bytes().to_vec()
        })
        .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Global sum of one `i64` across all ranks (NX `gisum` with a
    /// single element).
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gisum(&mut self, ctx: &Ctx, x: i64) -> Result<i64, NxError> {
        self.reduce_bytes(ctx, &x.to_le_bytes(), |a, b| {
            let fa = i64::from_le_bytes(a.try_into().expect("8 bytes"));
            let fb = i64::from_le_bytes(b.try_into().expect("8 bytes"));
            (fa + fb).to_le_bytes().to_vec()
        })
        .map(|b| i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Broadcast `len` bytes from `root`'s `buf` into every other rank's
    /// `buf` — the software multicast of paper §6: the hardware multicast
    /// feature was removed during co-design because a software spanning
    /// tree performs acceptably. This is a binomial tree:
    /// `ceil(log2 n)` rounds, each participant forwarding to one new
    /// rank per round.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gbcast(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), NxError> {
        let n = self.numnodes();
        if n == 1 {
            return Ok(());
        }
        let me = self.mynode();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let tag = INTERNAL_TYPE_BASE + 0x2000 + (epoch as i32 & 0xFFF);
        // Virtual ranks relative to the root.
        let vrank = (me + n - root) % n;
        let rounds = usize::BITS - (n - 1).leading_zeros();
        // Receive once (non-roots), then forward in the remaining rounds.
        if vrank != 0 {
            // The bit of the highest set position tells which round this
            // rank is reached in; its parent cleared that bit.
            let got = self.crecv(ctx, tag, buf, len)?;
            debug_assert_eq!(got, len);
        }
        for k in 0..rounds {
            let bit = 1usize << k;
            if vrank < bit {
                let dst_v = vrank + bit;
                if dst_v < n {
                    self.csend(ctx, tag, buf, len, (dst_v + root) % n)?;
                }
            }
        }
        Ok(())
    }

    /// The naive multicast a sender without a tree would do: the root
    /// sends to every rank in turn. Kept for the ablation bench that
    /// justifies the co-design decision.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gbcast_naive(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), NxError> {
        let n = self.numnodes();
        let me = self.mynode();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let tag = INTERNAL_TYPE_BASE + 0x3000 + (epoch as i32 & 0xFFF);
        if me == root {
            for dst in 0..n {
                if dst != root {
                    self.csend(ctx, tag, buf, len, dst)?;
                }
            }
        } else {
            self.crecv(ctx, tag, buf, len)?;
        }
        Ok(())
    }

    /// Concatenation gather (NX `gcol` for a single element per rank):
    /// every rank contributes `len` bytes from `buf`; every rank returns
    /// the concatenation in rank order. Implemented as a gather to rank
    /// 0 followed by a tree broadcast.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gcol(&mut self, ctx: &Ctx, buf: VAddr, len: usize) -> Result<Vec<u8>, NxError> {
        let n = self.numnodes();
        let me = self.mynode();
        let p = self.vmmc().proc_().clone();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let tag = INTERNAL_TYPE_BASE + 0x4000 + ((epoch as i32) & 0xFFF);
        let total = n * len;
        let all = p.alloc(total.max(4), CacheMode::WriteBack);
        if me == 0 {
            // Collect every contribution into rank order (receiving via
            // a scratch area so late arrivals never clobber placed data).
            let scratch = p.alloc(len.max(4), CacheMode::WriteBack);
            let mine = p.peek(buf, len).map_err(shrimp_core::VmmcError::from)?;
            p.poke(all, &mine).map_err(shrimp_core::VmmcError::from)?;
            for _ in 1..n {
                let got = self.crecv(ctx, tag, scratch, len)?;
                debug_assert_eq!(got, len);
                let src = self.infonode();
                let data = p.peek(scratch, len).map_err(shrimp_core::VmmcError::from)?;
                p.poke(all.add(src * len), &data)
                    .map_err(shrimp_core::VmmcError::from)?;
            }
        } else {
            self.csend(ctx, tag, buf, len, 0)?;
        }
        self.gbcast(ctx, 0, all, total)?;
        Ok(p.peek(all, total).map_err(shrimp_core::VmmcError::from)?)
    }

    /// All-reduce of a fixed-width value with a combining function;
    /// every rank returns the same result.
    fn reduce_bytes(
        &mut self,
        ctx: &Ctx,
        value: &[u8],
        combine: impl Fn(&[u8], &[u8]) -> Vec<u8>,
    ) -> Result<Vec<u8>, NxError> {
        assert!(value.len() <= 64, "collective scratch is 64 bytes");
        let n = self.numnodes();
        let me = self.mynode();
        let s = self.scratch();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let mut acc = value.to_vec();
        let p = self.vmmc().proc_().clone();

        // Recursive doubling across the largest power of two <= n; extra
        // ranks fold into their partner first and receive the result at
        // the end.
        let pow2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let tag =
            |round: u32| INTERNAL_TYPE_BASE + 0x1000 + ((epoch as i32 & 0xFFF) << 8) + round as i32;
        if me >= pow2 {
            // Fold in, then wait for the broadcast result.
            p.write(ctx, s.send, &acc)
                .map_err(shrimp_core::VmmcError::from)?;
            self.csend(ctx, tag(30), s.send, acc.len(), me - pow2)?;
            let n_bytes = self.crecv(ctx, tag(31), s.recv, 64)?;
            return Ok(p
                .read(ctx, s.recv, n_bytes)
                .map_err(shrimp_core::VmmcError::from)?);
        }
        if me + pow2 < n {
            let got = self.crecvx(ctx, tag(30), s.recv, 64, Some(me + pow2))?;
            let other = p
                .read(ctx, s.recv, got)
                .map_err(shrimp_core::VmmcError::from)?;
            acc = combine(&acc, &other);
        }
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < pow2 {
            let partner = me ^ dist;
            p.write(ctx, s.send, &acc)
                .map_err(shrimp_core::VmmcError::from)?;
            self.csend(ctx, tag(round), s.send, acc.len(), partner)?;
            let got = self.crecvx(ctx, tag(round), s.recv, 64, Some(partner))?;
            let other = p
                .read(ctx, s.recv, got)
                .map_err(shrimp_core::VmmcError::from)?;
            acc = combine(&acc, &other);
            dist *= 2;
            round += 1;
        }
        if me + pow2 < n {
            p.write(ctx, s.send, &acc)
                .map_err(shrimp_core::VmmcError::from)?;
            self.csend(ctx, tag(31), s.send, acc.len(), me + pow2)?;
        }
        Ok(acc)
    }
}
