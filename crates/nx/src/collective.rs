//! NX global (collective) operations: `gsync`, `gdsum`, `gisum`,
//! `gbcast`, `gcol` — thin wrappers over the `shrimp-coll`
//! communicator each rank carries.
//!
//! The heavy lifting (persistent VMMC channel geometry, ring and
//! binomial-tree algorithms, chunked pipelining, the size selector)
//! lives in `shrimp-coll`; these entry points only adapt NX's calling
//! conventions. The one exception is [`NxProc::gbcast_naive`], kept as
//! a point-to-point ablation baseline for the §6 co-design argument.

use shrimp_node::{CacheMode, VAddr};
use shrimp_sim::Ctx;

use crate::proc::{NxError, NxProc, INTERNAL_TYPE_BASE};

impl NxProc {
    /// Global barrier (NX `gsync`).
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gsync(&mut self, ctx: &Ctx) -> Result<(), NxError> {
        self.coll.barrier(ctx)?;
        Ok(())
    }

    /// Global sum of one `f64` across all ranks (NX `gdsum` with a
    /// single element).
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gdsum(&mut self, ctx: &Ctx, x: f64) -> Result<f64, NxError> {
        Ok(self.coll.allreduce_f64(ctx, &[x])?[0])
    }

    /// Global element-wise sum of a `f64` vector (NX `gdsum` with `n`
    /// elements): every rank returns the per-element sums.
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gdsum_vec(&mut self, ctx: &Ctx, xs: &[f64]) -> Result<Vec<f64>, NxError> {
        Ok(self.coll.allreduce_f64(ctx, xs)?)
    }

    /// Global sum of one `i64` across all ranks (NX `gisum` with a
    /// single element).
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gisum(&mut self, ctx: &Ctx, x: i64) -> Result<i64, NxError> {
        Ok(self.coll.allreduce_i64(ctx, &[x])?[0])
    }

    /// Global element-wise sum of an `i64` vector (NX `gisum` with `n`
    /// elements): every rank returns the per-element sums.
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gisum_vec(&mut self, ctx: &Ctx, xs: &[i64]) -> Result<Vec<i64>, NxError> {
        Ok(self.coll.allreduce_i64(ctx, xs)?)
    }

    /// Broadcast `len` bytes from `root`'s `buf` into every other
    /// rank's `buf` — the software multicast of paper §6: the hardware
    /// multicast feature was removed during co-design because a
    /// software spanning tree performs acceptably.
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gbcast(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), NxError> {
        self.coll.broadcast(ctx, root, buf, len)?;
        Ok(())
    }

    /// The naive multicast a sender without a tree would do: the root
    /// sends to every rank in turn over the point-to-point layer. Kept
    /// for the ablation bench that justifies the co-design decision.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gbcast_naive(
        &mut self,
        ctx: &Ctx,
        root: usize,
        buf: VAddr,
        len: usize,
    ) -> Result<(), NxError> {
        let n = self.numnodes();
        let me = self.mynode();
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let tag = INTERNAL_TYPE_BASE + 0x3000 + (epoch as i32 & 0xFFF);
        if me == root {
            for dst in 0..n {
                if dst != root {
                    self.csend(ctx, tag, buf, len, dst)?;
                }
            }
        } else {
            self.crecv(ctx, tag, buf, len)?;
        }
        Ok(())
    }

    /// Concatenation gather (NX `gcol` for a single element per rank):
    /// every rank contributes `len` bytes from `buf`; every rank
    /// returns the concatenation in rank order. Runs as an in-place
    /// allgather over uniform blocks in the collective layer.
    ///
    /// # Errors
    ///
    /// Propagates collective-channel errors.
    pub fn gcol(&mut self, ctx: &Ctx, buf: VAddr, len: usize) -> Result<Vec<u8>, NxError> {
        let n = self.numnodes();
        let me = self.mynode();
        let p = self.vmmc().proc_().clone();
        let total = n * len;
        let all = p.alloc(total.max(4), CacheMode::WriteBack);
        if len > 0 {
            p.copy(ctx, buf, all.add(me * len), len)
                .map_err(shrimp_core::VmmcError::from)?;
        }
        self.coll.allgather(ctx, all, total)?;
        Ok(p.peek(all, total).map_err(shrimp_core::VmmcError::from)?)
    }
}
