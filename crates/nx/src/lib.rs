//! # shrimp-nx — NX message passing on VMMC
//!
//! A compatibility implementation of the Intel NX multicomputer
//! message-passing interface (csend/crecv, isend/irecv/msgwait, probes,
//! info calls, and global operations), built entirely at user level on
//! virtual memory-mapped communication, following paper §4.1:
//!
//! * small messages use a **one-copy protocol** through fixed-size
//!   packet buffers with explicit send credits (consumable out of order,
//!   matching NX's typed receives);
//! * large messages use a **zero-copy scout/rendezvous protocol** with
//!   an optimistic sender-side safe copy (the copy is off the critical
//!   path — footnote 1);
//! * control information always travels by automatic update; message
//!   data moves by automatic or deliberate update according to
//!   [`NxConfig::send_variant`];
//! * a sender that finds all packet buffers full interrupts the receiver
//!   through a notification page to request credits (§6 "Interrupts").
//!
//! Start from [`NxWorld::new`] and call [`NxWorld::join`] in each rank's
//! process; see `examples/` at the workspace root for complete programs.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod collective;
mod config;
mod proc;
mod wire;
mod world;

pub use config::{NxConfig, SendVariant};
pub use proc::{MsgHandle, NxError, NxInfo, NxProc, NxStats, RecvHandler, INTERNAL_TYPE_BASE};
pub use wire::{
    CtrlLayout, DataLayout, Desc, MsgKind, Reply, ReplyMode, DESC_BYTES, PKT_BUF, PKT_PAYLOAD,
};
pub use world::NxWorld;
