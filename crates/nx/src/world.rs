//! NX job setup: connection establishment between every process pair.
//!
//! In NX a connection is set up between each pair of processes at
//! initialization time (paper §4 "Connections"). [`NxWorld`] plays the
//! role of the NX loader: each rank's process calls [`NxWorld::join`],
//! which exports its receive-side regions, publishes their names through
//! the loader (the trusted third party), waits for every other rank, and
//! then imports its peers' regions and creates the automatic-update
//! bindings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ExportPerms, ImportHandle, ShrimpSystem};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, Gate, RetryPolicy};

use crate::config::NxConfig;
use crate::proc::{NxError, NxProc};
use crate::wire::{CtrlLayout, DataLayout};

/// Which region of an ordered pair a published name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RegionKind {
    /// Packet buffers + done slots, exported by the receiver.
    Data,
    /// Credit ring + reply slots, exported by the sender.
    Ctrl,
    /// Interrupt page, exported by the receiver.
    Urgent,
}

#[derive(Default)]
struct Published {
    names: HashMap<(RegionKind, usize, usize), BufferName>,
}

/// The NX job: fixed set of processes, one per rank.
pub struct NxWorld {
    system: Arc<ShrimpSystem>,
    config: NxConfig,
    /// Node index hosting each rank.
    nodes: Vec<usize>,
    published: Mutex<Published>,
    joined: AtomicUsize,
    ready: Gate,
    /// Collective-communication factory: the `g*` calls run on
    /// `shrimp-coll` communicators sharing each rank's address space.
    coll: Arc<shrimp_coll::CollWorld>,
}

impl std::fmt::Debug for NxWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NxWorld")
            .field("ranks", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

/// Sender-side state for one outgoing connection (this rank → peer).
pub(crate) struct OutConn {
    /// The peer's data region.
    pub data: ImportHandle,
    /// Local AU mirror of the peer's data region (write-through, bound).
    pub au_send: VAddr,
    /// Local AU page bound to the peer's urgent page (interrupting).
    pub urgent: VAddr,
    /// Local staging area (one packet buffer + a spare descriptor + a
    /// done word), word-aligned, used by the deliberate-update paths.
    pub staging: VAddr,
    /// Local view of our exported control region (credits arrive here).
    pub ctrl_local: VAddr,
    /// Free packet buffers.
    pub free: Vec<usize>,
    /// Credits consumed so far (index of the next credit to wait for).
    pub credits_taken: u64,
    /// Next message sequence number.
    pub next_seq: u32,
    /// Next large-transfer id.
    pub next_msgid: u32,
    /// Outstanding large sends awaiting the receiver's reply.
    pub pending_large: Vec<crate::proc::PendingLarge>,
    /// Imports of the peer's exported user buffers (zero-copy), by name.
    pub zc_imports: HashMap<u64, ImportHandle>,
    /// Pool of safe-copy buffers for the optimistic large-send protocol.
    /// Each outstanding large send holds its own buffer until its
    /// transfer completes (a shared buffer would let a later send
    /// corrupt an earlier pending one's safe copy).
    pub bounce_pool: Vec<BounceBuf>,
}

/// One safe-copy buffer in the pool.
pub(crate) struct BounceBuf {
    pub va: VAddr,
    pub cap: usize,
    pub in_use: bool,
}

/// Receiver-side state for one incoming connection (peer → this rank).
pub(crate) struct InConn {
    /// Local view of our exported data region.
    pub data_local: VAddr,
    /// Local AU region bound to the peer's control region.
    pub ctrl_au: VAddr,
    /// Credits returned so far.
    pub credits_returned: u64,
    /// Buffers consumed but whose credits have not been flushed yet.
    pub pending_credits: Vec<usize>,
    /// Set by the urgent-page notification handler: the sender is out of
    /// buffers, flush credits now.
    pub flush_requested: Arc<AtomicBool>,
    /// Exported user receive buffers (zero-copy), keyed by (va, len).
    pub user_exports: HashMap<(u64, usize), BufferName>,
}

impl NxWorld {
    /// Create a world with one rank per entry of `nodes` (the node index
    /// each rank runs on).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or names an out-of-range node.
    pub fn new(system: Arc<ShrimpSystem>, config: NxConfig, nodes: Vec<usize>) -> Arc<NxWorld> {
        assert!(!nodes.is_empty(), "an NX world needs at least one rank");
        for &n in &nodes {
            assert!(n < system.len(), "node {n} out of range");
        }
        let coll = shrimp_coll::CollWorld::new(
            Arc::clone(&system),
            shrimp_coll::CollConfig::default(),
            nodes.clone(),
        );
        Arc::new(NxWorld {
            system,
            config,
            nodes,
            published: Mutex::new(Published::default()),
            joined: AtomicUsize::new(0),
            ready: Gate::new(),
            coll,
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty world (never constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The configuration all ranks share.
    pub fn config(&self) -> &NxConfig {
        &self.config
    }

    /// The node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.nodes[rank]
    }

    /// Called once from each rank's process: allocates and exports this
    /// rank's receive-side regions, rendezvouses with every other rank,
    /// then imports and binds. Returns the rank's NX library instance.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same rank, with an out-of-range
    /// rank, or on mapping-establishment failure; use
    /// [`NxWorld::try_join`] where setup faults must surface as errors.
    pub fn join(self: &Arc<Self>, ctx: &Ctx, rank: usize) -> NxProc {
        self.try_join(ctx, rank, RetryPolicy::bootstrap())
            .expect("NX job setup")
    }

    /// Fallible [`NxWorld::join`]: bounds the rendezvous wait by the
    /// policy's total budget and retries imports through daemon outages
    /// with the policy's backoff schedule.
    ///
    /// # Errors
    ///
    /// [`NxError::Timeout`] if some rank never arrives within the
    /// budget; mapping-establishment failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same rank or with an out-of-range
    /// rank (caller bugs, not runtime faults).
    pub fn try_join(
        self: &Arc<Self>,
        ctx: &Ctx,
        rank: usize,
        policy: RetryPolicy,
    ) -> Result<NxProc, NxError> {
        assert!(rank < self.len(), "rank {rank} out of range");
        let vmmc = self
            .system
            .endpoint(self.node_of(rank), format!("nx-rank{rank}"));
        let layout = DataLayout {
            npkt: self.config.packet_buffers,
        };
        let n = self.len();

        // Phase 1: export receive-side regions and publish their names.
        let mut in_parts: Vec<Option<(VAddr, Arc<AtomicBool>)>> = (0..n).map(|_| None).collect();
        let mut ctrl_parts: Vec<Option<VAddr>> = (0..n).map(|_| None).collect();
        for peer in 0..n {
            if peer == rank {
                continue;
            }
            // Data region (peer sends to me).
            let data_local = vmmc.proc_().alloc(layout.total(), CacheMode::WriteBack);
            let data_name = vmmc.export(ctx, data_local, layout.total(), ExportOpts::default())?;
            // Urgent page with a handler that requests a credit flush.
            let urgent_local = vmmc.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let flush_requested = Arc::new(AtomicBool::new(false));
            let fr = Arc::clone(&flush_requested);
            let urgent_name = vmmc.export(
                ctx,
                urgent_local,
                PAGE_SIZE,
                ExportOpts {
                    perms: ExportPerms::Any,
                    handler: Some(Box::new(move |_ctx, _ev| {
                        fr.store(true, Ordering::SeqCst);
                    })),
                    ..Default::default()
                },
            )?;
            // Control region (I send to peer; peer writes credits back).
            let ctrl_local = vmmc
                .proc_()
                .alloc(CtrlLayout::total(), CacheMode::WriteBack);
            let ctrl_name =
                vmmc.export(ctx, ctrl_local, CtrlLayout::total(), ExportOpts::default())?;

            let mut pubs = self.published.lock();
            pubs.names.insert((RegionKind::Data, peer, rank), data_name);
            pubs.names
                .insert((RegionKind::Urgent, peer, rank), urgent_name);
            pubs.names.insert((RegionKind::Ctrl, rank, peer), ctrl_name);
            in_parts[peer] = Some((data_local, flush_requested));
            ctrl_parts[peer] = Some(ctrl_local);
        }

        // Rendezvous, bounded: a rank that never shows up (crashed node,
        // wedged loader) must not hang the job forever.
        if self.joined.fetch_add(1, Ordering::SeqCst) + 1 == n {
            self.ready.open(&ctx.handle());
        }
        if !self
            .ready
            .wait_deadline(ctx, ctx.now() + policy.total_budget())
        {
            return Err(NxError::Timeout {
                op: "join rendezvous",
                waited: policy.total_budget(),
            });
        }

        // Phase 2: import peers' regions and create AU bindings.
        let mut out = Vec::with_capacity(n);
        let mut inc = Vec::with_capacity(n);
        for peer in 0..n {
            if peer == rank {
                out.push(None);
                inc.push(None);
                continue;
            }
            let (data_name, urgent_name, ctrl_name) = {
                let pubs = self.published.lock();
                (
                    pubs.names[&(RegionKind::Data, rank, peer)],
                    pubs.names[&(RegionKind::Urgent, rank, peer)],
                    pubs.names[&(RegionKind::Ctrl, peer, rank)],
                )
            };
            let peer_node = NodeId(self.node_of(peer));

            // Outgoing: peer's data region + urgent page.
            let data = vmmc.import_retry(ctx, peer_node, data_name, policy)?;
            let au_send = vmmc.proc_().alloc(layout.total(), CacheMode::WriteBack);
            vmmc.bind_au(
                ctx,
                au_send,
                &data,
                0,
                layout.total() / PAGE_SIZE,
                true,
                false,
            )?;
            let urgent_import = vmmc.import_retry(ctx, peer_node, urgent_name, policy)?;
            let urgent = vmmc.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            vmmc.bind_au(ctx, urgent, &urgent_import, 0, 1, true, true)?;
            let staging = vmmc
                .proc_()
                .alloc(crate::wire::PKT_BUF + 64, CacheMode::WriteBack);
            let (data_local, flush_requested) =
                in_parts[peer].take().expect("phase 1 created this");
            let ctrl_local = ctrl_parts[peer].take().expect("phase 1 created this");
            out.push(Some(OutConn {
                data,
                au_send,
                urgent,
                staging,
                ctrl_local,
                free: (0..self.config.packet_buffers).collect(),
                credits_taken: 0,
                next_seq: 1,
                next_msgid: 1,
                pending_large: Vec::new(),
                zc_imports: HashMap::new(),
                bounce_pool: Vec::new(),
            }));

            // Incoming: bind to the peer's control region for credits.
            let ctrl_import = vmmc.import_retry(ctx, peer_node, ctrl_name, policy)?;
            let ctrl_au = vmmc
                .proc_()
                .alloc(CtrlLayout::total(), CacheMode::WriteBack);
            vmmc.bind_au(
                ctx,
                ctrl_au,
                &ctrl_import,
                0,
                CtrlLayout::total() / PAGE_SIZE,
                true,
                false,
            )?;
            inc.push(Some(InConn {
                data_local,
                ctrl_au,
                credits_returned: 0,
                pending_credits: Vec::new(),
                flush_requested,
                user_exports: HashMap::new(),
            }));
        }

        // Finally, build this rank's collective communicator on the
        // same process, so the persistent channel geometry shares the
        // NX address space (user buffers are directly sendable).
        let coll = self
            .coll
            .try_join(ctx, rank, policy, Some(vmmc.proc_().clone()))?;

        Ok(NxProc::new(
            vmmc,
            rank,
            self.len(),
            self.config.clone(),
            layout,
            out,
            inc,
            coll,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::SystemConfig;
    use shrimp_sim::Kernel;

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_rejected() {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        NxWorld::new(system, NxConfig::default(), vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_rejected() {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        NxWorld::new(system, NxConfig::default(), vec![0, 9]);
    }

    #[test]
    fn join_wires_all_ranks() {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let world = NxWorld::new(Arc::clone(&system), NxConfig::default(), vec![0, 1, 2, 3]);
        for rank in 0..4 {
            let world = Arc::clone(&world);
            kernel.spawn(format!("rank{rank}"), move |ctx| {
                let nx = world.join(ctx, rank);
                assert_eq!(nx.mynode(), rank);
                assert_eq!(nx.numnodes(), 4);
            });
        }
        kernel.run_until_quiescent().unwrap();
        assert!(system.violations().is_empty());
    }
}
