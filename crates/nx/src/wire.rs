//! On-the-wire layout of the NX connection regions.
//!
//! Every ordered process pair (s → r) uses three mapped regions:
//!
//! * the **data region**, exported by the receiver: `NPKT` fixed-size
//!   packet buffers, each ending with a 32-byte descriptor whose `kind`
//!   word doubles as the arrival flag (it lands in the final packet, so
//!   in-order delivery makes it the commit point), followed by 8
//!   large-transfer *done* slots;
//! * the **control region**, exported by the sender and written by the
//!   receiver through automatic update: the credit ring (page 0) and the
//!   scout reply slots (page 1);
//! * the **urgent page**, exported by the receiver with a notification
//!   handler; the sender writes it with the destination-interrupt flag
//!   set when it finds all packet buffers full (paper §6 "Interrupts").

use shrimp_node::PAGE_SIZE;

/// Bytes per packet buffer, descriptor included.
pub const PKT_BUF: usize = 2048;
/// Bytes of descriptor at the end of each packet buffer.
pub const DESC_BYTES: usize = 32;
/// Payload bytes per packet buffer.
pub const PKT_PAYLOAD: usize = PKT_BUF - DESC_BYTES;
/// Large-transfer done slots per connection.
pub const DONE_SLOTS: usize = 8;
/// Credit ring slots (must exceed any packet-buffer count in use).
pub const CREDIT_SLOTS: usize = 64;
/// Scout reply slots per connection (bounds outstanding large sends).
pub const REPLY_SLOTS: usize = 8;

/// Message kind tags stored in a descriptor. `0` marks a free buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum MsgKind {
    /// A complete small message.
    Small = 1,
    /// A scout announcing a large transfer (payload empty, `size` is the
    /// full length).
    Scout = 2,
    /// One chunk of a large transfer using the non-aligned fallback.
    Chunk = 3,
}

impl MsgKind {
    /// Decode a descriptor kind word.
    pub fn from_u32(v: u32) -> Option<MsgKind> {
        match v {
            1 => Some(MsgKind::Small),
            2 => Some(MsgKind::Scout),
            3 => Some(MsgKind::Chunk),
            _ => None,
        }
    }
}

/// A decoded packet-buffer descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc {
    /// Payload length for Small/Chunk; total message length for Scout.
    pub size: u32,
    /// NX message type.
    pub mtype: i32,
    /// Per-connection send sequence number.
    pub seq: u32,
    /// Message kind (arrival flag; `None` = free buffer).
    pub kind: Option<MsgKind>,
    /// Large-transfer id (Scout/Chunk).
    pub msgid: u32,
    /// Byte offset of this chunk within the large message (Chunk).
    pub chunk_off: u32,
}

impl Desc {
    /// Encode into the 32-byte wire form. The `kind` word — the arrival
    /// flag — is the **first** word, so the automatic-update send path
    /// can write everything after it first and commit with a final
    /// single-word store (in-order delivery then guarantees the whole
    /// message precedes the flag on the receiver).
    pub fn encode(&self) -> [u8; DESC_BYTES] {
        let mut b = [0u8; DESC_BYTES];
        b[0..4].copy_from_slice(&self.kind.map_or(0, |k| k as u32).to_le_bytes());
        b[4..8].copy_from_slice(&self.size.to_le_bytes());
        b[8..12].copy_from_slice(&(self.mtype as u32).to_le_bytes());
        b[12..16].copy_from_slice(&self.seq.to_le_bytes());
        b[16..20].copy_from_slice(&self.msgid.to_le_bytes());
        b[20..24].copy_from_slice(&self.chunk_off.to_le_bytes());
        b
    }

    /// Decode from the wire form.
    pub fn decode(b: &[u8]) -> Desc {
        let word = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        Desc {
            kind: MsgKind::from_u32(word(0)),
            size: word(4),
            mtype: word(8) as i32,
            seq: word(12),
            msgid: word(16),
            chunk_off: word(20),
        }
    }
}

/// Scout reply modes written by the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ReplyMode {
    /// Zero-copy: the sender transfers straight into the receiver's
    /// exported user buffer (`name` in the reply).
    ZeroCopy = 1,
    /// Alignment forbids zero-copy: stream chunks through the packet
    /// buffers instead.
    Chunked = 2,
}

/// A decoded scout reply slot (16 bytes: name u64, mode u32, ack u32;
/// `ack == msgid` is the arrival flag and is written last in the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Export name of the receiver's user buffer (ZeroCopy mode).
    pub name: u64,
    /// Transfer mode.
    pub mode: ReplyMode,
    /// Echoed msgid; acts as the arrival flag.
    pub ack: u32,
}

impl Reply {
    /// Bytes per reply slot.
    pub const BYTES: usize = 16;

    /// Encode into the 16-byte wire form.
    pub fn encode(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.name.to_le_bytes());
        b[8..12].copy_from_slice(&(self.mode as u32).to_le_bytes());
        b[12..16].copy_from_slice(&self.ack.to_le_bytes());
        b
    }

    /// Decode from the wire form; `None` until the ack matches `msgid`.
    pub fn decode(b: &[u8], msgid: u32) -> Option<Reply> {
        let ack = u32::from_le_bytes([b[12], b[13], b[14], b[15]]);
        if ack != msgid {
            return None;
        }
        let mode = match u32::from_le_bytes([b[8], b[9], b[10], b[11]]) {
            1 => ReplyMode::ZeroCopy,
            2 => ReplyMode::Chunked,
            _ => return None,
        };
        Some(Reply {
            name: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            mode,
            ack,
        })
    }
}

/// Byte offsets within the data region (exported by the receiver).
///
/// Each packet buffer is `[descriptor | payload]`. A message is written
/// as one ascending run (or the payload first and the descriptor in a
/// second, later transfer), so the descriptor is always part of the
/// *final* packet to land and its `kind` word is a safe arrival flag —
/// packets commit atomically at DMA completion, and in the real hardware
/// write combining gives the same property (§4.1).
#[derive(Debug, Clone, Copy)]
pub struct DataLayout {
    /// Packet buffers per connection.
    pub npkt: usize,
}

impl DataLayout {
    /// Offset of packet buffer `i`.
    pub fn pkt(&self, i: usize) -> usize {
        assert!(i < self.npkt, "packet buffer index out of range");
        i * PKT_BUF
    }

    /// Offset of packet buffer `i`'s descriptor (the buffer start).
    pub fn desc(&self, i: usize) -> usize {
        self.pkt(i)
    }

    /// Offset of packet buffer `i`'s payload.
    pub fn payload(&self, i: usize) -> usize {
        self.pkt(i) + DESC_BYTES
    }

    /// Offset of the descriptor's kind word (the arrival flag — the
    /// first word of the buffer, written last on the AU path).
    pub fn desc_kind_word(&self, i: usize) -> usize {
        self.desc(i)
    }

    /// Offset of large-transfer done slot `s`.
    pub fn done_slot(&self, s: usize) -> usize {
        assert!(s < DONE_SLOTS, "done slot out of range");
        self.npkt * PKT_BUF + s * 4
    }

    /// Total data-region size in bytes (page-aligned).
    pub fn total(&self) -> usize {
        (self.npkt * PKT_BUF + DONE_SLOTS * 4).div_ceil(PAGE_SIZE) * PAGE_SIZE
    }
}

/// Byte offsets within the control region (exported by the sender,
/// written by the receiver via automatic update).
#[derive(Debug, Clone, Copy)]
pub struct CtrlLayout;

impl CtrlLayout {
    /// Offset of credit ring slot `c % CREDIT_SLOTS`.
    pub fn credit_slot(c: u64) -> usize {
        (c % CREDIT_SLOTS as u64) as usize * 4
    }

    /// Encoded credit word for credit number `c` freeing buffer `idx`.
    pub fn credit_word(c: u64, idx: usize) -> u32 {
        (((c as u32) & 0x00FF_FFFF) << 8) | (idx as u32 + 1)
    }

    /// Decode a credit word expected to be credit number `c`; returns
    /// the freed buffer index when it has arrived.
    pub fn decode_credit(v: u32, c: u64) -> Option<usize> {
        if v & 0xFF == 0 {
            return None;
        }
        if (v >> 8) != ((c as u32) & 0x00FF_FFFF) {
            return None;
        }
        Some((v & 0xFF) as usize - 1)
    }

    /// Offset of scout reply slot for `msgid` (second page of the
    /// region).
    pub fn reply_slot(msgid: u32) -> usize {
        PAGE_SIZE + (msgid as usize % REPLY_SLOTS) * Reply::BYTES
    }

    /// Total control-region size in bytes.
    pub fn total() -> usize {
        2 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_round_trips() {
        let d = Desc {
            size: 1234,
            mtype: -7,
            seq: 42,
            kind: Some(MsgKind::Scout),
            msgid: 9,
            chunk_off: 2048,
        };
        assert_eq!(Desc::decode(&d.encode()), d);
    }

    #[test]
    fn free_buffer_decodes_as_no_kind() {
        let d = Desc::decode(&[0u8; DESC_BYTES]);
        assert_eq!(d.kind, None);
    }

    #[test]
    fn reply_round_trips_and_gates_on_ack() {
        let r = Reply {
            name: 0xDEAD_BEEF_CAFE,
            mode: ReplyMode::ZeroCopy,
            ack: 5,
        };
        let b = r.encode();
        assert_eq!(Reply::decode(&b, 5), Some(r));
        assert_eq!(Reply::decode(&b, 6), None);
    }

    #[test]
    fn credit_word_round_trips() {
        for c in [0u64, 1, 63, 64, 1000] {
            for idx in [0usize, 1, 15] {
                let w = CtrlLayout::credit_word(c, idx);
                assert_eq!(CtrlLayout::decode_credit(w, c), Some(idx));
                assert_eq!(CtrlLayout::decode_credit(w, c + 1), None);
            }
        }
        assert_eq!(CtrlLayout::decode_credit(0, 0), None);
    }

    #[test]
    fn data_layout_offsets_do_not_overlap() {
        let l = DataLayout { npkt: 16 };
        assert_eq!(l.pkt(0), 0);
        assert_eq!(l.desc(0), 0);
        assert_eq!(l.payload(0), DESC_BYTES);
        assert_eq!(l.pkt(1), PKT_BUF);
        assert_eq!(l.desc_kind_word(1), PKT_BUF);
        assert!(l.done_slot(0) >= l.payload(15) + PKT_PAYLOAD);
        assert_eq!(l.total() % PAGE_SIZE, 0);
        assert!(l.total() >= l.done_slot(DONE_SLOTS - 1) + 4);
    }

    #[test]
    fn ctrl_layout_reply_slots_on_second_page() {
        assert_eq!(CtrlLayout::credit_slot(65), 4);
        assert!(CtrlLayout::reply_slot(0) >= PAGE_SIZE);
        assert_eq!(CtrlLayout::total(), 2 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pkt_index_bounds_checked() {
        DataLayout { npkt: 4 }.pkt(4);
    }
}
