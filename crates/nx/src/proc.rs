//! The per-rank NX library instance: sends, receives, probes, progress.
//!
//! Protocol summary (paper §4.1):
//!
//! * **Small messages — one-copy protocol.** The sender writes the
//!   message and a small descriptor into a packet buffer on the
//!   receiver. The receiver examines descriptors to find arrivals, may
//!   consume messages out of order (by type), copies the payload into
//!   user memory, and returns a *send credit* naming the freed buffer
//!   through the control region. When the sender finds every buffer
//!   full, it interrupts the receiver via the urgent page to request
//!   credits (paper §6 "Interrupts").
//! * **Large messages — zero-copy protocol.** The sender sends a scout
//!   descriptor, then optimistically copies the data into a local safe
//!   buffer. The receive call replies with the export name of the user
//!   receive buffer; the sender (immediately, or from a later library
//!   call if it finished its safe copy first) transfers the data
//!   directly into the receiver's user buffer and raises a done flag.
//!   Alignment-incompatible transfers fall back to streaming chunks
//!   through the packet buffers.

use shrimp_core::{BufferName, ExportOpts, ExportPerms, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::VAddr;
use shrimp_sim::Ctx;

use crate::config::{NxConfig, SendVariant};
use crate::wire::{
    CtrlLayout, DataLayout, Desc, MsgKind, Reply, ReplyMode, PKT_PAYLOAD, REPLY_SLOTS,
};
use crate::world::{InConn, OutConn};

/// NX message types at or above this value are reserved for the library
/// (collectives); `crecv(-1, ...)` does not match them.
pub const INTERNAL_TYPE_BASE: i32 = 1 << 29;

/// Handle for an asynchronous operation, returned by
/// [`NxProc::isend`]/[`NxProc::irecv`] and consumed by
/// [`NxProc::msgwait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgHandle(u32);

/// Information about the last completed receive (the NX `info...`
/// calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NxInfo {
    /// Byte count of the message.
    pub count: usize,
    /// Message type.
    pub mtype: i32,
    /// Sending rank.
    pub src: usize,
}

/// Per-process protocol counters (diagnostics; not part of the NX API).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NxStats {
    /// Messages sent through the one-copy small path.
    pub small_sent: u64,
    /// Messages sent through the scout/rendezvous path.
    pub large_sent: u64,
    /// Large sends completed zero-copy (user-to-user).
    pub zero_copy_sent: u64,
    /// Large sends completed through the chunked fallback.
    pub chunked_sent: u64,
    /// Messages received.
    pub received: u64,
    /// Times the sender found every packet buffer full and had to wait
    /// for a credit (issuing the urgent interrupt).
    pub credit_stalls: u64,
}

/// NX library errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NxError {
    /// A message longer than the posted receive buffer arrived; the
    /// message is consumed and dropped (real NX aborts the job).
    Truncated {
        /// Actual message length.
        len: usize,
        /// Posted buffer capacity.
        max: usize,
    },
    /// Destination rank out of range.
    InvalidRank(usize),
    /// An underlying VMMC operation failed.
    Vmmc(VmmcError),
    /// A collective operation failed in the `shrimp-coll` backend.
    Collective(shrimp_coll::CollError),
    /// A bounded setup wait (the join rendezvous) gave up.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// Total virtual time spent waiting.
        waited: shrimp_sim::SimDur,
    },
}

impl std::fmt::Display for NxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NxError::Truncated { len, max } => {
                write!(
                    f,
                    "message of {len} bytes exceeds posted buffer of {max} bytes"
                )
            }
            NxError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            NxError::Vmmc(e) => write!(f, "vmmc: {e}"),
            NxError::Collective(e) => write!(f, "collective: {e}"),
            NxError::Timeout { op, waited } => write!(f, "{op} timed out after {waited}"),
        }
    }
}

impl std::error::Error for NxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NxError::Vmmc(e) => Some(e),
            NxError::Collective(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmmcError> for NxError {
    fn from(e: VmmcError) -> Self {
        NxError::Vmmc(e)
    }
}

impl From<shrimp_coll::CollError> for NxError {
    fn from(e: shrimp_coll::CollError) -> Self {
        match e {
            shrimp_coll::CollError::Vmmc(v) => NxError::Vmmc(v),
            shrimp_coll::CollError::Timeout { op, waited } => NxError::Timeout { op, waited },
            other => NxError::Collective(other),
        }
    }
}

/// A large send whose receiver reply has not yet arrived; the safe copy
/// is complete, so the application has resumed.
pub(crate) struct PendingLarge {
    pub msgid: u32,
    pub source: VAddr,
    pub len: usize,
    pub mtype: i32,
    pub handle: Option<MsgHandle>,
    /// The pool buffer holding the safe copy, released on completion
    /// (`None` when the source is the pledged user buffer).
    pub bounce: Option<VAddr>,
}

/// A handler invoked when a posted `hrecv` completes (NX's
/// handler-based receive).
pub type RecvHandler = Box<dyn FnMut(&Ctx, NxInfo) + Send>;

struct Posted {
    handle: MsgHandle,
    typesel: i32,
    buf: VAddr,
    maxlen: usize,
    handler: Option<RecvHandler>,
}

fn type_matches(mtype: i32, typesel: i32) -> bool {
    if typesel < 0 {
        mtype < INTERNAL_TYPE_BASE
    } else {
        mtype == typesel
    }
}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// One rank's NX library state. Obtained from
/// [`NxWorld::join`](crate::NxWorld::join); all methods run in that
/// rank's simulation process.
pub struct NxProc {
    vmmc: shrimp_core::Vmmc,
    rank: usize,
    nranks: usize,
    config: NxConfig,
    layout: DataLayout,
    out: Vec<Option<OutConn>>,
    inc: Vec<Option<InConn>>,
    info: NxInfo,
    local_q: std::collections::VecDeque<(i32, Vec<u8>)>,
    posted: Vec<Posted>,
    completed: std::collections::HashMap<MsgHandle, NxInfo>,
    next_handle: u32,
    pub(crate) coll: shrimp_coll::CollComm,
    pub(crate) barrier_epoch: u32,
    progress_guard: bool,
    stats: NxStats,
}

impl std::fmt::Debug for NxProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NxProc")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .finish()
    }
}

impl NxProc {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        vmmc: shrimp_core::Vmmc,
        rank: usize,
        nranks: usize,
        config: NxConfig,
        layout: DataLayout,
        out: Vec<Option<OutConn>>,
        inc: Vec<Option<InConn>>,
        coll: shrimp_coll::CollComm,
    ) -> NxProc {
        NxProc {
            vmmc,
            rank,
            nranks,
            config,
            layout,
            out,
            inc,
            info: NxInfo::default(),
            local_q: std::collections::VecDeque::new(),
            posted: Vec::new(),
            completed: std::collections::HashMap::new(),
            next_handle: 1,
            coll,
            barrier_epoch: 0,
            progress_guard: false,
            stats: NxStats::default(),
        }
    }

    /// This process's rank (NX `mynode()`).
    pub fn mynode(&self) -> usize {
        self.rank
    }

    /// Number of ranks (NX `numnodes()`).
    pub fn numnodes(&self) -> usize {
        self.nranks
    }

    /// The VMMC endpoint (for allocating user buffers etc.).
    pub fn vmmc(&self) -> &shrimp_core::Vmmc {
        &self.vmmc
    }

    /// The underlying collective communicator (shares this rank's
    /// address space): use it directly for the full algorithm palette —
    /// the NX `g*` calls are thin wrappers over it.
    pub fn coll(&mut self) -> &mut shrimp_coll::CollComm {
        &mut self.coll
    }

    /// Protocol counters for this process.
    pub fn stats(&self) -> NxStats {
        self.stats
    }

    /// Byte count of the last received message (NX `infocount()`).
    pub fn infocount(&self) -> usize {
        self.info.count
    }

    /// Type of the last received message (NX `infotype()`).
    pub fn infotype(&self) -> i32 {
        self.info.mtype
    }

    /// Source rank of the last received message (NX `infonode()`).
    pub fn infonode(&self) -> usize {
        self.info.src
    }

    // ==================================================================
    // Sending
    // ==================================================================

    /// Blocking typed send (NX `csend`). Returns when the user buffer is
    /// safe to reuse.
    ///
    /// # Errors
    ///
    /// [`NxError::InvalidRank`]; [`NxError::Vmmc`] on memory faults.
    pub fn csend(
        &mut self,
        ctx: &Ctx,
        mtype: i32,
        buf: VAddr,
        len: usize,
        dst: usize,
    ) -> Result<(), NxError> {
        let obs = self.vmmc.obs();
        let obs_t0 = ctx.now();
        let r = self.csend_inner(ctx, mtype, buf, len, dst);
        if let (Some(rec), Ok(())) = (&obs, &r) {
            rec.push(shrimp_obs::SpanRec {
                msg: shrimp_obs::MsgId::NONE,
                node: self.vmmc.node_index(),
                layer: shrimp_obs::Layer::User,
                name: "csend",
                start: obs_t0,
                end: ctx.now(),
                bytes: len,
            });
        }
        r
    }

    fn csend_inner(
        &mut self,
        ctx: &Ctx,
        mtype: i32,
        buf: VAddr,
        len: usize,
        dst: usize,
    ) -> Result<(), NxError> {
        self.vmmc.proc_().charge_call(ctx);
        self.progress(ctx)?;
        if dst >= self.nranks {
            return Err(NxError::InvalidRank(dst));
        }
        if dst == self.rank {
            let data = self
                .vmmc
                .proc_()
                .read(ctx, buf, len)
                .map_err(VmmcError::from)?;
            self.local_q.push_back((mtype, data));
            return Ok(());
        }
        if len > self.config.large_threshold.min(self.config.packet_payload) {
            self.send_large(ctx, dst, mtype, buf, len, None)?;
        } else {
            self.send_small(ctx, dst, mtype, Some(buf), len, MsgKind::Small, 0, 0)?;
        }
        Ok(())
    }

    /// Asynchronous send (NX `isend`); complete with
    /// [`NxProc::msgwait`]. The user buffer must stay untouched until
    /// the wait returns.
    ///
    /// # Errors
    ///
    /// As for [`NxProc::csend`].
    pub fn isend(
        &mut self,
        ctx: &Ctx,
        mtype: i32,
        buf: VAddr,
        len: usize,
        dst: usize,
    ) -> Result<MsgHandle, NxError> {
        self.vmmc.proc_().charge_call(ctx);
        self.progress(ctx)?;
        let handle = self.fresh_handle();
        if dst >= self.nranks {
            return Err(NxError::InvalidRank(dst));
        }
        if dst == self.rank || len <= self.config.large_threshold.min(self.config.packet_payload) {
            // Small (or local) sends complete inline.
            if dst == self.rank {
                let data = self
                    .vmmc
                    .proc_()
                    .read(ctx, buf, len)
                    .map_err(VmmcError::from)?;
                self.local_q.push_back((mtype, data));
            } else {
                self.send_small(ctx, dst, mtype, Some(buf), len, MsgKind::Small, 0, 0)?;
            }
            self.completed.insert(
                handle,
                NxInfo {
                    count: len,
                    mtype,
                    src: self.rank,
                },
            );
        } else {
            // Large: scout now, data when the receiver replies. No
            // optimistic copy — the user buffer is pledged until msgwait.
            self.send_large(ctx, dst, mtype, buf, len, Some(handle))?;
        }
        Ok(handle)
    }

    fn fresh_handle(&mut self) -> MsgHandle {
        let h = MsgHandle(self.next_handle);
        self.next_handle += 1;
        h
    }

    #[allow(clippy::too_many_arguments)] // one argument per descriptor field
    fn send_small(
        &mut self,
        ctx: &Ctx,
        dst: usize,
        mtype: i32,
        payload: Option<VAddr>,
        len: usize,
        kind: MsgKind,
        msgid: u32,
        chunk_off: u32,
    ) -> Result<(), NxError> {
        debug_assert!(len <= self.config.packet_payload);
        if kind == MsgKind::Small {
            self.stats.small_sent += 1;
        }
        let idx = self.alloc_buffer(ctx, dst)?;
        let p = self.vmmc.proc_().clone();
        let conn = self.out[dst].as_mut().expect("connection exists");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let desc = Desc {
            size: len as u32,
            mtype,
            seq,
            kind: Some(kind),
            msgid,
            chunk_off,
        };
        p.charge_descriptor(ctx);

        let variant = if kind == MsgKind::Small {
            self.config.send_variant
        } else {
            // Control traffic (scouts, chunks' descriptors) always rides
            // the configured small path; chunk payloads follow it too.
            self.config.send_variant
        };
        match variant {
            SendVariant::AutomaticUpdate => {
                // Marshal the descriptor body and data as one ascending
                // run, then commit with a single store of the kind word
                // at the buffer start: in-order delivery guarantees the
                // receiver never observes the flag before the data.
                let enc = desc.encode();
                let mut bytes = enc[4..].to_vec();
                if let Some(src) = payload {
                    bytes.extend(p.peek(src, len).map_err(VmmcError::from)?);
                }
                p.write(ctx, conn.au_send.add(self.layout.pkt(idx) + 4), &bytes)
                    .map_err(VmmcError::from)?;
                p.write(ctx, conn.au_send.add(self.layout.pkt(idx)), &enc[..4])
                    .map_err(VmmcError::from)?;
            }
            SendVariant::DuMarshal => {
                self.du_marshal_send(ctx, dst, idx, desc, payload, len)?;
            }
            SendVariant::DuFromUser => {
                let aligned = payload.is_none_or(|v| v.is_word_aligned());
                let padded_ok = payload.is_none_or(|v| p.peek(v, pad4(len)).is_ok());
                if !aligned || !padded_ok {
                    // §4 "Reducing Copying": unaligned buffers take the
                    // copying path.
                    self.du_marshal_send(ctx, dst, idx, desc, payload, len)?;
                } else {
                    let conn = self.out[dst].as_mut().expect("connection exists");
                    if let Some(src) = payload {
                        if len > 0 {
                            self.vmmc.send(
                                ctx,
                                src,
                                &conn.data,
                                self.layout.payload(idx),
                                pad4(len),
                            )?;
                        }
                    }
                    let conn = self.out[dst].as_mut().expect("connection exists");
                    p.poke(conn.staging, &desc.encode())
                        .map_err(VmmcError::from)?;
                    p.charge_bookkeeping(ctx);
                    self.vmmc.send(
                        ctx,
                        self.out[dst].as_ref().expect("connection exists").staging,
                        &self.out[dst].as_ref().expect("connection exists").data,
                        self.layout.desc(idx),
                        crate::wire::DESC_BYTES,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Marshal `[desc | payload]` into staging and send with one
    /// deliberate update.
    fn du_marshal_send(
        &mut self,
        ctx: &Ctx,
        dst: usize,
        idx: usize,
        desc: Desc,
        payload: Option<VAddr>,
        len: usize,
    ) -> Result<(), NxError> {
        let p = self.vmmc.proc_().clone();
        let staging = self.out[dst].as_ref().expect("connection exists").staging;
        p.poke(staging, &desc.encode()).map_err(VmmcError::from)?;
        p.charge_bookkeeping(ctx);
        if let Some(src) = payload {
            if len > 0 {
                p.copy(ctx, src, staging.add(crate::wire::DESC_BYTES), len)
                    .map_err(VmmcError::from)?;
            }
        }
        let conn = self.out[dst].as_ref().expect("connection exists");
        self.vmmc.send(
            ctx,
            staging,
            &conn.data,
            self.layout.pkt(idx),
            pad4(crate::wire::DESC_BYTES + len),
        )?;
        Ok(())
    }

    /// Take a free packet buffer, waiting on the credit ring when all
    /// are in use (and interrupting the receiver to ask for credits).
    fn alloc_buffer(&mut self, ctx: &Ctx, dst: usize) -> Result<usize, NxError> {
        let p = self.vmmc.proc_().clone();
        p.charge_bookkeeping(ctx);
        {
            let conn = self.out[dst].as_mut().expect("connection exists");
            if let Some(idx) = conn.free.pop() {
                return Ok(idx);
            }
        }
        let (slot_va, c, urgent_va) = {
            let conn = self.out[dst].as_ref().expect("connection exists");
            (
                conn.ctrl_local
                    .add(CtrlLayout::credit_slot(conn.credits_taken)),
                conn.credits_taken,
                conn.urgent,
            )
        };
        self.stats.credit_stalls += 1;
        // Brief poll, then interrupt the receiver (paper §6: the NX
        // library generates an interrupt to request more buffers).
        let quick = p.poll_u32(ctx, slot_va, 64, |v| {
            CtrlLayout::decode_credit(v, c).is_some()
        });
        let word = match quick.map_err(VmmcError::from)? {
            Some(v) => v,
            None => {
                p.write_u32(ctx, urgent_va, 1).map_err(VmmcError::from)?;
                self.vmmc.wait_u32(ctx, slot_va, 1024, |v| {
                    CtrlLayout::decode_credit(v, c).is_some()
                })?
            }
        };
        let idx = CtrlLayout::decode_credit(word, c).expect("predicate checked");
        let conn = self.out[dst].as_mut().expect("connection exists");
        conn.credits_taken += 1;
        Ok(idx)
    }

    fn send_large(
        &mut self,
        ctx: &Ctx,
        dst: usize,
        mtype: i32,
        buf: VAddr,
        len: usize,
        handle: Option<MsgHandle>,
    ) -> Result<(), NxError> {
        let msgid = {
            let conn = self.out[dst].as_mut().expect("connection exists");
            assert!(
                conn.pending_large.len() < REPLY_SLOTS,
                "too many outstanding large sends on one connection"
            );
            let id = conn.next_msgid;
            conn.next_msgid += 1;
            id
        };
        self.stats.large_sent += 1;
        // Scout: a descriptor-only message through the one-copy path.
        self.send_small(ctx, dst, mtype, None, 0, MsgKind::Scout, msgid, len as u32)?;
        // The scout's desc.size field must carry the total length; we
        // passed it via chunk_off above to keep send_small's payload
        // accounting simple — recorded on the receive side.

        let p = self.vmmc.proc_().clone();
        let reply_va = {
            let conn = self.out[dst].as_ref().expect("connection exists");
            conn.ctrl_local.add(CtrlLayout::reply_slot(msgid))
        };

        let optimistic = handle.is_none() && self.config.optimistic_copy;
        if optimistic {
            // Copy to the safe buffer, stopping the moment the receiver
            // replies (footnote 1: the copy is not on the critical path).
            let bounce = self.acquire_bounce(dst, len);
            let mut copied = 0usize;
            while copied < len {
                let slot = p.peek(reply_va, Reply::BYTES).map_err(VmmcError::from)?;
                if let Some(reply) = Reply::decode(&slot, msgid) {
                    self.complete_large(ctx, dst, msgid, buf, len, mtype, reply, handle)?;
                    self.release_bounce(dst, bounce);
                    return Ok(());
                }
                // Small copy quanta so the reply is noticed promptly
                // ("the sender immediately stops copying").
                let chunk = (len - copied).min(512);
                p.copy(ctx, buf.add(copied), bounce.add(copied), chunk)
                    .map_err(VmmcError::from)?;
                copied += chunk;
            }
            // Fully copied: the application may continue; the transfer
            // itself happens when the reply arrives (progress()).
            let conn = self.out[dst].as_mut().expect("connection exists");
            conn.pending_large.push(PendingLarge {
                msgid,
                source: bounce,
                len,
                mtype,
                handle,
                bounce: Some(bounce),
            });
            Ok(())
        } else if handle.is_some() {
            // isend: the user buffer is pledged; transfer on reply.
            let conn = self.out[dst].as_mut().expect("connection exists");
            conn.pending_large.push(PendingLarge {
                msgid,
                source: buf,
                len,
                mtype,
                handle,
                bounce: None,
            });
            Ok(())
        } else {
            // Ablation: no optimistic copy — block for the reply.
            let word_va = reply_va.add(12);
            self.vmmc.wait_u32(ctx, word_va, 1024, |v| v == msgid)?;
            let slot = p.peek(reply_va, Reply::BYTES).map_err(VmmcError::from)?;
            let reply = Reply::decode(&slot, msgid).expect("ack word matched");
            self.complete_large(ctx, dst, msgid, buf, len, mtype, reply, handle)?;
            Ok(())
        }
    }

    /// Take a free safe-copy buffer of at least `len` bytes from the
    /// pool (allocating one if none is free); the caller must release it
    /// with [`Self::release_bounce`] once the transfer completes.
    fn acquire_bounce(&mut self, dst: usize, len: usize) -> VAddr {
        let p = self.vmmc.proc_().clone();
        let conn = self.out[dst].as_mut().expect("connection exists");
        if let Some(b) = conn
            .bounce_pool
            .iter_mut()
            .find(|b| !b.in_use && b.cap >= len)
        {
            b.in_use = true;
            return b.va;
        }
        let cap = len.next_power_of_two().max(8192);
        let va = p.alloc(cap, shrimp_node::CacheMode::WriteBack);
        conn.bounce_pool.push(crate::world::BounceBuf {
            va,
            cap,
            in_use: true,
        });
        va
    }

    fn release_bounce(&mut self, dst: usize, va: VAddr) {
        let conn = self.out[dst].as_mut().expect("connection exists");
        if let Some(b) = conn.bounce_pool.iter_mut().find(|b| b.va == va) {
            b.in_use = false;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_large(
        &mut self,
        ctx: &Ctx,
        dst: usize,
        msgid: u32,
        source: VAddr,
        len: usize,
        mtype: i32,
        reply: Reply,
        handle: Option<MsgHandle>,
    ) -> Result<(), NxError> {
        let p = self.vmmc.proc_().clone();
        // Pool buffer used only to word-align an unaligned source;
        // released below (the blocking send makes it reusable on return).
        let mut align_bounce = None;
        match reply.mode {
            ReplyMode::ZeroCopy => {
                self.stats.zero_copy_sent += 1;
                let src = if source.is_word_aligned() {
                    source
                } else {
                    let b = self.acquire_bounce(dst, len);
                    p.copy(ctx, source, b, len).map_err(VmmcError::from)?;
                    align_bounce = Some(b);
                    b
                };
                let peer_node = {
                    let conn = self.out[dst].as_ref().expect("connection exists");
                    conn.data.node()
                };
                let cached = self.out[dst]
                    .as_ref()
                    .expect("connection exists")
                    .zc_imports
                    .get(&reply.name)
                    .cloned();
                let target = match cached {
                    Some(h) => h,
                    None => {
                        // "If it hasn't done so already, the sender
                        // imports that buffer."
                        let h = self.vmmc.import(ctx, peer_node, BufferName(reply.name))?;
                        self.out[dst]
                            .as_mut()
                            .expect("connection exists")
                            .zc_imports
                            .insert(reply.name, h.clone());
                        h
                    }
                };
                self.vmmc.send(ctx, src, &target, 0, len)?;
                // Done flag: one word through the data region.
                let staging_done = {
                    let conn = self.out[dst].as_ref().expect("connection exists");
                    conn.staging.add(crate::wire::PKT_BUF)
                };
                p.write_u32(ctx, staging_done, msgid)
                    .map_err(VmmcError::from)?;
                let conn = self.out[dst].as_ref().expect("connection exists");
                self.vmmc.send(
                    ctx,
                    staging_done,
                    &conn.data,
                    self.layout
                        .done_slot(msgid as usize % crate::wire::DONE_SLOTS),
                    4,
                )?;
            }
            ReplyMode::Chunked => {
                self.stats.chunked_sent += 1;
                let mut off = 0usize;
                while off < len {
                    let chunk = (len - off).min(PKT_PAYLOAD);
                    self.send_small(
                        ctx,
                        dst,
                        mtype,
                        Some(source.add(off)),
                        chunk,
                        MsgKind::Chunk,
                        msgid,
                        off as u32,
                    )?;
                    off += chunk;
                }
            }
        }
        let pending_bounce = {
            let conn = self.out[dst].as_mut().expect("connection exists");
            let b = conn
                .pending_large
                .iter()
                .find(|pl| pl.msgid == msgid)
                .and_then(|pl| pl.bounce);
            conn.pending_large.retain(|pl| pl.msgid != msgid);
            b
        };
        if let Some(b) = pending_bounce {
            self.release_bounce(dst, b);
        }
        if let Some(b) = align_bounce {
            self.release_bounce(dst, b);
        }
        if let Some(h) = handle {
            self.completed.insert(
                h,
                NxInfo {
                    count: len,
                    mtype,
                    src: self.rank,
                },
            );
        }
        Ok(())
    }

    // ==================================================================
    // Receiving
    // ==================================================================

    /// Blocking typed receive (NX `crecv`): any source, `typesel == -1`
    /// matches any application type. Returns the message length.
    ///
    /// # Errors
    ///
    /// [`NxError::Truncated`] if the arriving message exceeds `maxlen`
    /// (the message is consumed and dropped).
    pub fn crecv(
        &mut self,
        ctx: &Ctx,
        typesel: i32,
        buf: VAddr,
        maxlen: usize,
    ) -> Result<usize, NxError> {
        self.crecvx(ctx, typesel, buf, maxlen, None)
    }

    /// `crecv` with a source-rank selector (NX `crecvx`).
    ///
    /// # Errors
    ///
    /// As for [`NxProc::crecv`].
    pub fn crecvx(
        &mut self,
        ctx: &Ctx,
        typesel: i32,
        buf: VAddr,
        maxlen: usize,
        srcsel: Option<usize>,
    ) -> Result<usize, NxError> {
        let obs = self.vmmc.obs();
        let obs_t0 = ctx.now();
        let r = self.crecvx_inner(ctx, typesel, buf, maxlen, srcsel);
        if let (Some(rec), Ok(n)) = (&obs, &r) {
            rec.push(shrimp_obs::SpanRec {
                msg: shrimp_obs::MsgId::NONE,
                node: self.vmmc.node_index(),
                layer: shrimp_obs::Layer::User,
                name: "crecv",
                start: obs_t0,
                end: ctx.now(),
                bytes: *n,
            });
        }
        r
    }

    fn crecvx_inner(
        &mut self,
        ctx: &Ctx,
        typesel: i32,
        buf: VAddr,
        maxlen: usize,
        srcsel: Option<usize>,
    ) -> Result<usize, NxError> {
        self.vmmc.proc_().charge_call(ctx);
        loop {
            self.progress(ctx)?;
            if srcsel.is_none_or(|s| s == self.rank) {
                if let Some(pos) = self
                    .local_q
                    .iter()
                    .position(|(t, _)| type_matches(*t, typesel))
                {
                    let (mtype, data) = self.local_q.remove(pos).expect("position valid");
                    if data.len() > maxlen {
                        return Err(NxError::Truncated {
                            len: data.len(),
                            max: maxlen,
                        });
                    }
                    self.vmmc
                        .proc_()
                        .write(ctx, buf, &data)
                        .map_err(VmmcError::from)?;
                    self.info = NxInfo {
                        count: data.len(),
                        mtype,
                        src: self.rank,
                    };
                    return Ok(data.len());
                }
            }
            if let Some((q, idx, desc)) = self.try_find(ctx, typesel, srcsel) {
                match desc.kind {
                    Some(MsgKind::Small) => {
                        return self.consume_small(ctx, q, idx, desc, buf, maxlen)
                    }
                    Some(MsgKind::Scout) => return self.recv_large(ctx, q, idx, desc, buf, maxlen),
                    _ => unreachable!("try_find only yields Small/Scout"),
                }
            }
            self.vmmc
                .wait_activity(ctx, || self.arrival_visible(typesel, srcsel));
        }
    }

    /// Post an asynchronous receive (NX `irecv`); complete with
    /// [`NxProc::msgwait`].
    pub fn irecv(&mut self, ctx: &Ctx, typesel: i32, buf: VAddr, maxlen: usize) -> MsgHandle {
        self.vmmc.proc_().charge_call(ctx);
        let handle = self.fresh_handle();
        self.posted.push(Posted {
            handle,
            typesel,
            buf,
            maxlen,
            handler: None,
        });
        handle
    }

    /// Post a handler receive (NX `hrecv`): when a matching message
    /// arrives, it is delivered into `buf` and `handler` runs in this
    /// process's context — at the next library call, matching the
    /// user-level signal semantics of the original. The returned handle
    /// can still be `msgwait`ed.
    pub fn hrecv(
        &mut self,
        ctx: &Ctx,
        typesel: i32,
        buf: VAddr,
        maxlen: usize,
        handler: RecvHandler,
    ) -> MsgHandle {
        self.vmmc.proc_().charge_call(ctx);
        let handle = self.fresh_handle();
        self.posted.push(Posted {
            handle,
            typesel,
            buf,
            maxlen,
            handler: Some(handler),
        });
        handle
    }

    /// Wait for an asynchronous send or receive to complete (NX
    /// `msgwait`). Updates the `info...` state for receives.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from the completing operation.
    pub fn msgwait(&mut self, ctx: &Ctx, handle: MsgHandle) -> Result<usize, NxError> {
        self.vmmc.proc_().charge_call(ctx);
        loop {
            if let Some(info) = self.completed.remove(&handle) {
                if self.posted.iter().all(|p| p.handle != handle) {
                    // A send handle: info.src is us; don't clobber
                    // receive info.
                }
                return Ok(info.count);
            }
            self.progress(ctx)?;
            // Try to complete posted receives in post order.
            if self.try_complete_posted(ctx)? {
                continue;
            }
            if self.completed.contains_key(&handle) {
                continue;
            }
            self.vmmc
                .wait_activity(ctx, || self.arrival_visible(-1, None));
        }
    }

    /// Non-blocking completion test (NX `msgdone`): true once the
    /// operation behind `handle` has completed; the handle is consumed
    /// on the first `true` (as in NX — pair each handle with exactly one
    /// successful `msgdone` or `msgwait`).
    ///
    /// # Errors
    ///
    /// Propagates progress-engine errors.
    pub fn msgdone(&mut self, ctx: &Ctx, handle: MsgHandle) -> Result<bool, NxError> {
        self.vmmc.proc_().charge_call(ctx);
        self.progress(ctx)?;
        self.try_complete_posted(ctx)?;
        if self.completed.remove(&handle).is_some() {
            return Ok(true);
        }
        Ok(false)
    }

    /// Non-blocking probe (NX `iprobe`): information about the first
    /// matching arrived message, without consuming it.
    pub fn iprobe(&mut self, ctx: &Ctx, typesel: i32) -> Result<Option<NxInfo>, NxError> {
        self.vmmc.proc_().charge_call(ctx);
        self.progress(ctx)?;
        if let Some((t, data)) = self.local_q.iter().find(|(t, _)| type_matches(*t, typesel)) {
            return Ok(Some(NxInfo {
                count: data.len(),
                mtype: *t,
                src: self.rank,
            }));
        }
        Ok(self
            .try_find(ctx, typesel, None)
            .map(|(q, _idx, desc)| NxInfo {
                count: if desc.kind == Some(MsgKind::Scout) {
                    desc.chunk_off as usize
                } else {
                    desc.size as usize
                },
                mtype: desc.mtype,
                src: q,
            }))
    }

    /// Blocking probe (NX `cprobe`).
    ///
    /// # Errors
    ///
    /// Propagates progress-engine errors.
    pub fn cprobe(&mut self, ctx: &Ctx, typesel: i32) -> Result<NxInfo, NxError> {
        loop {
            if let Some(info) = self.iprobe(ctx, typesel)? {
                return Ok(info);
            }
            self.vmmc
                .wait_activity(ctx, || self.arrival_visible(typesel, None));
        }
    }

    /// Untimed arrival check used as the blocking recheck (closes the
    /// sleep/wake race). Also true when a pending large send's reply has
    /// arrived — progress() must run for the protocol to move.
    fn arrival_visible(&self, typesel: i32, srcsel: Option<usize>) -> bool {
        self.try_find_inner(typesel, srcsel).is_some() || self.pending_reply_visible()
    }

    /// Untimed check: has any outstanding large send's reply landed?
    fn pending_reply_visible(&self) -> bool {
        let p = self.vmmc.proc_();
        self.out.iter().flatten().any(|conn| {
            conn.pending_large.iter().any(|pl| {
                let slot = p
                    .peek(
                        conn.ctrl_local.add(CtrlLayout::reply_slot(pl.msgid)),
                        Reply::BYTES,
                    )
                    .expect("control region is mapped");
                Reply::decode(&slot, pl.msgid).is_some()
            })
        })
    }

    fn try_find_peek(&self, typesel: i32) -> Option<(usize, usize, Desc)> {
        self.try_find_inner(typesel, None)
    }

    /// Timed arrival scan.
    fn try_find(
        &self,
        ctx: &Ctx,
        typesel: i32,
        srcsel: Option<usize>,
    ) -> Option<(usize, usize, Desc)> {
        let p = self.vmmc.proc_();
        p.charge_bookkeeping(ctx);
        self.try_find_inner(typesel, srcsel)
    }

    fn try_find_inner(&self, typesel: i32, srcsel: Option<usize>) -> Option<(usize, usize, Desc)> {
        for q in 0..self.nranks {
            if srcsel.is_some_and(|s| s != q) {
                continue;
            }
            let Some(conn) = self.inc[q].as_ref() else {
                continue;
            };
            let mut best: Option<(usize, Desc)> = None;
            for idx in 0..self.layout.npkt {
                let bytes = self
                    .vmmc
                    .proc_()
                    .peek(
                        conn.data_local.add(self.layout.desc(idx)),
                        crate::wire::DESC_BYTES,
                    )
                    .expect("data region is mapped");
                let desc = Desc::decode(&bytes);
                match desc.kind {
                    Some(MsgKind::Small) | Some(MsgKind::Scout) => {}
                    _ => continue, // free or a chunk claimed by an active large receive
                }
                if !type_matches(desc.mtype, typesel) {
                    continue;
                }
                if best.as_ref().is_none_or(|(_, b)| desc.seq < b.seq) {
                    best = Some((idx, desc));
                }
            }
            if let Some((idx, desc)) = best {
                return Some((q, idx, desc));
            }
        }
        None
    }

    fn consume_small(
        &mut self,
        ctx: &Ctx,
        q: usize,
        idx: usize,
        desc: Desc,
        buf: VAddr,
        maxlen: usize,
    ) -> Result<usize, NxError> {
        let n = desc.size as usize;
        let p = self.vmmc.proc_().clone();
        let payload_va = {
            let conn = self.inc[q].as_ref().expect("connection exists");
            conn.data_local.add(self.layout.payload(idx))
        };
        // Parsing the descriptor and size checks.
        p.charge_descriptor(ctx);
        let truncated = n > maxlen;
        if !truncated && n > 0 && !self.config.in_place_receive {
            p.copy(ctx, payload_va, buf, n).map_err(VmmcError::from)?;
        }
        self.release_buffer(ctx, q, idx)?;
        if truncated {
            return Err(NxError::Truncated {
                len: n,
                max: maxlen,
            });
        }
        self.info = NxInfo {
            count: n,
            mtype: desc.mtype,
            src: q,
        };
        self.stats.received += 1;
        Ok(n)
    }

    fn recv_large(
        &mut self,
        ctx: &Ctx,
        q: usize,
        idx: usize,
        desc: Desc,
        buf: VAddr,
        maxlen: usize,
    ) -> Result<usize, NxError> {
        // The scout carries the total length in chunk_off (see
        // send_large).
        let total = desc.chunk_off as usize;
        let msgid = desc.msgid;
        let p = self.vmmc.proc_().clone();
        self.release_buffer(ctx, q, idx)?;

        let truncated = total > maxlen;
        let zero_copy = self.config.allow_zero_copy
            && !truncated
            && buf.is_word_aligned()
            && total.is_multiple_of(4)
            && total > 0;

        // Reply through the control region (automatic update).
        let reply = if zero_copy {
            let name = {
                let peer_node = NodeId(self.node_of_peer(q));
                let key = (buf.0, total);
                match self.inc[q]
                    .as_ref()
                    .expect("connection exists")
                    .user_exports
                    .get(&key)
                {
                    Some(n) => *n,
                    None => {
                        let n = self.vmmc.export(
                            ctx,
                            buf,
                            total,
                            ExportOpts {
                                perms: ExportPerms::Nodes(vec![peer_node]),
                                handler: None,
                                ..Default::default()
                            },
                        )?;
                        self.inc[q]
                            .as_mut()
                            .expect("connection exists")
                            .user_exports
                            .insert(key, n);
                        n
                    }
                }
            };
            Reply {
                name: name.0,
                mode: ReplyMode::ZeroCopy,
                ack: msgid,
            }
        } else {
            Reply {
                name: 0,
                mode: ReplyMode::Chunked,
                ack: msgid,
            }
        };
        {
            let conn = self.inc[q].as_ref().expect("connection exists");
            p.write(
                ctx,
                conn.ctrl_au.add(CtrlLayout::reply_slot(msgid)),
                &reply.encode(),
            )
            .map_err(VmmcError::from)?;
        }

        if zero_copy {
            // Wait for the sender's done flag, then clear it.
            let done_va = {
                let conn = self.inc[q].as_ref().expect("connection exists");
                conn.data_local.add(
                    self.layout
                        .done_slot(msgid as usize % crate::wire::DONE_SLOTS),
                )
            };
            self.vmmc.wait_u32(ctx, done_va, 1024, |v| v == msgid)?;
            p.write_u32(ctx, done_va, 0).map_err(VmmcError::from)?;
            self.info = NxInfo {
                count: total,
                mtype: desc.mtype,
                src: q,
            };
            self.stats.received += 1;
            Ok(total)
        } else {
            // Chunked: consume chunks of this msgid in order.
            let mut received = 0usize;
            while received < total {
                match self.find_chunk(q, msgid) {
                    Some((cidx, cdesc)) => {
                        let n = cdesc.size as usize;
                        if !truncated {
                            let payload_va = {
                                let conn = self.inc[q].as_ref().expect("connection exists");
                                conn.data_local.add(self.layout.payload(cidx))
                            };
                            p.copy(ctx, payload_va, buf.add(cdesc.chunk_off as usize), n)
                                .map_err(VmmcError::from)?;
                        }
                        self.release_buffer(ctx, q, cidx)?;
                        received += n;
                    }
                    None => {
                        self.vmmc
                            .wait_activity(ctx, || self.find_chunk(q, msgid).is_some());
                    }
                }
            }
            if truncated {
                return Err(NxError::Truncated {
                    len: total,
                    max: maxlen,
                });
            }
            self.info = NxInfo {
                count: total,
                mtype: desc.mtype,
                src: q,
            };
            self.stats.received += 1;
            Ok(total)
        }
    }

    fn find_chunk(&self, q: usize, msgid: u32) -> Option<(usize, Desc)> {
        let conn = self.inc[q].as_ref()?;
        let mut best: Option<(usize, Desc)> = None;
        for idx in 0..self.layout.npkt {
            let bytes = self
                .vmmc
                .proc_()
                .peek(
                    conn.data_local.add(self.layout.desc(idx)),
                    crate::wire::DESC_BYTES,
                )
                .expect("data region is mapped");
            let desc = Desc::decode(&bytes);
            if desc.kind == Some(MsgKind::Chunk)
                && desc.msgid == msgid
                && best.as_ref().is_none_or(|(_, b)| desc.seq < b.seq)
            {
                best = Some((idx, desc));
            }
        }
        best
    }

    fn node_of_peer(&self, q: usize) -> usize {
        // The peer's node index is recoverable from its data import.
        self.out[q]
            .as_ref()
            .expect("connection exists")
            .data
            .node()
            .0
    }

    fn release_buffer(&mut self, ctx: &Ctx, q: usize, idx: usize) -> Result<(), NxError> {
        let p = self.vmmc.proc_().clone();
        let (kind_va, flush_now) = {
            let conn = self.inc[q].as_mut().expect("connection exists");
            conn.pending_credits.push(idx);
            (
                conn.data_local.add(self.layout.desc_kind_word(idx)),
                conn.pending_credits.len() >= self.config.credit_batch
                    || conn
                        .flush_requested
                        .load(std::sync::atomic::Ordering::SeqCst),
            )
        };
        // Mark the buffer free locally (cheap write-back store) and
        // update the free-buffer accounting.
        p.charge_bookkeeping(ctx);
        p.write_u32(ctx, kind_va, 0).map_err(VmmcError::from)?;
        if flush_now {
            self.flush_credits(ctx, q)?;
        }
        Ok(())
    }

    fn flush_credits(&mut self, ctx: &Ctx, q: usize) -> Result<(), NxError> {
        let p = self.vmmc.proc_().clone();
        loop {
            let (idx, c, slot_va) = {
                let conn = self.inc[q].as_mut().expect("connection exists");
                if conn.pending_credits.is_empty() {
                    conn.flush_requested
                        .store(false, std::sync::atomic::Ordering::SeqCst);
                    return Ok(());
                }
                let idx = conn.pending_credits.remove(0);
                let c = conn.credits_returned;
                conn.credits_returned += 1;
                (idx, c, conn.ctrl_au.add(CtrlLayout::credit_slot(c)))
            };
            // Credit returned through automatic update.
            p.charge_bookkeeping(ctx);
            p.write_u32(ctx, slot_va, CtrlLayout::credit_word(c, idx))
                .map_err(VmmcError::from)?;
        }
    }

    /// Block until every outstanding large send has been transferred to
    /// its receiver. Call before the process stops making NX calls (the
    /// optimistic-copy protocol finishes transfers lazily from later
    /// library calls, so a process that exits without flushing can leave
    /// a receiver waiting forever).
    ///
    /// # Errors
    ///
    /// Propagates transfer errors.
    pub fn flush(&mut self, ctx: &Ctx) -> Result<(), NxError> {
        self.vmmc.proc_().charge_call(ctx);
        loop {
            self.progress(ctx)?;
            if self
                .out
                .iter()
                .flatten()
                .all(|c| c.pending_large.is_empty())
            {
                return Ok(());
            }
            self.vmmc
                .wait_activity(ctx, || self.pending_reply_visible());
        }
    }

    /// Complete the first posted receive whose message has arrived;
    /// returns whether one completed. Runs the `hrecv` handler, if any.
    /// Re-entrant calls (the completion path itself drives progress)
    /// return `false` immediately.
    fn try_complete_posted(&mut self, ctx: &Ctx) -> Result<bool, NxError> {
        if self.progress_guard {
            return Ok(false);
        }
        let Some(pos) = self.posted.iter().position(|p| {
            self.try_find_peek(p.typesel).is_some()
                || self
                    .local_q
                    .iter()
                    .any(|(t, _)| type_matches(*t, p.typesel))
        }) else {
            return Ok(false);
        };
        let mut p = self.posted.remove(pos);
        self.progress_guard = true;
        let r = self.crecvx(ctx, p.typesel, p.buf, p.maxlen, None);
        self.progress_guard = false;
        r?;
        let info = self.info;
        self.completed.insert(p.handle, info);
        if let Some(h) = p.handler.as_mut() {
            // Handler semantics follow the notification model (§2.3):
            // signal-delivery cost, then user code in this process.
            ctx.advance(self.vmmc.proc_().node().costs().signal_delivery);
            h(ctx, info);
        }
        Ok(true)
    }

    /// Drive background protocol work: deliver queued notifications
    /// (urgent credit requests), flush requested credits, and complete
    /// large sends whose replies have arrived. Called automatically at
    /// the top of every library call.
    ///
    /// # Errors
    ///
    /// Propagates VMMC errors from completing transfers.
    pub fn progress(&mut self, ctx: &Ctx) -> Result<(), NxError> {
        self.vmmc.poll_notifications(ctx);
        // Handler receives complete from any library call.
        if self.posted.iter().any(|p| p.handler.is_some()) {
            while self.try_complete_posted(ctx)? {}
        }
        // Credit flushes requested by urgent interrupts.
        for q in 0..self.nranks {
            let wants = self.inc[q]
                .as_ref()
                .is_some_and(|c| c.flush_requested.load(std::sync::atomic::Ordering::SeqCst));
            if wants {
                self.flush_credits(ctx, q)?;
            }
        }
        // Large sends whose replies arrived.
        for q in 0..self.nranks {
            loop {
                let found = {
                    let Some(conn) = self.out[q].as_ref() else {
                        break;
                    };
                    let p = self.vmmc.proc_();
                    conn.pending_large.iter().find_map(|pl| {
                        let slot = p
                            .peek(
                                conn.ctrl_local.add(CtrlLayout::reply_slot(pl.msgid)),
                                Reply::BYTES,
                            )
                            .expect("control region is mapped");
                        Reply::decode(&slot, pl.msgid)
                            .map(|r| (pl.msgid, pl.source, pl.len, pl.mtype, pl.handle, r))
                    })
                };
                match found {
                    Some((msgid, source, len, mtype, handle, reply)) => {
                        self.complete_large(ctx, q, msgid, source, len, mtype, reply, handle)?;
                    }
                    None => break,
                }
            }
        }
        Ok(())
    }
}
