//! NX library configuration: protocol variants and tunables.

/// How the library moves a small message's bytes to the receiver's
/// packet buffer (the variants of paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendVariant {
    /// Marshal header and data into the automatic-update send region;
    /// the marshaling copy is the send (paper: "sending the data along
    /// with the header directly via automatic update as it marshals").
    #[default]
    AutomaticUpdate,
    /// Copy data into the header marshaling area, then one deliberate
    /// update carrying header + data (Figure 4's "DU ... 2copy").
    DuMarshal,
    /// Two separate deliberate updates: the data straight from user
    /// memory, the header from the marshaling area (Figure 4's
    /// "DU ... 1copy"). Falls back to [`SendVariant::DuMarshal`] when
    /// the user buffer is not word-aligned (§4 "Reducing Copying").
    DuFromUser,
}

/// Tunables of the NX implementation. The defaults reproduce the
/// protocol described in the paper and its companion report; the knobs
/// exist for the ablation benches called out in DESIGN.md §5.
#[derive(Debug, Clone)]
pub struct NxConfig {
    /// Small-message transfer variant.
    pub send_variant: SendVariant,
    /// When true, `crecv` hands data to the application without the
    /// receive-buffer-to-user-memory copy (the benchmark's "-1copy"
    /// accounting: the message is consumed in place).
    pub in_place_receive: bool,
    /// Packet buffers per ordered process pair.
    pub packet_buffers: usize,
    /// Payload bytes per packet buffer (descriptor excluded).
    pub packet_payload: usize,
    /// Messages strictly larger than this use the zero-copy scout
    /// protocol. Set to 0 to force the zero-copy protocol for every
    /// message (Figure 4's "DU-0copy" curve); set to `usize::MAX` to
    /// disable it.
    pub large_threshold: usize,
    /// Whether the sender optimistically copies large-message data to a
    /// local safe buffer while waiting for the receiver's reply (paper
    /// footnote 1). Disabling is an ablation.
    pub optimistic_copy: bool,
    /// Whether receivers may export their user buffers for the zero-copy
    /// protocol. Disabling forces every large transfer through the
    /// chunked one-copy fallback — an ablation of the zero-copy design.
    pub allow_zero_copy: bool,
    /// Return credits to the sender after this many consumed buffers
    /// (1 = immediately; larger batches reduce control traffic).
    pub credit_batch: usize,
}

impl NxConfig {
    /// The configuration used by the paper's NX library in its default
    /// (fastest compatible) mode: automatic-update small messages with a
    /// receiver copy, zero-copy large messages.
    pub fn paper_default() -> NxConfig {
        NxConfig {
            send_variant: SendVariant::AutomaticUpdate,
            in_place_receive: false,
            packet_buffers: 16,
            packet_payload: crate::wire::PKT_PAYLOAD,
            large_threshold: crate::wire::PKT_PAYLOAD,
            optimistic_copy: true,
            allow_zero_copy: true,
            credit_batch: 1,
        }
    }
}

impl Default for NxConfig {
    fn default() -> Self {
        NxConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = NxConfig::default();
        assert_eq!(c.send_variant, SendVariant::AutomaticUpdate);
        assert!(!c.in_place_receive);
        assert!(c.optimistic_copy);
        assert_eq!(c.large_threshold, c.packet_payload);
        assert_eq!(c.credit_batch, 1);
    }
}
