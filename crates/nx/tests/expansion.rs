//! The 16-node expansion (paper §8 future work), software multicast
//! (paper §6 co-design), and handler receives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::CacheMode;
use shrimp_nx::{NxConfig, NxWorld};
use shrimp_sim::Kernel;

fn build_16() -> (Kernel, Arc<ShrimpSystem>, Arc<NxWorld>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::expanded_16());
    let world = NxWorld::new(
        Arc::clone(&system),
        NxConfig::paper_default(),
        (0..16).collect(),
    );
    (kernel, system, world)
}

#[test]
fn sixteen_node_all_to_all_and_reduction() {
    let (kernel, system, world) = build_16();
    let sums: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..16 {
        let world = Arc::clone(&world);
        let sums = Arc::clone(&sums);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let n = nx.numnodes();
            let buf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
            // Ring shift: everyone sends to the next rank, receives from
            // the previous, three rounds.
            for round in 0..3i32 {
                nx.vmmc().proc_().poke(buf, &[rank as u8; 777]).unwrap();
                nx.csend(ctx, round, buf, 777, (rank + 1) % n).unwrap();
                nx.crecv(ctx, round, buf, 2048).unwrap();
                assert_eq!(nx.infonode(), (rank + n - 1) % n);
                let got = nx.vmmc().proc_().peek(buf, 777).unwrap();
                assert_eq!(got, vec![((rank + n - 1) % n) as u8; 777]);
            }
            let s = nx.gisum(ctx, rank as i64).unwrap();
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
            sums.lock().push(s);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let sums = sums.lock();
    assert_eq!(sums.len(), 16);
    assert!(sums.iter().all(|&s| s == 120)); // 0 + 1 + ... + 15
}

#[test]
fn software_multicast_reaches_every_rank() {
    let (kernel, system, world) = build_16();
    let times: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..16 {
        let world = Arc::clone(&world);
        let times = Arc::clone(&times);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let buf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
            if rank == 5 {
                nx.vmmc().proc_().poke(buf, &[0xB5; 1500]).unwrap();
            }
            nx.gbcast(ctx, 5, buf, 1500).unwrap();
            assert_eq!(nx.vmmc().proc_().peek(buf, 1500).unwrap(), vec![0xB5; 1500]);
            times.lock().push((rank, ctx.now().as_ps()));
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    assert_eq!(times.lock().len(), 16);
}

#[test]
fn tree_multicast_beats_naive_at_the_root() {
    // The co-design argument of §6: the root's cost in a spanning tree
    // is O(log n) sends, not O(n).
    fn run(tree: bool) -> f64 {
        let (kernel, system, world) = build_16();
        let root_time: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
        for rank in 0..16 {
            let world = Arc::clone(&world);
            let root_time = Arc::clone(&root_time);
            kernel.spawn(format!("rank{rank}"), move |ctx| {
                let mut nx = world.join(ctx, rank);
                let buf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
                let t0 = ctx.now();
                if tree {
                    nx.gbcast(ctx, 0, buf, 1024).unwrap();
                } else {
                    nx.gbcast_naive(ctx, 0, buf, 1024).unwrap();
                }
                if rank == 0 {
                    *root_time.lock() = (ctx.now() - t0).as_us();
                }
                nx.gsync(ctx).unwrap();
                nx.flush(ctx).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        assert!(system.violations().is_empty());
        let v = *root_time.lock();
        v
    }
    let tree = run(true);
    let naive = run(false);
    assert!(
        tree < naive * 0.55,
        "tree root busy {tree:.1} us should be well under naive {naive:.1} us"
    );
}

#[test]
fn hrecv_handler_runs_on_arrival() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let world = NxWorld::new(Arc::clone(&system), NxConfig::paper_default(), vec![0, 1]);
    let fired = Arc::new(AtomicUsize::new(0));
    {
        let world = Arc::clone(&world);
        let fired = Arc::clone(&fired);
        kernel.spawn("rx", move |ctx| {
            let mut nx = world.join(ctx, 1);
            let buf = nx.vmmc().proc_().alloc(1024, CacheMode::WriteBack);
            let f = Arc::clone(&fired);
            let h = nx.hrecv(
                ctx,
                42,
                buf,
                1024,
                Box::new(move |_ctx, info| {
                    assert_eq!(info.mtype, 42);
                    assert_eq!(info.count, 256);
                    f.fetch_add(1, Ordering::SeqCst);
                }),
            );
            // The handler fires from an unrelated library call once the
            // message has arrived (signal-like semantics).
            let scratch = nx.vmmc().proc_().alloc(64, CacheMode::WriteBack);
            nx.crecv(ctx, 7, scratch, 64).unwrap();
            assert_eq!(fired.load(Ordering::SeqCst), 1);
            // msgwait on the handle is still valid and immediate.
            assert_eq!(nx.msgwait(ctx, h).unwrap(), 256);
            assert_eq!(nx.vmmc().proc_().peek(buf, 256).unwrap(), vec![9u8; 256]);
        });
    }
    {
        let world = Arc::clone(&world);
        kernel.spawn("tx", move |ctx| {
            let mut nx = world.join(ctx, 0);
            let buf = nx.vmmc().proc_().alloc(1024, CacheMode::WriteBack);
            nx.vmmc().proc_().poke(buf, &[9u8; 256]).unwrap();
            nx.csend(ctx, 42, buf, 256, 1).unwrap();
            // A second message of a different type unblocks the
            // receiver's crecv and gives the handler its chance to run.
            ctx.advance(shrimp_sim::SimDur::from_us(200.0));
            nx.csend(ctx, 7, buf, 16, 1).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn sixteen_node_all_to_all_personalized_exchange() {
    // Every rank sends a distinct message to every other rank, all
    // concurrently — the heaviest pattern the mesh model faces here.
    let (kernel, system, world) = build_16();
    for rank in 0..16 {
        let world = Arc::clone(&world);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let n = nx.numnodes();
            let sbuf = nx.vmmc().proc_().alloc(1024, CacheMode::WriteBack);
            let rbuf = nx.vmmc().proc_().alloc(1024, CacheMode::WriteBack);
            // Send to every peer: tag encodes the sender so receives can
            // validate contents.
            for step in 1..n {
                let dst = (rank + step) % n;
                nx.vmmc()
                    .proc_()
                    .poke(sbuf, &[(rank * 16 + dst) as u8; 640])
                    .unwrap();
                nx.csend(ctx, rank as i32, sbuf, 640, dst).unwrap();
            }
            let mut seen = [false; 16];
            for _ in 1..n {
                let got = nx.crecv(ctx, -1, rbuf, 1024).unwrap();
                assert_eq!(got, 640);
                let src = nx.infotype() as usize;
                assert!(!seen[src], "duplicate message from {src}");
                seen[src] = true;
                let expect = vec![(src * 16 + rank) as u8; 640];
                assert_eq!(nx.vmmc().proc_().peek(rbuf, 640).unwrap(), expect);
            }
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    // Observability: the report sees all 16 * 15 messages plus barrier
    // traffic, and no NIC ever froze.
    let report = system.report();
    assert!(report.mesh.delivered >= 240);
    assert_eq!(report.violations, 0);
    assert!(report.nics.iter().all(|n| n.freezes == 0));
    let text = format!("{report}");
    assert!(text.contains("node15:"));
}

#[test]
fn msgdone_polls_completion_without_blocking() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let world = NxWorld::new(Arc::clone(&system), NxConfig::paper_default(), vec![0, 1]);
    {
        let world = Arc::clone(&world);
        kernel.spawn("rx", move |ctx| {
            let mut nx = world.join(ctx, 1);
            let buf = nx.vmmc().proc_().alloc(256, CacheMode::WriteBack);
            let h = nx.irecv(ctx, 5, buf, 256);
            // Nothing sent yet: not done.
            assert!(!nx.msgdone(ctx, h).unwrap());
            // Poll until it completes.
            let mut polls = 0;
            while !nx.msgdone(ctx, h).unwrap() {
                ctx.advance(shrimp_sim::SimDur::from_us(50.0));
                polls += 1;
                assert!(polls < 10_000, "never completed");
            }
            assert_eq!(nx.vmmc().proc_().peek(buf, 16).unwrap(), vec![0xAD; 16]);
        });
    }
    {
        let world = Arc::clone(&world);
        kernel.spawn("tx", move |ctx| {
            let mut nx = world.join(ctx, 0);
            let buf = nx.vmmc().proc_().alloc(256, CacheMode::WriteBack);
            nx.vmmc().proc_().poke(buf, &[0xAD; 16]).unwrap();
            ctx.advance(shrimp_sim::SimDur::from_us(500.0));
            nx.csend(ctx, 5, buf, 16, 1).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn gcol_gathers_in_rank_order_everywhere() {
    let (kernel, system, world) = build_16();
    let results: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..16 {
        let world = Arc::clone(&world);
        let results = Arc::clone(&results);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let buf = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
            nx.vmmc().proc_().poke(buf, &[rank as u8; 12]).unwrap();
            let all = nx.gcol(ctx, buf, 12).unwrap();
            results.lock().push(all);
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let expect: Vec<u8> = (0..16u8).flat_map(|r| std::iter::repeat_n(r, 12)).collect();
    let results = results.lock();
    assert_eq!(results.len(), 16);
    for r in results.iter() {
        assert_eq!(r, &expect);
    }
}
