//! Integration tests of the NX library on the 4-node prototype.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::{CacheMode, VAddr};
use shrimp_nx::{NxConfig, NxError, NxProc, NxWorld, SendVariant, PKT_PAYLOAD};
use shrimp_sim::{Ctx, Kernel};

fn run_world<F>(nranks: usize, config: NxConfig, bodies: F) -> Arc<ShrimpSystem>
where
    F: Fn(usize) -> Box<dyn FnOnce(&Ctx, NxProc) + Send>,
{
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let nodes: Vec<usize> = (0..nranks).map(|r| r % system.len()).collect();
    let world = NxWorld::new(Arc::clone(&system), config, nodes);
    for rank in 0..nranks {
        let world = Arc::clone(&world);
        let body = bodies(rank);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let nx = world.join(ctx, rank);
            body(ctx, nx);
        });
    }
    kernel
        .run_until_quiescent()
        .expect("NX world simulation failed");
    assert!(system.violations().is_empty(), "protection violations");
    system
}

fn alloc_filled(nx: &NxProc, pattern: u8, len: usize) -> VAddr {
    let buf = nx.vmmc().proc_().alloc(len.max(4), CacheMode::WriteBack);
    nx.vmmc().proc_().poke(buf, &vec![pattern; len]).unwrap();
    buf
}

#[test]
fn small_message_round_trip_all_variants() {
    for variant in [
        SendVariant::AutomaticUpdate,
        SendVariant::DuMarshal,
        SendVariant::DuFromUser,
    ] {
        let mut config = NxConfig::paper_default();
        config.send_variant = variant;
        run_world(2, config, |rank| {
            Box::new(move |ctx, mut nx| {
                if rank == 0 {
                    let buf = alloc_filled(&nx, 0xA5, 777);
                    nx.csend(ctx, 17, buf, 777, 1).unwrap();
                } else {
                    let buf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
                    let n = nx.crecv(ctx, 17, buf, 2048).unwrap();
                    assert_eq!(n, 777);
                    assert_eq!(nx.infocount(), 777);
                    assert_eq!(nx.infotype(), 17);
                    assert_eq!(nx.infonode(), 0);
                    assert_eq!(nx.vmmc().proc_().peek(buf, 777).unwrap(), vec![0xA5; 777]);
                }
            })
        });
    }
}

#[test]
fn large_message_zero_copy_round_trip() {
    let n = 64 * 1024;
    run_world(2, NxConfig::paper_default(), move |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = nx.vmmc().proc_().alloc(n, CacheMode::WriteBack);
                let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                nx.vmmc().proc_().poke(buf, &data).unwrap();
                nx.csend(ctx, 3, buf, n, 1).unwrap();
                // Keep making library calls so a pending transfer
                // completes even if the receiver replied late.
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                let _ = nx.crecv(ctx, 4, scratch, 16).unwrap();
            } else {
                let buf = nx.vmmc().proc_().alloc(n, CacheMode::WriteBack);
                let got = nx.crecv(ctx, 3, buf, n).unwrap();
                assert_eq!(got, n);
                let want: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                assert_eq!(nx.vmmc().proc_().peek(buf, n).unwrap(), want);
                // Ack back to release the sender.
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                nx.csend(ctx, 4, scratch, 4, 0).unwrap();
            }
        })
    });
}

#[test]
fn large_message_unaligned_falls_back_to_chunks() {
    let n = 10_000; // not a multiple of 4 is the receiver side; use odd buffer
    run_world(2, NxConfig::paper_default(), move |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 0x3C, n);
                nx.csend(ctx, 9, buf, n, 1).unwrap();
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                let _ = nx.crecv(ctx, 10, scratch, 16).unwrap();
            } else {
                // Unaligned user receive buffer: zero-copy is forbidden.
                let buf = nx
                    .vmmc()
                    .proc_()
                    .alloc_at_offset(n + 8, 2, CacheMode::WriteBack);
                let got = nx.crecv(ctx, 9, buf, n + 4).unwrap();
                assert_eq!(got, n);
                assert_eq!(nx.vmmc().proc_().peek(buf, n).unwrap(), vec![0x3C; n]);
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                nx.csend(ctx, 10, scratch, 4, 0).unwrap();
            }
        })
    });
}

#[test]
fn typed_receive_consumes_out_of_order() {
    run_world(2, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let a = alloc_filled(&nx, 1, 64);
                let b = alloc_filled(&nx, 2, 64);
                let c = alloc_filled(&nx, 3, 64);
                nx.csend(ctx, 100, a, 64, 1).unwrap();
                nx.csend(ctx, 200, b, 64, 1).unwrap();
                nx.csend(ctx, 300, c, 64, 1).unwrap();
            } else {
                let buf = nx.vmmc().proc_().alloc(64, CacheMode::WriteBack);
                // Consume in reverse type order.
                nx.crecv(ctx, 300, buf, 64).unwrap();
                assert_eq!(nx.vmmc().proc_().peek(buf, 64).unwrap(), vec![3; 64]);
                nx.crecv(ctx, 200, buf, 64).unwrap();
                assert_eq!(nx.vmmc().proc_().peek(buf, 64).unwrap(), vec![2; 64]);
                nx.crecv(ctx, 100, buf, 64).unwrap();
                assert_eq!(nx.vmmc().proc_().peek(buf, 64).unwrap(), vec![1; 64]);
            }
        })
    });
}

#[test]
fn same_type_messages_arrive_in_order() {
    run_world(2, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = nx.vmmc().proc_().alloc(8, CacheMode::WriteBack);
                for i in 0..50u32 {
                    nx.vmmc().proc_().poke(buf, &i.to_le_bytes()).unwrap();
                    nx.csend(ctx, 5, buf, 4, 1).unwrap();
                }
            } else {
                let buf = nx.vmmc().proc_().alloc(8, CacheMode::WriteBack);
                for i in 0..50u32 {
                    nx.crecv(ctx, 5, buf, 8).unwrap();
                    let got = nx.vmmc().proc_().peek(buf, 4).unwrap();
                    assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), i);
                }
            }
        })
    });
}

#[test]
fn credit_exhaustion_blocks_then_recovers() {
    // More in-flight messages than packet buffers: the sender must wait
    // for credits (and interrupt the receiver), then complete.
    let mut config = NxConfig::paper_default();
    config.packet_buffers = 4;
    config.credit_batch = 2;
    run_world(2, config, |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 7, 128);
                for _ in 0..32 {
                    nx.csend(ctx, 1, buf, 128, 1).unwrap();
                }
            } else {
                // Delay before receiving so buffers fill up.
                ctx.advance(shrimp_sim::SimDur::from_us(3000.0));
                let buf = nx.vmmc().proc_().alloc(128, CacheMode::WriteBack);
                for _ in 0..32 {
                    let n = nx.crecv(ctx, 1, buf, 128).unwrap();
                    assert_eq!(n, 128);
                    assert_eq!(nx.vmmc().proc_().peek(buf, 128).unwrap(), vec![7; 128]);
                }
            }
        })
    });
}

#[test]
fn isend_irecv_msgwait() {
    run_world(2, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 0x44, 256);
                let h = nx.isend(ctx, 8, buf, 256, 1).unwrap();
                nx.msgwait(ctx, h).unwrap();
            } else {
                let buf = nx.vmmc().proc_().alloc(256, CacheMode::WriteBack);
                let h = nx.irecv(ctx, 8, buf, 256);
                let n = nx.msgwait(ctx, h).unwrap();
                assert_eq!(n, 256);
                assert_eq!(nx.vmmc().proc_().peek(buf, 256).unwrap(), vec![0x44; 256]);
            }
        })
    });
}

#[test]
fn probes_report_without_consuming() {
    run_world(2, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 9, 40);
                nx.csend(ctx, 77, buf, 40, 1).unwrap();
            } else {
                let info = nx.cprobe(ctx, -1).unwrap();
                assert_eq!(info.count, 40);
                assert_eq!(info.mtype, 77);
                assert_eq!(info.src, 0);
                // Probe again: still there.
                assert!(nx.iprobe(ctx, 77).unwrap().is_some());
                assert!(nx.iprobe(ctx, 78).unwrap().is_none());
                let buf = nx.vmmc().proc_().alloc(64, CacheMode::WriteBack);
                assert_eq!(nx.crecv(ctx, -1, buf, 64).unwrap(), 40);
                assert!(nx.iprobe(ctx, -1).unwrap().is_none());
            }
        })
    });
}

#[test]
fn truncated_small_message_is_an_error() {
    run_world(2, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 1, 512);
                nx.csend(ctx, 2, buf, 512, 1).unwrap();
            } else {
                let buf = nx.vmmc().proc_().alloc(64, CacheMode::WriteBack);
                match nx.crecv(ctx, 2, buf, 64) {
                    Err(NxError::Truncated { len: 512, max: 64 }) => {}
                    other => panic!("expected truncation, got {other:?}"),
                }
            }
        })
    });
}

#[test]
fn self_send_loops_back() {
    run_world(1, NxConfig::paper_default(), |_rank| {
        Box::new(move |ctx, mut nx| {
            let src = alloc_filled(&nx, 0xEE, 100);
            let dst = nx.vmmc().proc_().alloc(100, CacheMode::WriteBack);
            nx.csend(ctx, 1, src, 100, 0).unwrap();
            assert_eq!(nx.crecv(ctx, 1, dst, 100).unwrap(), 100);
            assert_eq!(nx.vmmc().proc_().peek(dst, 100).unwrap(), vec![0xEE; 100]);
            assert!(matches!(
                nx.csend(ctx, 1, src, 4, 9),
                Err(NxError::InvalidRank(9))
            ));
        })
    });
}

#[test]
fn four_rank_ring_exchange() {
    run_world(4, NxConfig::paper_default(), |rank| {
        Box::new(move |ctx, mut nx| {
            let n = nx.numnodes();
            let buf = alloc_filled(&nx, rank as u8, 1024);
            let recv = nx.vmmc().proc_().alloc(1024, CacheMode::WriteBack);
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            for round in 0..3 {
                nx.csend(ctx, round, buf, 1024, next).unwrap();
                nx.crecv(ctx, round, recv, 1024).unwrap();
                assert_eq!(nx.infonode(), prev);
                assert_eq!(
                    nx.vmmc().proc_().peek(recv, 1024).unwrap(),
                    vec![prev as u8; 1024]
                );
            }
        })
    });
}

#[test]
fn barrier_and_reductions() {
    let results: Arc<Mutex<Vec<(f64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    run_world(4, NxConfig::paper_default(), move |rank| {
        let results = Arc::clone(&r2);
        Box::new(move |ctx, mut nx| {
            nx.gsync(ctx).unwrap();
            let s = nx.gdsum(ctx, (rank + 1) as f64).unwrap();
            let i = nx.gisum(ctx, (rank as i64 + 1) * 10).unwrap();
            nx.gsync(ctx).unwrap();
            results.lock().push((s, i));
        })
    });
    let results = results.lock();
    assert_eq!(results.len(), 4);
    for (s, i) in results.iter() {
        assert_eq!(*s, 10.0); // 1+2+3+4
        assert_eq!(*i, 100); // 10+20+30+40
    }
}

#[test]
fn chunked_threshold_zero_forces_rendezvous_everywhere() {
    let mut config = NxConfig::paper_default();
    config.large_threshold = 0;
    run_world(2, config, |rank| {
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let buf = alloc_filled(&nx, 0x11, 4096);
                nx.csend(ctx, 1, buf, 4096, 1).unwrap();
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                let _ = nx.crecv(ctx, 2, scratch, 16).unwrap();
            } else {
                let buf = nx.vmmc().proc_().alloc(4096, CacheMode::WriteBack);
                assert_eq!(nx.crecv(ctx, 1, buf, 4096).unwrap(), 4096);
                assert_eq!(nx.vmmc().proc_().peek(buf, 4096).unwrap(), vec![0x11; 4096]);
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                nx.csend(ctx, 2, scratch, 4, 0).unwrap();
            }
        })
    });
}

#[test]
fn boundary_sizes_round_trip() {
    // Exactly at and around the one-copy/zero-copy protocol switch.
    for n in [
        0usize,
        1,
        3,
        4,
        PKT_PAYLOAD - 1,
        PKT_PAYLOAD,
        PKT_PAYLOAD + 1,
        2 * PKT_PAYLOAD,
    ] {
        run_world(2, NxConfig::paper_default(), move |rank| {
            Box::new(move |ctx, mut nx| {
                if rank == 0 {
                    let buf = alloc_filled(&nx, 0x5F, n.max(4));
                    nx.csend(ctx, 1, buf, n, 1).unwrap();
                    let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                    let _ = nx.crecv(ctx, 2, scratch, 16).unwrap();
                } else {
                    let buf = nx
                        .vmmc()
                        .proc_()
                        .alloc((n + 8).max(8), CacheMode::WriteBack);
                    assert_eq!(nx.crecv(ctx, 1, buf, n + 4).unwrap(), n, "size {n}");
                    if n > 0 {
                        assert_eq!(nx.vmmc().proc_().peek(buf, n).unwrap(), vec![0x5F; n]);
                    }
                    let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                    nx.csend(ctx, 2, scratch, 4, 0).unwrap();
                }
            })
        });
    }
}

#[test]
fn stats_classify_protocol_paths() {
    let stats = Arc::new(Mutex::new(None));
    let s2 = Arc::clone(&stats);
    run_world(2, NxConfig::paper_default(), move |rank| {
        let stats = Arc::clone(&s2);
        Box::new(move |ctx, mut nx| {
            if rank == 0 {
                let small = alloc_filled(&nx, 1, 100);
                let large = alloc_filled(&nx, 2, 8192);
                nx.csend(ctx, 1, small, 100, 1).unwrap(); // small path
                nx.csend(ctx, 2, large, 8192, 1).unwrap(); // zero-copy
                                                           // Unalignable length -> chunked fallback.
                nx.csend(ctx, 3, large, 8190, 1).unwrap();
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                nx.crecv(ctx, 9, scratch, 16).unwrap();
                nx.flush(ctx).unwrap();
                *stats.lock() = Some(nx.stats());
            } else {
                let buf = nx.vmmc().proc_().alloc(8192, CacheMode::WriteBack);
                for t in [1, 2, 3] {
                    nx.crecv(ctx, t, buf, 8192).unwrap();
                }
                let scratch = nx.vmmc().proc_().alloc(16, CacheMode::WriteBack);
                nx.csend(ctx, 9, scratch, 4, 0).unwrap();
                assert_eq!(nx.stats().received, 3);
            }
        })
    });
    let st = stats.lock().unwrap();
    assert_eq!(st.small_sent, 1); // only the 100 B message takes the small path
    assert_eq!(st.large_sent, 2);
    assert_eq!(st.zero_copy_sent, 1);
    assert_eq!(st.chunked_sent, 1);
    assert_eq!(st.received, 1);
}
