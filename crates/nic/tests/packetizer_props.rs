//! Property tests for the combining packetizer: whatever the write
//! sequence, the emitted packets reconstruct exactly the bytes written,
//! respect the size cap, and never cross destination pages.

use proptest::prelude::*;
use shrimp_mesh::NodeId;
use shrimp_nic::{OutWrite, Packetizer};
use shrimp_obs::MsgId;
use shrimp_sim::SimTime;

const PAGE: u64 = 4096;
const MEM: usize = 4 * PAGE as usize;

#[derive(Debug, Clone)]
struct W {
    addr: u64,
    data: Vec<u8>,
    combine: bool,
}

fn writes() -> impl Strategy<Value = Vec<W>> {
    proptest::collection::vec(
        (
            0u64..(MEM as u64 - 600),
            1usize..600,
            any::<bool>(),
            any::<u8>(),
        )
            .prop_map(|(addr, len, combine, fill)| W {
                addr,
                data: (0..len).map(|i| fill.wrapping_add(i as u8)).collect(),
                combine,
            }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packets_reconstruct_the_write_sequence(ws in writes(), max_payload in 8usize..2048) {
        let mut p = Packetizer::new(max_payload, PAGE);
        let mut expect = vec![0u8; MEM];
        let mut got = vec![0u8; MEM];
        let apply = |pkt: &shrimp_nic::OutPacket, got: &mut Vec<u8>| {
            // Size cap and page confinement.
            prop_assert!(pkt.data.len() <= max_payload);
            prop_assert!(!pkt.data.is_empty());
            let start = pkt.dst_paddr;
            let end = start + pkt.data.len() as u64 - 1;
            prop_assert_eq!(start / PAGE, end / PAGE, "packet crosses a page");
            got[start as usize..=end as usize].copy_from_slice(&pkt.data);
            Ok(())
        };
        for w in &ws {
            // Model: later writes overwrite earlier ones in program order.
            expect[w.addr as usize..w.addr as usize + w.data.len()].copy_from_slice(&w.data);
            let out = p.push(OutWrite {
                dst_node: NodeId(1),
                dst_paddr: w.addr,
                data: w.data.clone().into(),
                interrupt: false,
                combine: w.combine,
                at: SimTime::ZERO,
                msg: MsgId::NONE,
            });
            for pkt in &out {
                apply(pkt, &mut got)?;
            }
        }
        if let Some(pkt) = p.flush() {
            apply(&pkt, &mut got)?;
        }
        prop_assert!(!p.has_open(), "flush must empty the buffer");
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn generation_strictly_increases_on_mutation(ws in writes()) {
        let mut p = Packetizer::new(256, PAGE);
        let mut last = p.generation();
        for w in ws {
            p.push(OutWrite {
                dst_node: NodeId(0),
                dst_paddr: w.addr,
                data: w.data.into(),
                interrupt: false,
                combine: w.combine,
                at: SimTime::ZERO,
                msg: MsgId::NONE,
            });
            prop_assert!(p.generation() > last);
            last = p.generation();
        }
    }
}
