//! The NIC's outgoing and incoming page tables.
//!
//! * The **Outgoing Page Table (OPT)** is indexed by local physical page
//!   number and holds automatic-update bindings: destination node and
//!   page, combining configuration, and the sender-specified destination
//!   interrupt flag (paper §3.2, Figure 2).
//! * The **Incoming Page Table (IPT)** has an entry for *every* local
//!   physical page with a receive-enable flag and a receiver-specified
//!   interrupt flag. Incoming data for a disabled page freezes the
//!   receive datapath and interrupts the node CPU.

use std::collections::HashMap;

use parking_lot::Mutex;
use shrimp_mesh::NodeId;

/// One automatic-update binding in the outgoing page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptEntry {
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination physical page on that node.
    pub dst_ppage: u64,
    /// Whether consecutive writes may be combined into one packet.
    pub combine: bool,
    /// Whether delivery of packets from this page should request a
    /// destination interrupt (sender-specified notification flag).
    pub dst_interrupt: bool,
}

/// One incoming page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IptEntry {
    /// Whether the network interface may transfer data into this page.
    pub enabled: bool,
    /// Receiver-specified interrupt flag: an interrupt is raised after a
    /// packet lands here only if the packet also carried the
    /// sender-specified flag.
    pub interrupt: bool,
    /// Whether a remote NIC may *fetch* data out of this page (the
    /// one-sided read permission of the rmc extension). Deposits and
    /// fetches share the export/protection model; the read bit is the
    /// only asymmetry.
    pub read: bool,
}

/// The outgoing page table: local physical page → AU binding.
#[derive(Debug, Default)]
pub struct OutgoingPageTable {
    entries: Mutex<HashMap<u64, OptEntry>>,
}

impl OutgoingPageTable {
    /// An empty table.
    pub fn new() -> OutgoingPageTable {
        OutgoingPageTable::default()
    }

    /// Install (or replace) the binding for a local physical page.
    pub fn bind(&self, local_ppage: u64, entry: OptEntry) {
        self.entries.lock().insert(local_ppage, entry);
    }

    /// Remove the binding for a page; returns the old entry.
    pub fn unbind(&self, local_ppage: u64) -> Option<OptEntry> {
        self.entries.lock().remove(&local_ppage)
    }

    /// Look up the binding for a page.
    pub fn lookup(&self, local_ppage: u64) -> Option<OptEntry> {
        self.entries.lock().get(&local_ppage).copied()
    }

    /// Number of bound pages.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if no pages are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// The incoming page table: local physical page → receive permissions.
/// Pages without an explicit entry are disabled (the hardware table has
/// an entry per page, initialized to disabled).
#[derive(Debug, Default)]
pub struct IncomingPageTable {
    entries: Mutex<HashMap<u64, IptEntry>>,
}

impl IncomingPageTable {
    /// An empty (all-disabled) table.
    pub fn new() -> IncomingPageTable {
        IncomingPageTable::default()
    }

    /// Set the entry for a page.
    pub fn set(&self, ppage: u64, entry: IptEntry) {
        self.entries.lock().insert(ppage, entry);
    }

    /// Read the entry for a page (disabled default if never set).
    ///
    /// The deposit datapath uses this: an unmapped page behaves like a
    /// disabled one (freeze). The *fetch* datapath must instead
    /// distinguish unmapped from disabled — use
    /// [`IncomingPageTable::lookup`] there, so an unmapped page produces
    /// an explicit typed deny rather than a silent default entry.
    pub fn get(&self, ppage: u64) -> IptEntry {
        self.entries.lock().get(&ppage).copied().unwrap_or_default()
    }

    /// Read the entry for a page, or `None` when the page was never
    /// mapped into the table at all.
    pub fn lookup(&self, ppage: u64) -> Option<IptEntry> {
        self.entries.lock().get(&ppage).copied()
    }

    /// Flip just the interrupt flag for a page, preserving enablement.
    pub fn set_interrupt(&self, ppage: u64, interrupt: bool) {
        let mut g = self.entries.lock();
        g.entry(ppage).or_default().interrupt = interrupt;
    }

    /// All currently enabled pages, sorted ascending. Fault injection
    /// uses this to make a deterministic victim pick.
    pub fn enabled_pages(&self) -> Vec<u64> {
        let g = self.entries.lock();
        let mut v: Vec<u64> = g
            .iter()
            .filter(|(_, e)| e.enabled)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Clear the receive-enable flag for a page, preserving the
    /// interrupt flag. Returns the previous enablement.
    pub fn disable(&self, ppage: u64) -> bool {
        let mut g = self.entries.lock();
        let e = g.entry(ppage).or_default();
        std::mem::replace(&mut e.enabled, false)
    }

    /// Set the receive-enable flag for a page, preserving the interrupt
    /// flag (daemon restart re-validation uses this).
    pub fn enable(&self, ppage: u64) {
        self.entries.lock().entry(ppage).or_default().enabled = true;
    }

    /// OS repair after a protection-violation freeze: re-enable the page
    /// and clear the interrupt flag (the repaired mapping starts without
    /// a pending notification), preserving the read permission the
    /// export installed.
    pub fn repair(&self, ppage: u64) {
        let mut g = self.entries.lock();
        let e = g.entry(ppage).or_default();
        e.enabled = true;
        e.interrupt = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_bind_lookup_unbind() {
        let opt = OutgoingPageTable::new();
        assert!(opt.is_empty());
        let e = OptEntry {
            dst_node: NodeId(2),
            dst_ppage: 9,
            combine: true,
            dst_interrupt: false,
        };
        opt.bind(5, e);
        assert_eq!(opt.lookup(5), Some(e));
        assert_eq!(opt.lookup(6), None);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.unbind(5), Some(e));
        assert_eq!(opt.unbind(5), None);
    }

    #[test]
    fn ipt_defaults_to_disabled() {
        let ipt = IncomingPageTable::new();
        assert_eq!(
            ipt.get(3),
            IptEntry {
                enabled: false,
                interrupt: false,
                read: false,
            }
        );
        ipt.set(
            3,
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        assert!(ipt.get(3).enabled);
        ipt.set_interrupt(3, true);
        assert_eq!(
            ipt.get(3),
            IptEntry {
                enabled: true,
                interrupt: true,
                read: false,
            }
        );
        // set_interrupt on an unseen page creates a disabled entry.
        ipt.set_interrupt(7, true);
        assert_eq!(
            ipt.get(7),
            IptEntry {
                enabled: false,
                interrupt: true,
                read: false,
            }
        );
    }

    #[test]
    fn lookup_distinguishes_unmapped_from_disabled() {
        let ipt = IncomingPageTable::new();
        assert_eq!(ipt.lookup(9), None, "never-mapped page");
        ipt.set(
            9,
            IptEntry {
                enabled: false,
                interrupt: false,
                read: true,
            },
        );
        assert_eq!(
            ipt.lookup(9),
            Some(IptEntry {
                enabled: false,
                interrupt: false,
                read: true,
            })
        );
        // get() still folds both into a default-shaped entry.
        assert!(!ipt.get(9).enabled);
    }

    #[test]
    fn repair_preserves_read_permission() {
        let ipt = IncomingPageTable::new();
        ipt.set(
            4,
            IptEntry {
                enabled: true,
                interrupt: true,
                read: true,
            },
        );
        assert!(ipt.disable(4), "was enabled");
        assert!(!ipt.get(4).enabled);
        assert!(ipt.get(4).interrupt, "disable preserves the interrupt flag");
        ipt.repair(4);
        assert_eq!(
            ipt.get(4),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: true,
            }
        );
    }
}
