//! The packetizing/combining state machine of the outgoing datapath.
//!
//! The hardware builds packets in the Outgoing FIFO. If the source page
//! is configured for combining, the packet is held open and a write to
//! the consecutive destination address is appended; otherwise a new
//! packet is started. A hardware timer sends a held packet if no
//! subsequent automatic update occurs (paper §3.2).
//!
//! This module is the *pure* decision logic, unit-testable without a
//! simulation; `Nic` drives it from snoop events and schedules the
//! timer.

use shrimp_mesh::NodeId;
use shrimp_obs::MsgId;
use shrimp_sim::{SimBuf, SimTime};

/// A write run presented to the packetizer (already OPT-translated).
#[derive(Debug, Clone)]
pub struct OutWrite {
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination physical byte address.
    pub dst_paddr: u64,
    /// The written bytes (a shared view; packetization slices it).
    pub data: SimBuf,
    /// Sender-specified destination-interrupt flag.
    pub interrupt: bool,
    /// Whether the source OPT entry allows combining.
    pub combine: bool,
    /// Completion time of the write run.
    pub at: SimTime,
    /// Causal message id for observability ([`MsgId::NONE`] when
    /// tracing is off). Combining keeps the *first* write's id.
    pub msg: MsgId,
}

/// A closed packet ready for injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutPacket {
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination physical byte address of the first payload byte.
    pub dst_paddr: u64,
    /// Payload — a zero-copy window of the originating write run.
    pub data: SimBuf,
    /// Destination-interrupt request.
    pub interrupt: bool,
    /// Causal message id (first contributing write when combined).
    pub msg: MsgId,
}

#[derive(Debug)]
struct Open {
    pkt: OutPacket,
    last_write_at: SimTime,
    page_size: u64,
}

impl Open {
    fn can_append(&self, w: &OutWrite, max_payload: usize) -> bool {
        self.pkt.dst_node == w.dst_node
            && self.pkt.dst_paddr + self.pkt.data.len() as u64 == w.dst_paddr
            && self.pkt.data.len() + w.data.len() <= max_payload
            // A packet must stay within one destination page: the
            // incoming page table is checked once per packet.
            && (w.dst_paddr + w.data.len() as u64 - 1) / self.page_size
                == self.pkt.dst_paddr / self.page_size
    }
}

/// The combining buffer. Holds at most one open packet.
#[derive(Debug)]
pub struct Packetizer {
    max_payload: usize,
    page_size: u64,
    open: Option<Open>,
    /// Bumped on every mutation; lets stale timer events detect that the
    /// packet they armed for has already been flushed or extended.
    generation: u64,
}

impl Packetizer {
    /// Create a packetizer with the given maximum payload per packet.
    ///
    /// # Panics
    ///
    /// Panics if `max_payload` is zero or exceeds `page_size`.
    pub fn new(max_payload: usize, page_size: u64) -> Packetizer {
        assert!(max_payload > 0, "max payload must be positive");
        assert!(
            max_payload as u64 <= page_size,
            "packets must fit in one page"
        );
        Packetizer {
            max_payload,
            page_size,
            open: None,
            generation: 0,
        }
    }

    /// Current generation counter (for timer validation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a packet is currently held open.
    pub fn has_open(&self) -> bool {
        self.open.is_some()
    }

    /// Present a write run. Returns the packets that must be injected
    /// *now*, in order. A combining write may be left pending; the caller
    /// should arm the combine timer whenever [`has_open`](Self::has_open)
    /// is true after this call.
    pub fn push(&mut self, w: OutWrite) -> Vec<OutPacket> {
        // A zero-length run puts no bytes on the bus: it is a no-op and
        // must not disturb the open packet or its armed combine timer
        // (the generation stays put so the timer remains valid).
        if w.data.is_empty() {
            return Vec::new();
        }
        self.generation += 1;
        let mut out = Vec::new();

        // Try to extend the open packet.
        if let Some(open) = &mut self.open {
            if w.combine && open.can_append(&w, self.max_payload) {
                open.pkt.data.append(&w.data);
                open.pkt.interrupt |= w.interrupt;
                open.last_write_at = w.at;
                return out;
            }
            // Not appendable: the open packet closes first (FIFO).
            out.push(self.open.take().expect("open packet vanished").pkt);
        }

        // Split the run into packet-sized, page-confined pieces.
        let mut off = 0usize;
        while off < w.data.len() {
            let addr = w.dst_paddr + off as u64;
            let to_page_end = (self.page_size - addr % self.page_size) as usize;
            let n = (w.data.len() - off).min(self.max_payload).min(to_page_end);
            let piece = OutPacket {
                dst_node: w.dst_node,
                dst_paddr: addr,
                data: w.data.slice(off..off + n),
                interrupt: w.interrupt,
                msg: w.msg,
            };
            off += n;
            let is_last = off == w.data.len();
            if is_last && w.combine {
                self.open = Some(Open {
                    pkt: piece,
                    last_write_at: w.at,
                    page_size: self.page_size,
                });
            } else {
                out.push(piece);
            }
        }
        out
    }

    /// Close and return the open packet, if any (combine timer expiry,
    /// deliberate-update ordering flush, or unbind).
    pub fn flush(&mut self) -> Option<OutPacket> {
        self.generation += 1;
        self.open.take().map(|o| o.pkt)
    }

    /// Timestamp of the last write appended to the open packet.
    pub fn open_last_write_at(&self) -> Option<SimTime> {
        self.open.as_ref().map(|o| o.last_write_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    fn w(addr: u64, len: usize, combine: bool) -> OutWrite {
        OutWrite {
            dst_node: NodeId(1),
            dst_paddr: addr,
            data: vec![0xAA; len].into(),
            interrupt: false,
            combine,
            at: SimTime::ZERO,
            msg: MsgId::NONE,
        }
    }

    #[test]
    fn consecutive_combining_writes_merge() {
        let mut p = Packetizer::new(1024, PAGE);
        assert!(p.push(w(100, 8, true)).is_empty());
        assert!(p.push(w(108, 8, true)).is_empty());
        let pkt = p.flush().unwrap();
        assert_eq!(pkt.dst_paddr, 100);
        assert_eq!(pkt.data.len(), 16);
        assert!(!p.has_open());
    }

    #[test]
    fn non_consecutive_write_closes_previous_packet() {
        let mut p = Packetizer::new(1024, PAGE);
        assert!(p.push(w(100, 8, true)).is_empty());
        let out = p.push(w(200, 4, true));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst_paddr, 100);
        assert_eq!(p.flush().unwrap().dst_paddr, 200);
    }

    #[test]
    fn non_combining_write_is_emitted_immediately() {
        let mut p = Packetizer::new(1024, PAGE);
        let out = p.push(w(100, 8, false));
        assert_eq!(out.len(), 1);
        assert!(!p.has_open());
    }

    #[test]
    fn oversized_run_splits_at_max_payload() {
        let mut p = Packetizer::new(100, PAGE);
        let out = p.push(w(0, 250, false));
        assert_eq!(
            out.iter().map(|o| o.data.len()).collect::<Vec<_>>(),
            vec![100, 100, 50]
        );
        assert_eq!(out[1].dst_paddr, 100);
        assert_eq!(out[2].dst_paddr, 200);
    }

    #[test]
    fn combining_keeps_final_piece_open() {
        let mut p = Packetizer::new(100, PAGE);
        let out = p.push(w(0, 250, true));
        assert_eq!(out.len(), 2);
        let tail = p.flush().unwrap();
        assert_eq!(tail.dst_paddr, 200);
        assert_eq!(tail.data.len(), 50);
    }

    #[test]
    fn packets_never_cross_destination_pages() {
        let mut p = Packetizer::new(4096, PAGE);
        let out = p.push(w(PAGE - 10, 30, false));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data.len(), 10);
        assert_eq!(out[1].dst_paddr, PAGE);
        assert_eq!(out[1].data.len(), 20);
    }

    #[test]
    fn append_stops_at_page_boundary() {
        let mut p = Packetizer::new(4096, PAGE);
        assert!(p.push(w(PAGE - 8, 8, true)).is_empty());
        // Next consecutive write would land on the next page: must close.
        let out = p.push(w(PAGE, 8, true));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst_paddr, PAGE - 8);
        assert!(p.has_open());
    }

    #[test]
    fn size_cap_forces_close() {
        let mut p = Packetizer::new(16, PAGE);
        assert!(p.push(w(0, 12, true)).is_empty());
        let out = p.push(w(12, 8, true)); // 12 + 8 > 16
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data.len(), 12);
        assert_eq!(p.flush().unwrap().data.len(), 8);
    }

    #[test]
    fn interrupt_flag_is_sticky_across_combining() {
        let mut p = Packetizer::new(1024, PAGE);
        let mut w1 = w(0, 4, true);
        w1.interrupt = false;
        let mut w2 = w(4, 4, true);
        w2.interrupt = true;
        p.push(w1);
        p.push(w2);
        assert!(p.flush().unwrap().interrupt);
    }

    #[test]
    fn generation_bumps_on_mutation() {
        let mut p = Packetizer::new(1024, PAGE);
        let g0 = p.generation();
        p.push(w(0, 4, true));
        assert!(p.generation() > g0);
        let g1 = p.generation();
        p.flush();
        assert!(p.generation() > g1);
    }

    #[test]
    fn zero_length_run_is_a_noop() {
        let mut p = Packetizer::new(1024, PAGE);
        let g0 = p.generation();
        assert!(p.push(w(100, 0, false)).is_empty());
        assert!(p.push(w(100, 0, true)).is_empty());
        assert!(!p.has_open());
        // The generation must not move: an armed combine timer for an
        // open packet stays valid across an empty run.
        assert_eq!(p.generation(), g0);

        p.push(w(0, 8, true));
        let g1 = p.generation();
        assert!(p.push(w(8, 0, true)).is_empty());
        assert_eq!(p.generation(), g1);
        // The open packet is untouched and still appendable.
        assert!(p.push(w(8, 8, true)).is_empty());
        assert_eq!(p.flush().unwrap().data.len(), 16);
    }

    #[test]
    fn payload_exactly_at_max_is_one_packet() {
        let mut p = Packetizer::new(100, PAGE);
        let out = p.push(w(0, 100, false));
        assert_eq!(
            out.iter().map(|o| o.data.len()).collect::<Vec<_>>(),
            vec![100]
        );
    }

    #[test]
    fn payload_one_over_max_splits_in_two() {
        let mut p = Packetizer::new(100, PAGE);
        let out = p.push(w(0, 101, false));
        assert_eq!(
            out.iter().map(|o| o.data.len()).collect::<Vec<_>>(),
            vec![100, 1]
        );
        assert_eq!(out[1].dst_paddr, 100);
    }

    #[test]
    fn append_filling_packet_exactly_to_max_is_allowed() {
        let mut p = Packetizer::new(16, PAGE);
        assert!(p.push(w(0, 12, true)).is_empty());
        assert!(p.push(w(12, 4, true)).is_empty()); // 12 + 4 == 16
        assert_eq!(p.flush().unwrap().data.len(), 16);
    }

    #[test]
    fn different_destination_node_closes_packet() {
        let mut p = Packetizer::new(1024, PAGE);
        p.push(w(0, 4, true));
        let mut w2 = w(4, 4, true);
        w2.dst_node = NodeId(3);
        let out = p.push(w2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst_node, NodeId(1));
        assert_eq!(p.flush().unwrap().dst_node, NodeId(3));
    }
}
