//! # shrimp-nic — the SHRIMP network interface model
//!
//! The custom SHRIMP network interface is the key system component: two
//! printed-circuit boards connecting each PC to both the Xpress memory
//! bus (a very simple snooping card) and the EISA expansion bus (all the
//! logic), implementing hardware support for virtual memory-mapped
//! communication (paper §3.2, Figure 2).
//!
//! This crate models every datapath block of that figure:
//!
//! * snoop logic + [`OutgoingPageTable`] + [`Packetizer`] (automatic
//!   update, write combining, combine timer);
//! * the deliberate-update engine ([`Nic::du_transfer`]) with its EISA
//!   DMA source reads and the word-alignment restriction;
//! * the incoming DMA engine with the per-packet [`IncomingPageTable`]
//!   check, freeze-and-interrupt on protection violation, and the
//!   two-flag notification interrupt rule.
//!
//! The arbiter of Figure 2 (incoming given priority over outgoing at the
//! NIC's port) is subsumed by the FIFO bus model: both directions
//! contend on the EISA bandwidth resource.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod nic;
mod packetizer;
mod tables;

pub use nic::{
    DuRequest, FetchDesc, FetchRequest, NakReason, Nic, NicPacket, NicStats, PacketKind,
    IRQ_NOTIFICATION, IRQ_RECV_FREEZE,
};
pub use packetizer::{OutPacket, OutWrite, Packetizer};
pub use tables::{IncomingPageTable, IptEntry, OptEntry, OutgoingPageTable};
