//! The SHRIMP network interface.
//!
//! One `Nic` sits between a node's buses and the routing backplane and
//! implements the two datapaths of paper Figure 2:
//!
//! * **Outgoing** — either the memory-bus *snoop logic* (automatic
//!   update: OPT lookup, packetizing with optional combining and a
//!   combine timer) or the *deliberate-update engine* (two-access
//!   initiation, EISA DMA reads of the source, packetization);
//! * **Incoming** — the *incoming DMA engine*: per-packet incoming page
//!   table check, then DMA into main memory over the EISA bus; an
//!   interrupt is raised after a packet lands iff both the
//!   sender-specified and receiver-specified flags are set; data for a
//!   disabled page freezes the receive datapath and interrupts the CPU.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use shrimp_mesh::{Backplane, Delivery, NodeId};
use shrimp_node::{Interrupt, Node, PAddr, SnoopWrite, PAGE_SIZE};
use shrimp_sim::{SimBuf, SimDur, SimTime, StallWindows};

use crate::packetizer::{OutPacket, OutWrite, Packetizer};
use crate::tables::{IncomingPageTable, OutgoingPageTable};
#[cfg(test)]
use crate::tables::{IptEntry, OptEntry};

/// Interrupt vector: a notification packet landed (info = physical page).
pub const IRQ_NOTIFICATION: u32 = 1;
/// Interrupt vector: the receive datapath froze on a disabled page
/// (info = physical page).
pub const IRQ_RECV_FREEZE: u32 = 2;

/// A packet on the wire between two NICs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicPacket {
    /// Destination physical byte address (within one page). Unused for
    /// the fetch packet classes: a fetch reply deposits at the address
    /// the *requesting* NIC recorded at issue time, so a responder can
    /// never redirect a deposit.
    pub dst_paddr: u64,
    /// Payload bytes — a shared zero-copy view; the same backing
    /// allocation travels from the snoop/DU engine to the incoming DMA.
    pub data: SimBuf,
    /// Sender-specified destination-interrupt flag.
    pub interrupt: bool,
    /// Which datapath handles the packet on arrival.
    pub kind: PacketKind,
    /// Causal message id for observability; [`shrimp_obs::MsgId::NONE`]
    /// when tracing is off.
    pub msg: shrimp_obs::MsgId,
}

/// Classifies a [`NicPacket`] on the wire. Ordinary deposits carry
/// [`PacketKind::Data`]; the remote-fetch engine (the one-sided read
/// extension, DESIGN.md §5g) adds a request/reply/NAK protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// An ordinary one-way deposit (automatic or deliberate update).
    Data,
    /// A remote-fetch request descriptor (header-only control packet).
    FetchReq(FetchDesc),
    /// One chunk of a fetch reply.
    FetchReply {
        /// Requester-local fetch id this chunk answers.
        fetch: u64,
        /// Byte offset of this chunk within the fetched range.
        offset: usize,
        /// Whether this is the final chunk of the fetch.
        last: bool,
    },
    /// A typed negative acknowledgement: the fetch was refused.
    FetchNak {
        /// Requester-local fetch id being refused.
        fetch: u64,
        /// Why the responder refused.
        reason: NakReason,
    },
}

/// A remote-fetch request descriptor, as carried in the request packet.
/// Deliberately *excludes* any requester-side deposit address: the
/// requesting NIC keeps the reply region in its pending-fetch table, so
/// the protection of the reply deposit never depends on remote state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchDesc {
    /// Requesting node (where replies and NAKs go).
    pub from: NodeId,
    /// Requester-local fetch id, echoed in every reply/NAK packet.
    pub fetch: u64,
    /// Physical byte address to read on the responder.
    pub src_paddr: u64,
    /// Bytes to read (word-aligned, within one source page).
    pub len: usize,
}

/// Why a responder NIC refused a fetch (the typed NAK payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakReason {
    /// The target page has no incoming-page-table entry at all — it was
    /// never part of any export. Distinguished from [`NakReason::Denied`]
    /// so a protocol bug (wild address) is not mistaken for a transient
    /// protection fault.
    Unmapped {
        /// The offending physical page.
        ppage: u64,
    },
    /// The page is mapped but receive-disabled or exported without read
    /// permission.
    Denied {
        /// The offending physical page.
        ppage: u64,
    },
    /// The responder's daemon is down: no validation is possible.
    DaemonDown,
}

/// A remote-fetch request as issued by the local VMMC layer: read
/// `len` bytes at `src_paddr` on `src_node` and deposit them at the
/// local physical address `dst_paddr`.
#[derive(Debug, Clone, Copy)]
pub struct FetchRequest {
    /// Node to read from.
    pub src_node: NodeId,
    /// Physical byte address on that node.
    pub src_paddr: u64,
    /// Bytes to read. Must be word-aligned and lie within one source
    /// page and one destination page (the VMMC layer chunks larger
    /// fetches).
    pub len: usize,
    /// Local physical address the reply deposits into.
    pub dst_paddr: u64,
    /// Causal message id allocated at the fetch call
    /// ([`shrimp_obs::MsgId::NONE`] when tracing is off).
    pub msg: shrimp_obs::MsgId,
}

/// A deliberate-update transfer request, as decoded from the two-access
/// initiation sequence (the VMMC layer charges the two EISA programmed
/// I/O accesses before handing the request to the engine).
#[derive(Debug, Clone, Copy)]
pub struct DuRequest {
    /// Source physical address on the local node.
    pub src: PAddr,
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination physical byte address on that node.
    pub dst_paddr: u64,
    /// Transfer length in bytes.
    pub len: usize,
    /// Request a destination interrupt on the final packet.
    pub interrupt: bool,
    /// Causal message id allocated at the send syscall
    /// ([`shrimp_obs::MsgId::NONE`] when tracing is off); every packet
    /// of the transfer carries it.
    pub msg: shrimp_obs::MsgId,
}

/// Traffic counters for one NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Automatic-update packets injected.
    pub au_packets_out: u64,
    /// Deliberate-update packets injected.
    pub du_packets_out: u64,
    /// Total payload bytes injected.
    pub bytes_out: u64,
    /// Packets received and DMA'd to memory.
    pub packets_in: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Times the receive datapath froze on a disabled page.
    pub freezes: u64,
    /// Fetch requests issued by the local fetch engine.
    pub fetch_reqs_out: u64,
    /// Fetch requests arriving from remote nodes.
    pub fetch_reqs_in: u64,
    /// Fetch reply packets streamed out by the responder datapath.
    pub fetch_replies_out: u64,
    /// Fetch reply packets deposited by the requester datapath.
    pub fetch_replies_in: u64,
    /// Fetches this NIC refused (unmapped page, disabled page, missing
    /// read permission, or daemon down) — the per-NIC violation counter
    /// of the fetch protection model.
    pub fetch_denials: u64,
    /// Typed NAKs received for fetches this NIC issued.
    pub fetch_naks_in: u64,
    /// Deepest simultaneous responder-engine backlog observed: accepted
    /// fetch requests whose replies had not yet fully streamed out. A
    /// peak above 1 means requests queued behind a busy (or stalled)
    /// responder — the signature of brownouts and `FetchStall` faults.
    pub fetch_queue_peak: u64,
}

type DeliveryHook = Arc<dyn Fn(u64, SimTime) + Send + Sync>;

/// Requester callback run when a fetch completes or is NAKed.
type FetchDone = Box<dyn FnOnce(Result<SimTime, NakReason>) + Send>;

struct FreezeState {
    frozen: bool,
    pending: VecDeque<NicPacket>,
}

/// Requester-side state for one in-flight fetch. Lives from issue until
/// the final reply chunk's DMA completes (or a NAK arrives); the reply
/// deposit address lives here and never crosses the wire.
struct PendingFetch {
    dst_paddr: u64,
    expect: usize,
    received: usize,
    /// Reply-chunk DMAs accepted but not yet completed.
    outstanding: u64,
    saw_last: bool,
    done: Option<FetchDone>,
}

/// The network interface of one node. Construct with [`Nic::install`],
/// which wires the snoop hook and the backplane sink.
pub struct Nic {
    node: Arc<Node>,
    net: Arc<Backplane<NicPacket>>,
    opt: OutgoingPageTable,
    ipt: IncomingPageTable,
    pktz: Mutex<Packetizer>,
    freeze: Mutex<FreezeState>,
    delivery_hook: Mutex<Option<DeliveryHook>>,
    /// Mirrors `delivery_hook.is_some()`; lets the per-packet DMA
    /// completion skip the lock + `Arc` clone when no hook is installed.
    has_delivery_hook: std::sync::atomic::AtomicBool,
    stats: Mutex<NicStats>,
    pending_recv_dma: AtomicU64,
    /// Outgoing-FIFO sequencer: no packet may be injected earlier than a
    /// previously enqueued one, whatever its datapath's processing lead.
    out_tail: Mutex<SimTime>,
    /// Injected incoming-DMA stall windows (see `shrimp_sim::faults`):
    /// the DMA engine holds accepted packets until the window passes.
    recv_stall: Mutex<StallWindows>,
    /// Requester-side fetch engine: in-flight fetches by id.
    fetches: Mutex<HashMap<u64, PendingFetch>>,
    /// Fetch id allocator.
    next_fetch: AtomicU64,
    /// Responder-side fetches accepted but not yet fully replied.
    serving_fetches: AtomicU64,
    /// Whether the local VMMC daemon is down. The fetch engine NAKs
    /// every request while set: validation needs the daemon's mappings.
    daemon_down: AtomicBool,
    /// Injected fetch-engine stall windows: the responder holds accepted
    /// fetch requests (post-IPT-check) until the window passes, stalling
    /// the reply stream.
    fetch_stall: Mutex<StallWindows>,
    /// Observability hook: when attached, the outgoing datapath records
    /// packetize/FIFO spans and the incoming datapath records
    /// IPT-check and deposit spans, all tagged with the packet's
    /// causal message id.
    obs: shrimp_obs::ObsSlot,
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("node", &self.node.id())
            .finish_non_exhaustive()
    }
}

impl Nic {
    /// Build the NIC for `node`, register its snoop logic on the memory
    /// bus and its incoming DMA engine on the backplane, and return it.
    pub fn install(node: Arc<Node>, net: Arc<Backplane<NicPacket>>) -> Arc<Nic> {
        let max_payload = node
            .costs()
            .au_combine_limit
            .min(node.costs().max_packet_payload);
        let nic = Arc::new(Nic {
            node: Arc::clone(&node),
            net: Arc::clone(&net),
            opt: OutgoingPageTable::new(),
            ipt: IncomingPageTable::new(),
            pktz: Mutex::new(Packetizer::new(max_payload, PAGE_SIZE as u64)),
            freeze: Mutex::new(FreezeState {
                frozen: false,
                pending: VecDeque::new(),
            }),
            delivery_hook: Mutex::new(None),
            has_delivery_hook: std::sync::atomic::AtomicBool::new(false),
            stats: Mutex::new(NicStats::default()),
            pending_recv_dma: AtomicU64::new(0),
            out_tail: Mutex::new(SimTime::ZERO),
            recv_stall: Mutex::new(StallWindows::new()),
            fetches: Mutex::new(HashMap::new()),
            next_fetch: AtomicU64::new(1),
            serving_fetches: AtomicU64::new(0),
            daemon_down: AtomicBool::new(false),
            fetch_stall: Mutex::new(StallWindows::new()),
            obs: shrimp_obs::ObsSlot::new(),
        });

        let weak: Weak<Nic> = Arc::downgrade(&nic);
        node.set_snoop_hook(move |w| {
            if let Some(nic) = weak.upgrade() {
                nic.on_snoop(w);
            }
        });

        let weak: Weak<Nic> = Arc::downgrade(&nic);
        net.attach(node.id(), move |d| {
            if let Some(nic) = weak.upgrade() {
                nic.on_incoming(d);
            }
        });

        nic
    }

    /// The node this NIC is plugged into.
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// The outgoing page table (automatic-update bindings).
    pub fn opt(&self) -> &OutgoingPageTable {
        &self.opt
    }

    /// The incoming page table (receive enables and interrupt flags).
    pub fn ipt(&self) -> &IncomingPageTable {
        &self.ipt
    }

    /// Install the delivery hook, called (with the destination physical
    /// page and completion time) after each packet's DMA completes. The
    /// VMMC layer uses it to wake blocked receivers.
    pub fn set_delivery_hook(&self, hook: impl Fn(u64, SimTime) + Send + Sync + 'static) {
        *self.delivery_hook.lock() = Some(Arc::new(hook));
        self.has_delivery_hook.store(true, Ordering::SeqCst);
    }

    /// Traffic counters.
    pub fn stats(&self) -> NicStats {
        *self.stats.lock()
    }

    /// Attach (or detach) an observability recorder (see `shrimp_obs`).
    pub fn set_obs(&self, rec: Option<Arc<shrimp_obs::Recorder>>) {
        self.obs.set(rec);
    }

    /// Allocate a causal message id from the attached recorder, or
    /// [`shrimp_obs::MsgId::NONE`] on the disabled fast path. The VMMC
    /// send syscall calls this so the id exists before the first packet.
    pub fn alloc_msg(&self) -> shrimp_obs::MsgId {
        match self.obs.get() {
            Some(rec) => rec.alloc_msg(),
            None => shrimp_obs::MsgId::NONE,
        }
    }

    // ------------------------------------------------------------------
    // Outgoing: automatic update
    // ------------------------------------------------------------------

    fn on_snoop(self: &Arc<Self>, w: SnoopWrite) {
        let entry = match self.opt.lookup(w.paddr.page()) {
            Some(e) => e,
            None => return, // write to an unbound page: not our traffic
        };
        let dst_paddr = entry.dst_ppage * PAGE_SIZE as u64 + w.paddr.offset() as u64;
        let mut data = vec![0u8; w.len];
        self.node.mem().read(w.paddr, &mut data);

        let costs = self.node.costs();
        // Automatic updates have no send syscall: each snooped write run
        // becomes its own causal message (combining keeps the first).
        let msg = self.alloc_msg();
        let flushed = {
            let mut p = self.pktz.lock();
            p.push(OutWrite {
                dst_node: entry.dst_node,
                dst_paddr,
                data: data.into(),
                interrupt: entry.dst_interrupt,
                combine: entry.combine,
                at: w.at,
                msg,
            })
        };
        let lead = costs.nic_snoop + costs.nic_packetize;
        for pkt in flushed {
            self.schedule_inject(lead, pkt, true);
        }
        self.arm_combine_timer();
    }

    /// Arm (or re-arm) the combine timer for the currently open packet.
    fn arm_combine_timer(self: &Arc<Self>) {
        let (gen, deadline) = {
            let p = self.pktz.lock();
            match p.open_last_write_at() {
                None => return,
                Some(at) => (p.generation(), at + self.node.costs().au_combine_timeout),
            }
        };
        let me = Arc::clone(self);
        self.node.sim().schedule_at(deadline, move || {
            let pkt = {
                let mut p = me.pktz.lock();
                if p.generation() != gen {
                    return; // extended or flushed since: stale timer
                }
                p.flush()
            };
            if let Some(pkt) = pkt {
                let costs = me.node.costs();
                me.schedule_inject(costs.nic_snoop + costs.nic_packetize, pkt, true);
            }
        });
    }

    /// Close any held combining packet immediately (ordering flushes and
    /// unbind paths).
    pub fn flush_combining(self: &Arc<Self>) {
        let pkt = self.pktz.lock().flush();
        if let Some(pkt) = pkt {
            self.schedule_inject(self.node.costs().nic_packetize, pkt, true);
        }
    }

    fn schedule_inject(self: &Arc<Self>, after: SimDur, pkt: OutPacket, is_au: bool) {
        {
            let mut st = self.stats.lock();
            if is_au {
                st.au_packets_out += 1;
            } else {
                st.du_packets_out += 1;
            }
            st.bytes_out += pkt.data.len() as u64;
        }
        // Enter the outgoing FIFO: a packet never departs before one
        // enqueued earlier, even when its datapath has a shorter
        // processing lead (ties run in enqueue order).
        let now = self.node.sim().now();
        let at = {
            let mut tail = self.out_tail.lock();
            let at = (now + after).max(*tail);
            *tail = at;
            at
        };
        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg: pkt.msg,
                node: self.node.id().0,
                layer: shrimp_obs::Layer::NicOut,
                name: if is_au {
                    "au_packetize"
                } else {
                    "du_packetize"
                },
                start: now,
                end: at,
                bytes: pkt.data.len(),
            });
        }
        let me = Arc::clone(self);
        self.node.sim().schedule_at(at, move || {
            let bytes = pkt.data.len();
            me.net.inject_msg(
                me.node.id(),
                pkt.dst_node,
                bytes,
                NicPacket {
                    dst_paddr: pkt.dst_paddr,
                    data: pkt.data,
                    interrupt: pkt.interrupt,
                    kind: PacketKind::Data,
                    msg: pkt.msg,
                },
                pkt.msg,
            );
        });
    }

    // ------------------------------------------------------------------
    // Outgoing: deliberate update
    // ------------------------------------------------------------------

    /// Execute a deliberate-update transfer: DMA the source out of main
    /// memory in packet-sized pieces, packetize, and inject. `done` fires
    /// once the final piece has been injected (the source buffer is then
    /// reusable and all packets are ordered ahead of any later traffic).
    ///
    /// # Panics
    ///
    /// Panics unless source, destination, and length are word-aligned and
    /// the length is positive — the hardware restriction the paper's
    /// libraries must design around (§4, §6).
    pub fn du_transfer(
        self: &Arc<Self>,
        req: DuRequest,
        done: impl FnOnce(SimTime) + Send + 'static,
    ) {
        assert!(req.len > 0, "deliberate update of zero bytes");
        assert!(
            req.src.0.is_multiple_of(4)
                && req.dst_paddr.is_multiple_of(4)
                && req.len.is_multiple_of(4),
            "deliberate update requires word-aligned source, destination, and length"
        );
        // FIFO ordering with any held automatic-update packet.
        self.flush_combining();
        let me = Arc::clone(self);
        let setup = self.node.costs().du_engine_setup;
        self.node.sim().schedule_in(setup, move || {
            me.du_chunk(req, 0, Box::new(done));
        });
    }

    fn du_chunk(
        self: &Arc<Self>,
        req: DuRequest,
        off: usize,
        done: Box<dyn FnOnce(SimTime) + Send>,
    ) {
        let addr = req.dst_paddr + off as u64;
        let to_page_end = (PAGE_SIZE as u64 - addr % PAGE_SIZE as u64) as usize;
        let n = (req.len - off)
            .min(self.node.costs().max_packet_payload)
            .min(to_page_end);
        let me = Arc::clone(self);
        self.node
            .dma_read(PAddr(req.src.0 + off as u64), n, move |_t, data| {
                let is_last = off + n == req.len;
                let pkt = OutPacket {
                    dst_node: req.dst_node,
                    dst_paddr: addr,
                    data: data.into(),
                    // The destination interrupt rides on the final packet so
                    // the notification fires after all data has landed.
                    interrupt: req.interrupt && is_last,
                    msg: req.msg,
                };
                me.schedule_inject(me.node.costs().nic_packetize, pkt, false);
                if is_last {
                    done(me.node.sim().now());
                } else {
                    me.du_chunk(req, off + n, done);
                }
            });
    }

    // ------------------------------------------------------------------
    // Incoming
    // ------------------------------------------------------------------

    fn on_incoming(self: &Arc<Self>, d: Delivery<NicPacket>) {
        let pkt = d.payload;
        match pkt.kind {
            PacketKind::Data => {
                {
                    let mut fz = self.freeze.lock();
                    if fz.frozen {
                        fz.pending.push_back(pkt);
                        return;
                    }
                }
                self.receive(pkt);
            }
            // The fetch engine is a separate datapath: requests do not
            // deposit (no IPT-freeze interaction) and replies land in a
            // region the local fetch engine validated at issue time, so
            // neither class queues behind a receive freeze.
            PacketKind::FetchReq(desc) => self.serve_fetch(desc, pkt.msg),
            PacketKind::FetchReply {
                fetch,
                offset,
                last,
            } => self.on_fetch_reply(fetch, offset, last, pkt.data, pkt.msg),
            PacketKind::FetchNak { fetch, reason } => self.on_fetch_nak(fetch, reason),
        }
    }

    fn receive(self: &Arc<Self>, pkt: NicPacket) {
        let ppage = pkt.dst_paddr / PAGE_SIZE as u64;
        debug_assert!(
            (pkt.dst_paddr + pkt.data.len() as u64 - 1) / PAGE_SIZE as u64 == ppage,
            "packet crosses a destination page"
        );
        let entry = self.ipt.get(ppage);
        if !entry.enabled {
            {
                let mut fz = self.freeze.lock();
                fz.frozen = true;
                fz.pending.push_back(pkt);
                self.stats.lock().freezes += 1;
            }
            self.node.raise_interrupt(Interrupt {
                vector: IRQ_RECV_FREEZE,
                info: ppage,
            });
            return;
        }
        self.pending_recv_dma.fetch_add(1, Ordering::SeqCst);
        let me = Arc::clone(self);
        let check = self.node.costs().nic_ipt_check;
        // An injected DMA stall holds the packet (post-IPT-check) until
        // the window passes; order is preserved since later packets pass
        // through the same windows.
        let at = {
            let w = self.recv_stall.lock();
            w.release(self.node.sim().now() + check)
        };
        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg: pkt.msg,
                node: self.node.id().0,
                layer: shrimp_obs::Layer::NicIn,
                name: "ipt_check",
                start: self.node.sim().now(),
                end: at,
                bytes: pkt.data.len(),
            });
        }
        self.node.sim().schedule_at(at, move || {
            let dst = PAddr(pkt.dst_paddr);
            let want_irq = pkt.interrupt;
            let bytes = pkt.data.len();
            let msg = pkt.msg;
            let me2 = Arc::clone(&me);
            me.node.dma_write(dst, pkt.data, move |t| {
                {
                    let mut st = me2.stats.lock();
                    st.packets_in += 1;
                    st.bytes_in += bytes as u64;
                }
                if let Some(rec) = me2.obs.get() {
                    rec.push(shrimp_obs::SpanRec {
                        msg,
                        node: me2.node.id().0,
                        layer: shrimp_obs::Layer::Deposit,
                        name: "dma_write",
                        start: at,
                        end: t,
                        bytes,
                    });
                }
                let entry_now = me2.ipt.get(ppage);
                if want_irq && entry_now.interrupt {
                    me2.node.raise_interrupt(Interrupt {
                        vector: IRQ_NOTIFICATION,
                        info: ppage,
                    });
                }
                me2.pending_recv_dma.fetch_sub(1, Ordering::SeqCst);
                if me2.has_delivery_hook.load(Ordering::Relaxed) {
                    // Clone out of the lock before calling: the hook may
                    // re-enter the NIC (receiver wakeups can run inline).
                    let hook = me2.delivery_hook.lock().clone();
                    if let Some(h) = hook {
                        h(ppage, t);
                    }
                }
            });
        });
    }

    // ------------------------------------------------------------------
    // Remote fetch (one-sided read)
    // ------------------------------------------------------------------

    /// Issue a remote fetch: emit a request descriptor to the remote
    /// NIC, which validates the source page against its incoming page
    /// table (receive-enabled *and* read-permitted), DMAs the data out
    /// of its memory without involving the remote CPU, and streams reply
    /// packets back. `done` fires with the completion time of the final
    /// reply deposit, or with the typed NAK reason on refusal.
    ///
    /// # Panics
    ///
    /// Panics unless source, destination, and length are word-aligned
    /// and the length is positive — the same hardware restriction as the
    /// deliberate-update engine. Debug builds additionally assert the
    /// range stays within one source and one destination page (the VMMC
    /// layer chunks larger fetches).
    pub fn fetch(
        self: &Arc<Self>,
        req: FetchRequest,
        done: impl FnOnce(Result<SimTime, NakReason>) + Send + 'static,
    ) {
        assert!(req.len > 0, "remote fetch of zero bytes");
        assert!(
            req.src_paddr.is_multiple_of(4)
                && req.dst_paddr.is_multiple_of(4)
                && req.len.is_multiple_of(4),
            "remote fetch requires word-aligned source, destination, and length"
        );
        debug_assert!(
            (req.src_paddr + req.len as u64 - 1) / PAGE_SIZE as u64
                == req.src_paddr / PAGE_SIZE as u64,
            "fetch crosses a source page"
        );
        debug_assert!(
            (req.dst_paddr + req.len as u64 - 1) / PAGE_SIZE as u64
                == req.dst_paddr / PAGE_SIZE as u64,
            "fetch crosses a destination page"
        );
        let fetch = self.next_fetch.fetch_add(1, Ordering::SeqCst);
        self.fetches.lock().insert(
            fetch,
            PendingFetch {
                dst_paddr: req.dst_paddr,
                expect: req.len,
                received: 0,
                outstanding: 0,
                saw_last: false,
                done: Some(Box::new(done)),
            },
        );
        self.stats.lock().fetch_reqs_out += 1;
        // FIFO ordering with any held automatic-update packet.
        self.flush_combining();
        let desc = FetchDesc {
            from: self.node.id(),
            fetch,
            src_paddr: req.src_paddr,
            len: req.len,
        };
        let me = Arc::clone(self);
        let setup = self.node.costs().fetch_engine_setup;
        let dst_node = req.src_node;
        let msg = req.msg;
        self.node.sim().schedule_in(setup, move || {
            let lead = me.node.costs().nic_packetize;
            me.inject_ctl(lead, dst_node, PacketKind::FetchReq(desc), msg, "fetch_req");
        });
    }

    /// Inject a header-only control packet (fetch request or NAK)
    /// through the outgoing FIFO.
    fn inject_ctl(
        self: &Arc<Self>,
        after: SimDur,
        dst_node: NodeId,
        kind: PacketKind,
        msg: shrimp_obs::MsgId,
        span: &'static str,
    ) {
        let now = self.node.sim().now();
        let at = {
            let mut tail = self.out_tail.lock();
            let at = (now + after).max(*tail);
            *tail = at;
            at
        };
        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node.id().0,
                layer: shrimp_obs::Layer::NicOut,
                name: span,
                start: now,
                end: at,
                bytes: 0,
            });
        }
        let me = Arc::clone(self);
        self.node.sim().schedule_at(at, move || {
            me.net.inject_ctl_msg(
                me.node.id(),
                dst_node,
                NicPacket {
                    dst_paddr: 0,
                    data: Vec::new().into(),
                    interrupt: false,
                    kind,
                    msg,
                },
                msg,
            );
        });
    }

    /// Responder datapath: validate an arriving fetch request against
    /// the incoming page table and either NAK it or DMA the data out of
    /// main memory and stream the reply.
    fn serve_fetch(self: &Arc<Self>, desc: FetchDesc, msg: shrimp_obs::MsgId) {
        self.stats.lock().fetch_reqs_in += 1;
        let check = self.node.costs().nic_ipt_check;
        if self.daemon_down.load(Ordering::SeqCst) {
            self.stats.lock().fetch_denials += 1;
            self.inject_ctl(
                check,
                desc.from,
                PacketKind::FetchNak {
                    fetch: desc.fetch,
                    reason: NakReason::DaemonDown,
                },
                msg,
                "fetch_nak",
            );
            return;
        }
        let ppage = desc.src_paddr / PAGE_SIZE as u64;
        // The fetch path uses `lookup`, not `get`: an unmapped page is an
        // explicit protocol error, never a silent default entry.
        let reason = match self.ipt.lookup(ppage) {
            None => Some(NakReason::Unmapped { ppage }),
            Some(e) if !e.enabled || !e.read => {
                // A read-exported page that is merely receive-disabled is
                // a protection fault the OS can repair: freeze and
                // interrupt exactly like the deposit path, so the daemon
                // re-validates the mapping while the requester retries on
                // the NAK. A page exported without read permission is
                // refused outright — no repair would grant it.
                if e.read && !e.enabled {
                    let raise = {
                        let mut fz = self.freeze.lock();
                        if fz.frozen {
                            false
                        } else {
                            fz.frozen = true;
                            self.stats.lock().freezes += 1;
                            true
                        }
                    };
                    if raise {
                        self.node.raise_interrupt(Interrupt {
                            vector: IRQ_RECV_FREEZE,
                            info: ppage,
                        });
                    }
                }
                Some(NakReason::Denied { ppage })
            }
            Some(_) => None,
        };
        if let Some(reason) = reason {
            self.stats.lock().fetch_denials += 1;
            self.inject_ctl(
                check,
                desc.from,
                PacketKind::FetchNak {
                    fetch: desc.fetch,
                    reason,
                },
                msg,
                "fetch_nak",
            );
            return;
        }
        let depth = self.serving_fetches.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut st = self.stats.lock();
            st.fetch_queue_peak = st.fetch_queue_peak.max(depth);
        }
        let now = self.node.sim().now();
        if let Some(rec) = self.obs.get() {
            rec.instant(
                now,
                Some(self.node.id().0),
                format!("fetch_queue_depth={depth}"),
            );
        }
        // An injected fetch-engine stall holds the accepted request
        // (post-IPT-check) until the window passes, delaying the reply.
        let at = {
            let w = self.fetch_stall.lock();
            w.release(now + check)
        };
        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node.id().0,
                layer: shrimp_obs::Layer::NicIn,
                name: "fetch_ipt_check",
                start: now,
                end: at,
                bytes: desc.len,
            });
        }
        let me = Arc::clone(self);
        self.node.sim().schedule_at(at, move || {
            let me2 = Arc::clone(&me);
            me.node
                .dma_read(PAddr(desc.src_paddr), desc.len, move |t, data| {
                    if let Some(rec) = me2.obs.get() {
                        rec.push(shrimp_obs::SpanRec {
                            msg,
                            node: me2.node.id().0,
                            layer: shrimp_obs::Layer::NicIn,
                            name: "fetch_read",
                            start: at,
                            end: t,
                            bytes: desc.len,
                        });
                    }
                    me2.fetch_reply_chunk(desc, data.into(), 0, msg);
                });
        });
    }

    /// Stream one reply chunk into the outgoing FIFO, then recurse for
    /// the rest of the fetched data.
    fn fetch_reply_chunk(
        self: &Arc<Self>,
        desc: FetchDesc,
        data: SimBuf,
        off: usize,
        msg: shrimp_obs::MsgId,
    ) {
        let n = (desc.len - off).min(self.node.costs().max_packet_payload);
        let last = off + n == desc.len;
        let chunk = data.slice(off..off + n);
        {
            let mut st = self.stats.lock();
            st.fetch_replies_out += 1;
            st.bytes_out += n as u64;
        }
        let now = self.node.sim().now();
        let at = {
            let mut tail = self.out_tail.lock();
            let at = (now + self.node.costs().nic_packetize).max(*tail);
            *tail = at;
            at
        };
        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: self.node.id().0,
                layer: shrimp_obs::Layer::NicOut,
                name: "fetch_reply",
                start: now,
                end: at,
                bytes: n,
            });
        }
        let me = Arc::clone(self);
        self.node.sim().schedule_at(at, move || {
            me.net.inject_msg(
                me.node.id(),
                desc.from,
                n,
                NicPacket {
                    dst_paddr: 0,
                    data: chunk,
                    interrupt: false,
                    kind: PacketKind::FetchReply {
                        fetch: desc.fetch,
                        offset: off,
                        last,
                    },
                    msg,
                },
                msg,
            );
            if last {
                let depth = me.serving_fetches.fetch_sub(1, Ordering::SeqCst) - 1;
                if let Some(rec) = me.obs.get() {
                    rec.instant(
                        me.node.sim().now(),
                        Some(me.node.id().0),
                        format!("fetch_queue_depth={depth}"),
                    );
                }
            } else {
                me.fetch_reply_chunk(desc, data, off + n, msg);
            }
        });
    }

    /// Requester datapath: deposit one arriving reply chunk at the
    /// address recorded in the pending-fetch table.
    fn on_fetch_reply(
        self: &Arc<Self>,
        fetch: u64,
        offset: usize,
        last: bool,
        data: SimBuf,
        msg: shrimp_obs::MsgId,
    ) {
        let dst = {
            let mut g = self.fetches.lock();
            match g.get_mut(&fetch) {
                None => return, // fetch already failed; stale chunk
                Some(p) => {
                    p.outstanding += 1;
                    if last {
                        p.saw_last = true;
                    }
                    p.dst_paddr + offset as u64
                }
            }
        };
        {
            let mut st = self.stats.lock();
            st.fetch_replies_in += 1;
            st.bytes_in += data.len() as u64;
        }
        // Reply deposits bypass the IPT check: the local fetch engine
        // validated and pinned the reply region at issue time. Injected
        // incoming-DMA stalls still apply.
        let now = self.node.sim().now();
        let at = {
            let w = self.recv_stall.lock();
            w.release(now)
        };
        let bytes = data.len();
        let me = Arc::clone(self);
        let deposit = move || {
            let me2 = Arc::clone(&me);
            me.node.dma_write(PAddr(dst), data, move |t| {
                if let Some(rec) = me2.obs.get() {
                    rec.push(shrimp_obs::SpanRec {
                        msg,
                        node: me2.node.id().0,
                        layer: shrimp_obs::Layer::Deposit,
                        name: "fetch_deposit",
                        start: at,
                        end: t,
                        bytes,
                    });
                }
                me2.finish_fetch_chunk(fetch, bytes, t);
            });
        };
        if at > now {
            self.node.sim().schedule_at(at, deposit);
        } else {
            deposit();
        }
    }

    /// Book a completed reply-chunk DMA; completes the fetch when the
    /// final chunk has landed and no DMA is outstanding.
    fn finish_fetch_chunk(&self, fetch: u64, bytes: usize, t: SimTime) {
        let done = {
            let mut g = self.fetches.lock();
            let complete = match g.get_mut(&fetch) {
                None => return,
                Some(p) => {
                    p.outstanding -= 1;
                    p.received += bytes;
                    p.saw_last && p.outstanding == 0 && p.received == p.expect
                }
            };
            if complete {
                g.remove(&fetch).and_then(|mut p| p.done.take())
            } else {
                None
            }
        };
        if let Some(done) = done {
            done(Ok(t));
        }
    }

    /// Requester datapath: a typed NAK fails the whole fetch.
    fn on_fetch_nak(self: &Arc<Self>, fetch: u64, reason: NakReason) {
        self.stats.lock().fetch_naks_in += 1;
        let done = {
            let mut g = self.fetches.lock();
            g.remove(&fetch).and_then(|mut p| p.done.take())
        };
        if let Some(done) = done {
            done(Err(reason));
        }
    }

    /// Mark the local daemon down (or back up). While down, the fetch
    /// engine NAKs every arriving request with
    /// [`NakReason::DaemonDown`].
    pub fn set_daemon_down(&self, down: bool) {
        self.daemon_down.store(down, Ordering::SeqCst);
    }

    /// Whether the local daemon is marked down.
    pub fn is_daemon_down(&self) -> bool {
        self.daemon_down.load(Ordering::SeqCst)
    }

    /// Packets accepted by the incoming datapath whose DMA has not yet
    /// completed, plus any packet held open in the combining buffer,
    /// plus fetches in flight on either side. Zero means this NIC is
    /// quiescent; the VMMC unexport/unimport drain uses this.
    pub fn in_flight(&self) -> u64 {
        let open = if self.pktz.lock().has_open() { 1 } else { 0 };
        self.pending_recv_dma.load(Ordering::SeqCst)
            + open
            + self.fetches.lock().len() as u64
            + self.serving_fetches.load(Ordering::SeqCst)
    }

    /// Whether the receive datapath is frozen.
    pub fn is_frozen(&self) -> bool {
        self.freeze.lock().frozen
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks (see `shrimp_sim::faults`)
    // ------------------------------------------------------------------

    /// Fault hook: stall the incoming DMA engine for `dur` starting at
    /// `start`. Accepted packets are held (in order) until the window
    /// passes; nothing is dropped.
    pub fn stall_incoming_dma(&self, start: SimTime, dur: SimDur) {
        self.recv_stall.lock().add_stall(start, dur);
    }

    /// Fault hook: stall the responder-side fetch engine for `dur`
    /// starting at `start`. Accepted fetch requests are held (in order)
    /// until the window passes, so replies to remote requesters stall;
    /// nothing is dropped.
    pub fn stall_fetch_engine(&self, start: SimTime, dur: SimDur) {
        self.fetch_stall.lock().add_stall(start, dur);
    }

    /// Fault hook: force an incoming-page-table protection violation by
    /// disabling the lowest-numbered enabled page. The next packet for
    /// that page freezes the receive datapath and raises
    /// [`IRQ_RECV_FREEZE`], exercising the paper's freeze-and-interrupt
    /// recovery path end-to-end. Returns the victim page, or `None` if
    /// no page is enabled.
    pub fn inject_ipt_violation(&self) -> Option<u64> {
        let victim = self.ipt.enabled_pages().into_iter().next()?;
        self.ipt.disable(victim);
        Some(victim)
    }

    /// Unfreeze the receive datapath (the OS does this after repairing
    /// the incoming page table) and reprocess the queued packets. If a
    /// queued packet still targets a disabled page the datapath refreezes
    /// at that packet.
    pub fn unfreeze(self: &Arc<Self>) {
        loop {
            let pkt = {
                let mut fz = self.freeze.lock();
                fz.frozen = false;
                match fz.pending.pop_front() {
                    None => return,
                    Some(p) => p,
                }
            };
            let ppage = pkt.dst_paddr / PAGE_SIZE as u64;
            if !self.ipt.get(ppage).enabled {
                let mut fz = self.freeze.lock();
                fz.frozen = true;
                fz.pending.push_front(pkt);
                self.stats.lock().freezes += 1;
                self.node.raise_interrupt(Interrupt {
                    vector: IRQ_RECV_FREEZE,
                    info: ppage,
                });
                return;
            }
            self.receive(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mesh::{LinkParams, Mesh2D, TopologyRef};
    use shrimp_node::{CacheMode, CostModel, UserProc};
    use shrimp_sim::Kernel;

    struct Rig {
        kernel: Kernel,
        nics: Vec<Arc<Nic>>,
        procs: Vec<UserProc>,
    }

    fn rig(n_nodes: usize) -> Rig {
        rig_with(n_nodes, CostModel::shrimp_prototype())
    }

    fn rig_with(n_nodes: usize, costs: CostModel) -> Rig {
        let kernel = Kernel::new();
        let topo: TopologyRef = if n_nodes <= 4 {
            Arc::new(Mesh2D::shrimp_prototype())
        } else {
            Arc::new(Mesh2D::new(4, 4))
        };
        let net: Arc<Backplane<NicPacket>> =
            Backplane::new(kernel.handle(), topo, LinkParams::paragon());
        let mut nics = Vec::new();
        let mut procs = Vec::new();
        for i in 0..n_nodes {
            let node = Node::new(kernel.handle(), NodeId(i), 256, costs.clone());
            node.set_interrupt_hook(|_| {});
            nics.push(Nic::install(Arc::clone(&node), Arc::clone(&net)));
            procs.push(UserProc::new(node, format!("p{i}")));
        }
        Rig {
            kernel,
            nics,
            procs,
        }
    }

    /// Map one page on the receiver, enable it in the IPT, bind one page
    /// on the sender's OPT to it; returns (send_va, recv_va).
    fn bind_one_page(
        r: &Rig,
        sender: usize,
        receiver: usize,
        combine: bool,
    ) -> (shrimp_node::VAddr, shrimp_node::VAddr) {
        let send_va = r.procs[sender].alloc(PAGE_SIZE, CacheMode::WriteThrough);
        let recv_va = r.procs[receiver].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (send_pa, _) = r.procs[sender].aspace().translate(send_va, true).unwrap();
        let (recv_pa, _) = r.procs[receiver].aspace().translate(recv_va, true).unwrap();
        r.nics[receiver].ipt().set(
            recv_pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        r.nics[sender].opt().bind(
            send_pa.page(),
            OptEntry {
                dst_node: NodeId(receiver),
                dst_ppage: recv_pa.page(),
                combine,
                dst_interrupt: false,
            },
        );
        (send_va, recv_va)
    }

    #[test]
    fn automatic_update_propagates_stores() {
        let r = rig(2);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, true);
        let p0 = r.procs[0].clone();
        let p1 = r.procs[1].clone();
        r.kernel.spawn("writer", move |ctx| {
            p0.write(ctx, send_va.add(16), b"automatic update!")
                .unwrap();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(p1.peek(recv_va.add(16), 17).unwrap(), b"automatic update!");
        let st = r.nics[0].stats();
        assert_eq!(st.au_packets_out, 1);
        assert_eq!(r.nics[1].stats().packets_in, 1);
    }

    #[test]
    fn combining_merges_consecutive_stores_into_one_packet() {
        // A generous combine window so the two separate store runs land
        // within it (the default window is sized for streaming copies).
        let mut costs = CostModel::shrimp_prototype();
        costs.au_combine_timeout = shrimp_sim::SimDur::from_us(10.0);
        let r = rig_with(2, costs);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, true);
        let p0 = r.procs[0].clone();
        let p1 = r.procs[1].clone();
        r.kernel.spawn("writer", move |ctx| {
            // Two immediately-consecutive write runs: combined by the NIC.
            p0.write(ctx, send_va, &[1u8; 8]).unwrap();
            p0.write(ctx, send_va.add(8), &[2u8; 8]).unwrap();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(r.nics[0].stats().au_packets_out, 1);
        assert_eq!(p1.peek(recv_va, 16).unwrap(), [[1u8; 8], [2u8; 8]].concat());
    }

    #[test]
    fn without_combining_each_store_run_is_a_packet() {
        let r = rig(2);
        let (send_va, _recv_va) = bind_one_page(&r, 0, 1, false);
        let p0 = r.procs[0].clone();
        r.kernel.spawn("writer", move |ctx| {
            p0.write(ctx, send_va, &[1u8; 8]).unwrap();
            p0.write(ctx, send_va.add(8), &[2u8; 8]).unwrap();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(r.nics[0].stats().au_packets_out, 2);
    }

    #[test]
    fn combine_timer_flushes_lone_write() {
        let r = rig(2);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, true);
        let p0 = r.procs[0].clone();
        let p1 = r.procs[1].clone();
        let done_at = Arc::new(Mutex::new(SimTime::ZERO));
        let d = Arc::clone(&done_at);
        r.kernel.spawn("writer", move |ctx| {
            p0.write_u32(ctx, send_va, 0x1234_5678).unwrap();
            *d.lock() = ctx.now();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(p1.peek(recv_va, 4).unwrap(), 0x1234_5678u32.to_le_bytes());
        // Delivery happened strictly after the combine timeout elapsed.
        let ct = CostModel::shrimp_prototype().au_combine_timeout;
        let delivered = r.kernel.now();
        assert!(delivered >= *done_at.lock() + ct);
    }

    #[test]
    fn deliberate_update_moves_data_and_signals_done() {
        let r = rig(2);
        let src_va = r.procs[0].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let dst_va = r.procs[1].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        let (dst_pa, _) = r.procs[1].aspace().translate(dst_va, true).unwrap();
        r.nics[1].ipt().set(
            dst_pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        r.procs[0].poke(src_va, &vec![0x5A; 2048]).unwrap();
        let done = Arc::new(Mutex::new(None));
        let d = Arc::clone(&done);
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: dst_pa.0,
                len: 2048,
                interrupt: false,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |t| *d.lock() = Some(t),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(done.lock().is_some());
        assert_eq!(r.procs[1].peek(dst_va, 2048).unwrap(), vec![0x5A; 2048]);
        assert_eq!(r.nics[0].stats().du_packets_out, 1);
    }

    #[test]
    fn large_du_splits_into_max_payload_packets() {
        let r = rig(2);
        let src_va = r.procs[0].alloc(3 * PAGE_SIZE, CacheMode::WriteBack);
        let dst_va = r.procs[1].alloc(3 * PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        let (dst_pa, _) = r.procs[1].aspace().translate(dst_va, true).unwrap();
        for p in 0..3 {
            r.nics[1].ipt().set(
                dst_pa.page() + p,
                IptEntry {
                    enabled: true,
                    interrupt: false,
                    read: false,
                },
            );
        }
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        r.procs[0].poke(src_va, &data).unwrap();
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: dst_pa.0,
                len: 3 * PAGE_SIZE,
                interrupt: false,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(r.procs[1].peek(dst_va, 3 * PAGE_SIZE).unwrap(), data);
        let expected = (3 * PAGE_SIZE).div_ceil(CostModel::shrimp_prototype().max_packet_payload);
        assert_eq!(r.nics[0].stats().du_packets_out, expected as u64);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_du_is_rejected_by_hardware() {
        let r = rig(2);
        r.nics[0].du_transfer(
            DuRequest {
                src: PAddr(2),
                dst_node: NodeId(1),
                dst_paddr: 0,
                len: 4,
                interrupt: false,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
    }

    #[test]
    fn packet_to_disabled_page_freezes_and_interrupts() {
        let r = rig(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        r.nics[1]
            .node()
            .set_interrupt_hook(move |irq| s.lock().push(irq.vector));
        let src_va = r.procs[0].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        // Destination page 10 on node 1 was never enabled.
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: 10 * PAGE_SIZE as u64,
                len: 64,
                interrupt: false,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(r.nics[1].is_frozen());
        assert_eq!(*seen.lock(), vec![IRQ_RECV_FREEZE]);
        assert_eq!(r.nics[1].stats().packets_in, 0);
    }

    #[test]
    fn unfreeze_after_enable_delivers_pending() {
        let r = rig(2);
        r.nics[1].node().set_interrupt_hook(|_| {});
        let src_va = r.procs[0].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        r.procs[0].poke(src_va, &[7u8; 64]).unwrap();
        let dst = 10 * PAGE_SIZE as u64;
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: dst,
                len: 64,
                interrupt: false,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(r.nics[1].is_frozen());
        // OS repairs the IPT and unfreezes.
        r.nics[1].ipt().set(
            10,
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        r.nics[1].unfreeze();
        r.kernel.run_until_quiescent().unwrap();
        let mut out = vec![0u8; 64];
        r.nics[1].node().mem().read(PAddr(dst), &mut out);
        assert_eq!(out, [7u8; 64]);
        assert_eq!(r.nics[1].stats().packets_in, 1);
    }

    #[test]
    fn notification_interrupt_requires_both_flags() {
        let r = rig(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        r.nics[1]
            .node()
            .set_interrupt_hook(move |irq| s.lock().push((irq.vector, irq.info)));
        let src_va = r.procs[0].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        let dst_va = r.procs[1].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (dst_pa, _) = r.procs[1].aspace().translate(dst_va, true).unwrap();

        // Case 1: sender flag set, receiver flag clear -> no interrupt.
        r.nics[1].ipt().set(
            dst_pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: dst_pa.0,
                len: 4,
                interrupt: true,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(seen.lock().is_empty());

        // Case 2: both flags set -> notification interrupt with the page.
        r.nics[1].ipt().set_interrupt(dst_pa.page(), true);
        r.nics[0].du_transfer(
            DuRequest {
                src: src_pa,
                dst_node: NodeId(1),
                dst_paddr: dst_pa.0,
                len: 4,
                interrupt: true,
                msg: shrimp_obs::MsgId::NONE,
            },
            |_| {},
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(*seen.lock(), vec![(IRQ_NOTIFICATION, dst_pa.page())]);
    }

    #[test]
    fn explicit_flush_does_not_overtake_pending_packet() {
        // Regression: a non-consecutive write closes the open packet
        // (scheduled with the snoop+packetize lead) and opens a new one;
        // an immediate flush_combining (shorter lead) must not let the
        // new packet overtake the first in the outgoing FIFO.
        let r = rig(2);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, true);
        let p0 = r.procs[0].clone();
        let nic0 = Arc::clone(&r.nics[0]);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let order = Arc::clone(&order);
            let (recv_pa, _) = r.procs[1].aspace().translate(recv_va, false).unwrap();
            let base = recv_pa.0;
            r.nics[1].set_delivery_hook(move |_ppage, _| {
                order.lock().push(base); // count deliveries in order
            });
        }
        let p1 = r.procs[1].clone();
        r.kernel.spawn("writer", move |ctx| {
            p0.write(ctx, send_va.add(64), b"0123456789abcdef").unwrap();
            // Non-consecutive: closes the 16-byte packet, opens this one.
            p0.write_u32(ctx, send_va.add(4000), 7).unwrap();
            // Explicit flush with the short lead.
            nic0.flush_combining();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(order.lock().len(), 2);
        // In-order delivery: the data must be present once the flag is.
        assert_eq!(p1.peek(recv_va.add(64), 16).unwrap(), b"0123456789abcdef");
        assert_eq!(
            u32::from_le_bytes(p1.peek(recv_va.add(4000), 4).unwrap().try_into().unwrap()),
            7
        );
    }

    #[test]
    fn incoming_dma_stall_delays_delivery_in_order() {
        let r = rig(2);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, false);
        // Incoming DMA on node 1 stalls for 200 us from t=0.
        r.nics[1].stall_incoming_dma(SimTime::ZERO, SimDur::from_us(200.0));
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        r.nics[1].set_delivery_hook(move |_p, at| t.lock().push(at));
        let p0 = r.procs[0].clone();
        r.kernel.spawn("writer", move |ctx| {
            p0.write(ctx, send_va, &[1u8; 8]).unwrap();
            p0.write(ctx, send_va.add(8), &[2u8; 8]).unwrap();
        });
        r.kernel.run_until_quiescent().unwrap();
        let v = times.lock().clone();
        assert_eq!(v.len(), 2, "both packets eventually land");
        assert!(
            v[0] >= SimTime::ZERO + SimDur::from_us(200.0),
            "first DMA completes only after the stall: {}",
            v[0]
        );
        assert!(v[0] <= v[1], "held packets stay ordered");
        let p1 = r.procs[1].clone();
        assert_eq!(p1.peek(recv_va, 16).unwrap(), [[1u8; 8], [2u8; 8]].concat());
    }

    #[test]
    fn injected_ipt_violation_freezes_then_recovers() {
        let r = rig(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        r.nics[1]
            .node()
            .set_interrupt_hook(move |irq| s.lock().push(irq.vector));
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, false);
        // Deterministic victim: the only enabled page.
        let victim = r.nics[1].inject_ipt_violation().expect("one page enabled");
        assert_eq!(
            r.nics[1].inject_ipt_violation(),
            None,
            "no enabled page left"
        );
        let p0 = r.procs[0].clone();
        r.kernel.spawn("writer", move |ctx| {
            p0.write(ctx, send_va, b"recoverme").unwrap();
        });
        r.kernel.run_until_quiescent().unwrap();
        assert!(r.nics[1].is_frozen());
        assert_eq!(*seen.lock(), vec![IRQ_RECV_FREEZE]);
        // OS repairs and unfreezes: the held packet lands intact.
        r.nics[1].ipt().set(
            victim,
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        r.nics[1].unfreeze();
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(r.procs[1].peek(recv_va, 9).unwrap(), b"recoverme");
        assert_eq!(r.nics[1].stats().packets_in, 1);
    }

    /// Export one read-enabled page on `owner`, fill it with `data`,
    /// and return its physical page base address.
    fn export_read_page(r: &Rig, owner: usize, data: &[u8]) -> u64 {
        let va = r.procs[owner].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (pa, _) = r.procs[owner].aspace().translate(va, true).unwrap();
        r.nics[owner].ipt().set(
            pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: true,
            },
        );
        r.procs[owner].poke(va, data).unwrap();
        pa.0
    }

    /// Allocate a reply page on `owner`; returns (va, paddr).
    fn reply_page(r: &Rig, owner: usize) -> (shrimp_node::VAddr, u64) {
        let va = r.procs[owner].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (pa, _) = r.procs[owner].aspace().translate(va, true).unwrap();
        (va, pa.0)
    }

    #[test]
    fn remote_fetch_round_trip() {
        let r = rig(2);
        let data: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        let src = export_read_page(&r, 1, &data);
        let (dst_va, dst_pa) = reply_page(&r, 0);
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: 512,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *g.lock() = Some(res),
        );
        r.kernel.run_until_quiescent().unwrap();
        let res = got.lock().take().expect("fetch completed");
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(r.procs[0].peek(dst_va, 512).unwrap(), data);
        let st0 = r.nics[0].stats();
        assert_eq!(st0.fetch_reqs_out, 1);
        assert_eq!(st0.fetch_replies_in, 1);
        let st1 = r.nics[1].stats();
        assert_eq!(st1.fetch_reqs_in, 1);
        assert_eq!(st1.fetch_replies_out, 1);
        assert_eq!(st1.fetch_denials, 0);
        assert_eq!(r.nics[0].in_flight(), 0, "fetch table drained");
        assert_eq!(r.nics[1].in_flight(), 0, "serve counter drained");
    }

    #[test]
    fn large_fetch_streams_multiple_reply_packets() {
        let r = rig(2);
        let data: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 249) as u8).collect();
        let src = export_read_page(&r, 1, &data);
        let (dst_va, dst_pa) = reply_page(&r, 0);
        let ok = Arc::new(Mutex::new(false));
        let o = Arc::clone(&ok);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: PAGE_SIZE,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *o.lock() = res.is_ok(),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(*ok.lock());
        assert_eq!(r.procs[0].peek(dst_va, PAGE_SIZE).unwrap(), data);
        let expected = PAGE_SIZE.div_ceil(CostModel::shrimp_prototype().max_packet_payload);
        assert_eq!(r.nics[1].stats().fetch_replies_out, expected as u64);
        assert_eq!(r.nics[0].stats().fetch_replies_in, expected as u64);
    }

    #[test]
    fn fetch_of_unmapped_page_gets_typed_nak() {
        let r = rig(2);
        let (_, dst_pa) = reply_page(&r, 0);
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: 17 * PAGE_SIZE as u64,
                len: 64,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *g.lock() = Some(res),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(
            got.lock().take(),
            Some(Err(NakReason::Unmapped { ppage: 17 }))
        );
        assert_eq!(r.nics[1].stats().fetch_denials, 1);
        assert_eq!(r.nics[0].stats().fetch_naks_in, 1);
        assert!(!r.nics[1].is_frozen(), "unmapped page does not freeze");
        assert_eq!(r.nics[0].in_flight(), 0, "failed fetch drained");
    }

    #[test]
    fn fetch_without_read_permission_is_denied() {
        let r = rig(2);
        // Page enabled for deposits but exported without read permission.
        let va = r.procs[1].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (pa, _) = r.procs[1].aspace().translate(va, true).unwrap();
        r.nics[1].ipt().set(
            pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        let (_, dst_pa) = reply_page(&r, 0);
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: pa.0,
                len: 64,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *g.lock() = Some(res),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(
            got.lock().take(),
            Some(Err(NakReason::Denied { ppage: pa.page() }))
        );
        assert!(
            !r.nics[1].is_frozen(),
            "missing read permission is refused without a freeze"
        );
    }

    #[test]
    fn fetch_while_daemon_down_naks() {
        let r = rig(2);
        let src = export_read_page(&r, 1, &[9u8; 64]);
        r.nics[1].set_daemon_down(true);
        let (_, dst_pa) = reply_page(&r, 0);
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: 64,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *g.lock() = Some(res),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(got.lock().take(), Some(Err(NakReason::DaemonDown)));
    }

    #[test]
    fn fetch_of_disabled_read_page_freezes_for_repair_then_retries() {
        let r = rig(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        r.nics[1]
            .node()
            .set_interrupt_hook(move |irq| s.lock().push(irq.vector));
        let data = vec![0xA5u8; 128];
        let src = export_read_page(&r, 1, &data);
        let ppage = src / PAGE_SIZE as u64;
        // Chaos-style violation: the read-exported page gets disabled.
        r.nics[1].ipt().disable(ppage);
        let (dst_va, dst_pa) = reply_page(&r, 0);
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: 128,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *g.lock() = Some(res),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(got.lock().take(), Some(Err(NakReason::Denied { ppage })));
        assert!(r.nics[1].is_frozen(), "deny of a read export freezes");
        assert_eq!(*seen.lock(), vec![IRQ_RECV_FREEZE]);
        // OS repairs (read permission survives) and unfreezes; the
        // requester's retry then succeeds.
        r.nics[1].ipt().repair(ppage);
        r.nics[1].unfreeze();
        let ok = Arc::new(Mutex::new(false));
        let o = Arc::clone(&ok);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: 128,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *o.lock() = res.is_ok(),
        );
        r.kernel.run_until_quiescent().unwrap();
        assert!(*ok.lock());
        assert_eq!(r.procs[0].peek(dst_va, 128).unwrap(), data);
    }

    #[test]
    fn fetch_engine_stall_delays_reply() {
        let r = rig(2);
        let src = export_read_page(&r, 1, &[3u8; 64]);
        r.nics[1].stall_fetch_engine(SimTime::ZERO, SimDur::from_us(150.0));
        let (_, dst_pa) = reply_page(&r, 0);
        let done_at = Arc::new(Mutex::new(None));
        let d = Arc::clone(&done_at);
        r.nics[0].fetch(
            FetchRequest {
                src_node: NodeId(1),
                src_paddr: src,
                len: 64,
                dst_paddr: dst_pa,
                msg: shrimp_obs::MsgId::NONE,
            },
            move |res| *d.lock() = res.ok(),
        );
        r.kernel.run_until_quiescent().unwrap();
        let t = done_at.lock().expect("fetch still completes");
        assert!(
            t >= SimTime::ZERO + SimDur::from_us(150.0),
            "reply held by the stall window: {t}"
        );
    }

    #[test]
    fn responder_queue_depth_peaks_under_stall() {
        // Three fetches land while the responder engine is stalled:
        // they must queue, and the peak counter (plus the obs depth
        // instants) must expose the backlog.
        let rec = shrimp_obs::Recorder::new();
        let r = rig(2);
        r.nics[1].set_obs(Some(Arc::clone(&rec)));
        let src = export_read_page(&r, 1, &[7u8; 64]);
        r.nics[1].stall_fetch_engine(SimTime::ZERO, SimDur::from_us(400.0));
        let (_, dst_pa) = reply_page(&r, 0);
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..3 {
            let d = Arc::clone(&done);
            r.nics[0].fetch(
                FetchRequest {
                    src_node: NodeId(1),
                    src_paddr: src,
                    len: 64,
                    dst_paddr: dst_pa + (i * 64) as u64,
                    msg: shrimp_obs::MsgId::NONE,
                },
                move |_| *d.lock() += 1,
            );
        }
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(*done.lock(), 3);
        let peak = r.nics[1].stats().fetch_queue_peak;
        assert!(peak >= 2, "stalled responder must show a backlog: {peak}");
        let depths: Vec<u64> = rec
            .instants()
            .iter()
            .filter_map(|i| i.label.strip_prefix("fetch_queue_depth=")?.parse().ok())
            .collect();
        assert_eq!(depths.len(), 6, "one instant per accept and per drain");
        assert_eq!(depths.iter().copied().max(), Some(peak));
        assert_eq!(*depths.last().unwrap(), 0, "queue drains to empty");
    }

    #[test]
    fn du_after_au_write_is_not_reordered() {
        // An AU write held open by the combine timer must be flushed
        // ahead of a subsequent deliberate update (FIFO outgoing order).
        let r = rig(2);
        let (send_va, recv_va) = bind_one_page(&r, 0, 1, true);
        let src_va = r.procs[0].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let dst_va = r.procs[1].alloc(PAGE_SIZE, CacheMode::WriteBack);
        let (src_pa, _) = r.procs[0].aspace().translate(src_va, false).unwrap();
        let (dst_pa, _) = r.procs[1].aspace().translate(dst_va, true).unwrap();
        r.nics[1].ipt().set(
            dst_pa.page(),
            IptEntry {
                enabled: true,
                interrupt: false,
                read: false,
            },
        );
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let order = Arc::clone(&order);
            let recv_page = {
                let (recv_pa, _) = r.procs[1].aspace().translate(recv_va, false).unwrap();
                recv_pa.page()
            };
            let du_page = dst_pa.page();
            r.nics[1].set_delivery_hook(move |ppage, _| {
                if ppage == recv_page {
                    order.lock().push("au");
                } else if ppage == du_page {
                    order.lock().push("du");
                }
            });
        }
        let p0 = r.procs[0].clone();
        let nic0 = Arc::clone(&r.nics[0]);
        r.kernel.spawn("writer", move |ctx| {
            // AU write held in the combining buffer...
            p0.write_u32(ctx, send_va, 99).unwrap();
            // ...then immediately a DU transfer (before the combine timer).
            nic0.du_transfer(
                DuRequest {
                    src: src_pa,
                    dst_node: NodeId(1),
                    dst_paddr: dst_pa.0,
                    len: 4,
                    interrupt: false,
                    msg: shrimp_obs::MsgId::NONE,
                },
                |_| {},
            );
        });
        r.kernel.run_until_quiescent().unwrap();
        assert_eq!(*order.lock(), vec!["au", "du"]);
    }
}
