//! Property tests for the topology zoo: the routing invariants every layer
//! above the fabric relies on.
//!
//! * Routes are *valid*: each hop's link exists and leads to the next
//!   hop's router, and the last link lands on the destination's router.
//! * Routes are *minimal* exactly where the topology claims minimality.
//! * Routes are *deterministic* (salt-independent) for every topology that
//!   declares in-order delivery — pairwise path-invariance is precisely
//!   what turns FIFO links into an in-order fabric, so the declaration and
//!   the routing function must agree.

use proptest::prelude::*;
use shrimp_fabric::{
    AdaptiveMesh, DeliveryOrder, Dragonfly, FatTree, Hop, Mesh2D, NodeId, Topology, TopologyRef,
    TopologySpec, Torus2D,
};
use std::sync::Arc;

/// Strategy over every topology kind in the zoo, with small-to-moderate
/// parameters (up to 8×8-class sizes).
fn any_topology() -> impl Strategy<Value = TopologyRef> {
    prop_oneof![
        (1usize..9, 1usize..9).prop_map(|(w, h)| Arc::new(Mesh2D::new(w, h)) as TopologyRef),
        (1usize..9, 1usize..9).prop_map(|(w, h)| Arc::new(Torus2D::new(w, h)) as TopologyRef),
        (1usize..9, 1usize..9).prop_map(|(w, h)| Arc::new(AdaptiveMesh::new(w, h)) as TopologyRef),
        (1usize..65, 1usize..9, 1usize..5)
            .prop_map(|(n, a, s)| Arc::new(FatTree::new(n, a, s)) as TopologyRef),
        (1usize..10, 1usize..9).prop_map(|(g, a)| Arc::new(Dragonfly::new(g, a)) as TopologyRef),
    ]
}

/// Check that `route` is a well-formed hop chain from `src` to `dst`.
fn assert_route_valid(topo: &dyn Topology, src: NodeId, dst: NodeId, route: &[Hop]) {
    if src == dst {
        assert!(
            route.is_empty(),
            "{}: self-route must be empty",
            topo.name()
        );
        return;
    }
    assert!(
        !route.is_empty(),
        "{}: {src}->{dst} route empty",
        topo.name()
    );
    assert_eq!(route[0].router, topo.router_of(src));
    let mut at = route[0].router;
    for hop in route {
        assert_eq!(hop.router, at, "{}: route hops must chain", topo.name());
        at = topo.link(hop.router, hop.port).unwrap_or_else(|| {
            panic!(
                "{}: route uses missing link r{}.p{}",
                topo.name(),
                hop.router,
                hop.port
            )
        });
    }
    assert_eq!(
        at,
        topo.router_of(dst),
        "{}: route must end at dst",
        topo.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every route is a chain of existing links from source router to
    /// destination router, for every topology and any salt.
    #[test]
    fn routes_are_valid(topo in any_topology(), pair in (0usize..4096, 0usize..4096), salt in 0u64..1024) {
        let n = topo.len();
        let src = NodeId(pair.0 % n);
        let dst = NodeId(pair.1 % n);
        let route = topo.route(src, dst, salt);
        assert_route_valid(topo.as_ref(), src, dst, &route);
    }

    /// Where the topology claims minimal routing, every route's length is
    /// exactly `min_distance`; non-minimal topologies never beat it.
    #[test]
    fn routes_minimal_where_claimed(topo in any_topology(), pair in (0usize..4096, 0usize..4096), salt in 0u64..1024) {
        let n = topo.len();
        let src = NodeId(pair.0 % n);
        let dst = NodeId(pair.1 % n);
        let route = topo.route(src, dst, salt);
        let min = topo.min_distance(src, dst);
        if topo.minimal() {
            prop_assert_eq!(route.len(), min, "{} claims minimal routing", topo.name());
        } else {
            prop_assert!(route.len() >= min, "{} route beat the shortest path", topo.name());
        }
    }

    /// Pairwise path-invariance holds exactly when the topology declares
    /// in-order delivery: oblivious topologies must ignore the salt, and
    /// the adaptive ablation must genuinely vary (otherwise its Unordered
    /// declaration would be needlessly pessimistic).
    #[test]
    fn path_invariance_matches_ordering_declaration(
        topo in any_topology(), pair in (0usize..4096, 0usize..4096)
    ) {
        let n = topo.len();
        let src = NodeId(pair.0 % n);
        let dst = NodeId(pair.1 % n);
        let baseline = topo.route(src, dst, 0);
        match topo.ordering() {
            DeliveryOrder::InOrder => {
                for salt in [1u64, 7, 0xdead_beef, u64::MAX] {
                    prop_assert_eq!(
                        &topo.route(src, dst, salt),
                        &baseline,
                        "{} declares InOrder but routes vary with salt",
                        topo.name()
                    );
                }
            }
            DeliveryOrder::Unordered => {
                // Path-invariance must NOT hold globally: some pair, some
                // salt produces a different route (checked when the fabric
                // is big enough for Valiant to have a choice).
                if n >= 4 {
                    let varied = (0..n).any(|s| (0..n).any(|d| {
                        let base = topo.route(NodeId(s), NodeId(d), 0);
                        (1..64u64).any(|salt| topo.route(NodeId(s), NodeId(d), salt) != base)
                    }));
                    prop_assert!(varied, "{} declares Unordered but is path-invariant", topo.name());
                }
            }
        }
    }

    /// The link table is consistent: `links()` agrees with `link()`, and
    /// every link is between real routers.
    #[test]
    fn link_enumeration_is_consistent(topo in any_topology()) {
        let links = topo.links();
        for l in &links {
            prop_assert!(l.from < topo.routers());
            prop_assert!(l.to < topo.routers());
            prop_assert_eq!(topo.link(l.from, l.port), Some(l.to));
            prop_assert!(l.from != l.to, "self-loops are forbidden");
        }
        // And the reverse: every connected port appears exactly once.
        let mut count = 0usize;
        for r in 0..topo.routers() {
            for p in 0..topo.ports() {
                if topo.link(r, p).is_some() {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, links.len());
    }

    /// Spec strings round-trip through parse/Display and build the
    /// topology they name.
    #[test]
    fn spec_parse_build(w in 1usize..9, h in 1usize..9) {
        for kind in ["mesh", "torus", "adaptive"] {
            let spec = TopologySpec::parse(&format!("{kind}:{w}x{h}")).unwrap();
            let topo = spec.build();
            prop_assert_eq!(topo.len(), w * h);
            prop_assert_eq!(topo.name(), kind);
        }
    }
}
