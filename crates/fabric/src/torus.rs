//! 2-D torus: a mesh with wraparound links in both dimensions.
//!
//! Routing stays oblivious dimension-order (X then Y) but each dimension
//! picks the shorter way around the ring, halving the diameter and doubling
//! the bisection of an equal-sized mesh — the topology knob the PMS cluster
//! work showed matters most for bisection-bound workloads. Ties (an even
//! ring with the destination exactly opposite) break toward East/South so
//! the route stays a pure function of the pair: in-order delivery holds.

use crate::id::{Coord, Direction, NodeId};
use crate::topology::{DeliveryOrder, Hop, RouterId, Topology};

/// A `width × height` torus; node numbering and port numbering match
/// [`Mesh2D`](crate::Mesh2D) (ports are [`Direction::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2D {
    width: usize,
    height: usize,
}

impl Torus2D {
    /// Create a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Torus2D {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        Torus2D { width, height }
    }

    fn coord(&self, node: NodeId) -> Coord {
        assert!(
            node.0 < self.width * self.height,
            "node {node} out of range for {self:?}"
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    fn node_at(&self, c: Coord) -> NodeId {
        NodeId(c.y * self.width + c.x)
    }

    /// Signed step and hop count for one ring dimension: distance going up
    /// (`+1` with wrap) is `fwd`, going down is `size - fwd`; prefer up
    /// (East/South) on ties.
    fn ring_plan(from: usize, to: usize, size: usize) -> (bool, usize) {
        let fwd = (to + size - from) % size;
        let back = size - fwd;
        if fwd == 0 {
            (true, 0)
        } else if fwd <= back {
            (true, fwd)
        } else {
            (false, back)
        }
    }
}

impl Topology for Torus2D {
    fn name(&self) -> &'static str {
        "torus"
    }

    fn len(&self) -> usize {
        self.width * self.height
    }

    fn ports(&self) -> usize {
        4
    }

    fn link(&self, router: RouterId, port: usize) -> Option<RouterId> {
        if router >= self.len() {
            return None;
        }
        let c = self.coord(NodeId(router));
        let n = match port {
            0 => Coord {
                x: (c.x + 1) % self.width,
                y: c.y,
            },
            1 => Coord {
                x: (c.x + self.width - 1) % self.width,
                y: c.y,
            },
            2 => Coord {
                x: c.x,
                y: (c.y + 1) % self.height,
            },
            3 => Coord {
                x: c.x,
                y: (c.y + self.height - 1) % self.height,
            },
            _ => return None,
        };
        let to = self.node_at(n).0;
        // A dimension of extent 1 would make this a self-loop; report the
        // port as unconnected instead.
        if to == router {
            None
        } else {
            Some(to)
        }
    }

    fn route(&self, src: NodeId, dst: NodeId, _salt: u64) -> Vec<Hop> {
        let s = self.coord(src);
        let d = self.coord(dst);
        let (x_fwd, x_hops) = Torus2D::ring_plan(s.x, d.x, self.width);
        let (y_fwd, y_hops) = Torus2D::ring_plan(s.y, d.y, self.height);
        let mut hops = Vec::with_capacity(x_hops + y_hops);
        let mut cur = s;
        for _ in 0..x_hops {
            let dir = if x_fwd {
                Direction::East
            } else {
                Direction::West
            };
            hops.push(Hop {
                router: self.node_at(cur).0,
                port: dir.index(),
            });
            cur.x = if x_fwd {
                (cur.x + 1) % self.width
            } else {
                (cur.x + self.width - 1) % self.width
            };
        }
        for _ in 0..y_hops {
            let dir = if y_fwd {
                Direction::South
            } else {
                Direction::North
            };
            hops.push(Hop {
                router: self.node_at(cur).0,
                port: dir.index(),
            });
            cur.y = if y_fwd {
                (cur.y + 1) % self.height
            } else {
                (cur.y + self.height - 1) % self.height
            };
        }
        debug_assert_eq!(self.node_at(cur), dst);
        hops
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        dx.min(self.width - dx) + dy.min(self.height - dy)
    }

    fn ordering(&self) -> DeliveryOrder {
        DeliveryOrder::InOrder
    }

    fn grid_dims(&self) -> Option<(usize, usize)> {
        Some((self.width, self.height))
    }

    fn diameter(&self) -> usize {
        self.width / 2 + self.height / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_route_is_shorter() {
        let t = Torus2D::new(4, 4);
        // (0,0) -> (3,0): one westward wrap hop, not three east.
        let route = t.route(NodeId(0), NodeId(3), 0);
        assert_eq!(
            route,
            vec![Hop {
                router: 0,
                port: Direction::West.index()
            }]
        );
        assert_eq!(t.min_distance(NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn tie_breaks_east_and_south() {
        let t = Torus2D::new(4, 4);
        // (0,0) -> (2,2): both ways are 2 hops in each dimension; ties go
        // East then South.
        let route = t.route(NodeId(0), NodeId(10), 0);
        assert_eq!(route[0].port, Direction::East.index());
        assert_eq!(route[2].port, Direction::South.index());
        assert_eq!(route.len(), 4);
    }

    #[test]
    fn route_length_equals_min_distance() {
        let t = Torus2D::new(5, 4);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.route(a, b, 0).len(), t.min_distance(a, b));
            }
        }
    }

    #[test]
    fn torus_diameter_halves_mesh() {
        assert_eq!(Torus2D::new(8, 8).diameter(), 8);
        assert_eq!(Torus2D::new(4, 4).diameter(), 4);
    }

    #[test]
    fn degenerate_dimension_has_no_self_loop() {
        let t = Torus2D::new(1, 4);
        assert_eq!(t.link(0, Direction::East.index()), None);
        assert_eq!(t.link(0, Direction::South.index()), Some(1));
        // Wrap north from row 0 lands on row 3.
        assert_eq!(t.link(0, Direction::North.index()), Some(3));
    }

    #[test]
    fn width_two_has_parallel_links() {
        let t = Torus2D::new(2, 2);
        // East and West from node 0 both reach node 1 — two parallel
        // links on distinct ports.
        assert_eq!(t.link(0, Direction::East.index()), Some(1));
        assert_eq!(t.link(0, Direction::West.index()), Some(1));
    }
}
