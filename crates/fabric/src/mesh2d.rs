//! The reference topology: a rectangular 2-D mesh with oblivious
//! dimension-order wormhole routing — the SHRIMP prototype's Paragon
//! backplane of Intel Mesh Routing Chips (iMRCs).
//!
//! Dimension-order routing (Dally & Seitz) sends every packet first along
//! the X dimension, then along Y; because the route is a pure function of
//! (source, destination), all packets between a pair follow the same path,
//! which (with FIFO links) yields the in-order delivery guarantee the VMMC
//! layer relies on.

use crate::id::{Coord, Direction, NodeId};
use crate::topology::{DeliveryOrder, Hop, RouterId, Topology};

/// A rectangular 2-D mesh.
///
/// The 4-node SHRIMP prototype is a 2×2 mesh
/// ([`Mesh2D::shrimp_prototype`]); the paper's planned expansion to 16
/// nodes is 4×4. Output port numbers are [`Direction::index`].
///
/// # Examples
///
/// ```
/// use shrimp_fabric::{Mesh2D, NodeId, Topology};
/// let t = Mesh2D::new(4, 4);
/// assert_eq!(t.len(), 16);
/// let route = t.route(NodeId(0), NodeId(15), 0);
/// assert_eq!(route.len(), 6); // 3 east + 3 south
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    width: usize,
    height: usize,
}

impl Mesh2D {
    /// Create a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Mesh2D {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2D { width, height }
    }

    /// The 2×2 mesh of the four-node prototype system.
    pub fn shrimp_prototype() -> Mesh2D {
        Mesh2D::new(2, 2)
    }

    /// Mesh width (X extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (Y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(
            node.0 < self.width * self.height,
            "node {node} out of range for {self:?}"
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at a grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "coordinate out of range"
        );
        NodeId(c.y * self.width + c.x)
    }

    /// Neighbor of `node` in `dir`, if it exists.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::South if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.node_at(n))
    }

    /// Manhattan distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// The dimension-order (X then Y) hop sequence, shared with
    /// [`AdaptiveMesh`](crate::AdaptiveMesh) as the per-phase router.
    pub(crate) fn dim_order_route(&self, src: NodeId, dst: NodeId, hops: &mut Vec<Hop>) {
        let s = self.coord(src);
        let d = self.coord(dst);
        let mut cur = s;
        while cur.x != d.x {
            let dir = if cur.x < d.x {
                Direction::East
            } else {
                Direction::West
            };
            hops.push(Hop {
                router: self.node_at(cur).0,
                port: dir.index(),
            });
            cur.x = if cur.x < d.x { cur.x + 1 } else { cur.x - 1 };
        }
        while cur.y != d.y {
            let dir = if cur.y < d.y {
                Direction::South
            } else {
                Direction::North
            };
            hops.push(Hop {
                router: self.node_at(cur).0,
                port: dir.index(),
            });
            cur.y = if cur.y < d.y { cur.y + 1 } else { cur.y - 1 };
        }
    }
}

impl Topology for Mesh2D {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn len(&self) -> usize {
        self.width * self.height
    }

    fn ports(&self) -> usize {
        4
    }

    fn link(&self, router: RouterId, port: usize) -> Option<RouterId> {
        let dir = match port {
            0 => Direction::East,
            1 => Direction::West,
            2 => Direction::South,
            3 => Direction::North,
            _ => return None,
        };
        self.neighbor(NodeId(router), dir).map(|n| n.0)
    }

    fn route(&self, src: NodeId, dst: NodeId, _salt: u64) -> Vec<Hop> {
        let mut hops = Vec::with_capacity(self.distance(src, dst));
        self.dim_order_route(src, dst, &mut hops);
        hops
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        self.distance(a, b)
    }

    fn ordering(&self) -> DeliveryOrder {
        DeliveryOrder::InOrder
    }

    fn grid_dims(&self) -> Option<(usize, usize)> {
        Some((self.width, self.height))
    }

    fn diameter(&self) -> usize {
        self.width - 1 + self.height - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_is_2x2() {
        let t = Mesh2D::shrimp_prototype();
        assert_eq!(t.len(), 4);
        assert_eq!(t.coord(NodeId(3)), Coord { x: 1, y: 1 });
        assert_eq!(t.node_at(Coord { x: 0, y: 1 }), NodeId(2));
    }

    #[test]
    fn route_is_x_then_y() {
        let t = Mesh2D::new(4, 4);
        let route = t.route(NodeId(1), NodeId(14), 0); // (1,0) -> (2,3)
        assert_eq!(
            route,
            vec![
                Hop {
                    router: 1,
                    port: Direction::East.index()
                },
                Hop {
                    router: 2,
                    port: Direction::South.index()
                },
                Hop {
                    router: 6,
                    port: Direction::South.index()
                },
                Hop {
                    router: 10,
                    port: Direction::South.index()
                },
            ]
        );
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = Mesh2D::new(3, 3);
        assert!(t.route(NodeId(4), NodeId(4), 0).is_empty());
        assert_eq!(t.distance(NodeId(4), NodeId(4)), 0);
    }

    #[test]
    fn route_westward_and_northward() {
        let t = Mesh2D::new(3, 2);
        let route = t.route(NodeId(5), NodeId(0), 0); // (2,1) -> (0,0)
        assert_eq!(
            route,
            vec![
                Hop {
                    router: 5,
                    port: Direction::West.index()
                },
                Hop {
                    router: 4,
                    port: Direction::West.index()
                },
                Hop {
                    router: 3,
                    port: Direction::North.index()
                },
            ]
        );
    }

    #[test]
    fn neighbors_respect_edges() {
        let t = Mesh2D::new(2, 2);
        assert_eq!(t.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(t.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(t.neighbor(NodeId(0), Direction::South), Some(NodeId(2)));
        assert_eq!(t.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(t.neighbor(NodeId(3), Direction::East), None);
        assert_eq!(t.neighbor(NodeId(3), Direction::North), Some(NodeId(1)));
    }

    #[test]
    fn route_length_equals_distance() {
        let t = Mesh2D::new(5, 4);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.route(a, b, 0).len(), t.distance(a, b));
            }
        }
    }

    #[test]
    fn links_are_grid_edges() {
        let t = Mesh2D::new(2, 2);
        // 4 nodes x 2 internal links each (corner nodes have exactly two
        // neighbors in a 2x2) = 8 unidirectional links.
        assert_eq!(t.links().len(), 8);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_invalid_node_panics() {
        Mesh2D::new(2, 2).coord(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        Mesh2D::new(0, 3);
    }
}
