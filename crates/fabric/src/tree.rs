//! Fabric-built spanning trees, the skeleton for in-network collectives.
//!
//! The combining stage in each router (fetch-and-add combining, in-switch
//! reduce/broadcast) runs along a spanning tree of the physical link
//! graph: contributions flow up toward the root, combined at each router;
//! results flow back down the same tree. The tree is built by
//! deterministic BFS over [`Topology::link`] in ascending port order, so
//! every build over the same topology yields the same tree.

use crate::topology::{RouterId, Topology};
use std::collections::VecDeque;

/// A rooted spanning tree over a topology's router/link graph.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: RouterId,
    /// Per router: `(parent, port from this router toward parent)`;
    /// `None` for the root and for routers unreachable from it.
    up: Vec<Option<(RouterId, usize)>>,
    /// Per router: `(child, port from this router toward child)`, in BFS
    /// discovery order.
    children: Vec<Vec<(RouterId, usize)>>,
    depth: Vec<usize>,
}

impl SpanningTree {
    /// Build the BFS spanning tree rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a router of `topo`.
    pub fn build(topo: &dyn Topology, root: RouterId) -> SpanningTree {
        let n = topo.routers();
        assert!(root < n, "root {root} out of range for {} routers", n);
        let mut up = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[root] = 0;
        queue.push_back(root);
        while let Some(r) = queue.pop_front() {
            for port in 0..topo.ports() {
                let Some(c) = topo.link(r, port) else {
                    continue;
                };
                if depth[c] != usize::MAX {
                    continue;
                }
                depth[c] = depth[r] + 1;
                // The child's up-port: its lowest-numbered port back to
                // the parent (parallel links pick the first).
                let back = (0..topo.ports())
                    .find(|&p| topo.link(c, p) == Some(r))
                    .expect("link graph must be symmetric for tree collectives");
                up[c] = Some((r, back));
                children[r].push((c, port));
                queue.push_back(c);
            }
        }
        SpanningTree {
            root,
            up,
            children,
            depth,
        }
    }

    /// The root router.
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// `(parent, up-port)` of a router; `None` at the root.
    pub fn parent(&self, r: RouterId) -> Option<(RouterId, usize)> {
        self.up[r]
    }

    /// Children of a router with the down-port reaching each.
    pub fn children(&self, r: RouterId) -> &[(RouterId, usize)] {
        &self.children[r]
    }

    /// Hop distance from the root; `usize::MAX` if unreachable.
    pub fn depth(&self, r: RouterId) -> usize {
        self.depth[r]
    }

    /// Whether every router is reachable from the root.
    pub fn is_spanning(&self) -> bool {
        self.depth.iter().all(|&d| d != usize::MAX)
    }

    /// Routers in bottom-up order (leaves before their parents): reverse
    /// BFS order, the schedule for combining passes.
    pub fn bottom_up(&self) -> Vec<RouterId> {
        let mut order: Vec<RouterId> = (0..self.depth.len())
            .filter(|&r| self.depth[r] != usize::MAX)
            .collect();
        order.sort_by_key(|&r| std::cmp::Reverse(self.depth[r]));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dragonfly, FatTree, Mesh2D, Torus2D};

    fn check_spanning(topo: &dyn Topology, root: RouterId) {
        let tree = SpanningTree::build(topo, root);
        assert!(tree.is_spanning(), "{} tree must span", topo.name());
        // Every non-root router has a parent whose link points back at it.
        for r in 0..topo.routers() {
            if r == root {
                assert!(tree.parent(r).is_none());
                continue;
            }
            let (p, up_port) = tree.parent(r).unwrap();
            assert_eq!(topo.link(r, up_port), Some(p));
            assert!(tree.children(p).iter().any(|&(c, _)| c == r));
            assert_eq!(tree.depth(r), tree.depth(p) + 1);
        }
    }

    #[test]
    fn trees_span_every_topology() {
        check_spanning(&Mesh2D::new(4, 4), 0);
        check_spanning(&Mesh2D::new(4, 4), 5);
        check_spanning(&Torus2D::new(4, 4), 0);
        check_spanning(&FatTree::new(16, 4, 2), 0);
        check_spanning(&Dragonfly::new(4, 4), 3);
    }

    #[test]
    fn build_is_deterministic() {
        let topo = Torus2D::new(4, 4);
        let a = SpanningTree::build(&topo, 0);
        let b = SpanningTree::build(&topo, 0);
        for r in 0..topo.routers() {
            assert_eq!(a.parent(r), b.parent(r));
            assert_eq!(a.children(r), b.children(r));
        }
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let topo = Mesh2D::new(3, 3);
        let tree = SpanningTree::build(&topo, 4);
        let order = tree.bottom_up();
        let pos = |r: RouterId| order.iter().position(|&x| x == r).unwrap();
        for r in 0..topo.routers() {
            if let Some((p, _)) = tree.parent(r) {
                assert!(pos(r) < pos(p));
            }
        }
        assert_eq!(*order.last().unwrap(), 4);
    }
}
