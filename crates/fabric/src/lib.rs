//! # shrimp-fabric
//!
//! The topology zoo for the SHRIMP backplane. The paper's prototype
//! hard-wires a 2-D mesh of iMRCs with oblivious dimension-order wormhole
//! routing; this crate lifts everything the backplane timing model needs
//! to know about a fabric behind the [`Topology`] trait — node/router
//! mapping, route computation, link enumeration, per-hop wire cost, and
//! (crucially) the declared [`DeliveryOrder`] from which the VMMC layer
//! *derives* its in-order delivery contract instead of assuming it.
//!
//! Implementations:
//!
//! * [`Mesh2D`] — the reference topology, bit-identical in behavior to the
//!   pre-trait hard-wired mesh.
//! * [`Torus2D`] — wraparound links, shortest-wrap dimension-order routing.
//! * [`FatTree`] — two-level indirect network with switch-only routers;
//!   pair-hashed spine selection keeps delivery in-order.
//! * [`Dragonfly`] — locally full-meshed groups joined by long global
//!   links ([`GLOBAL_WIRE_FACTOR`]× wire latency).
//! * [`AdaptiveMesh`] — Valiant two-phase randomized routing, the
//!   non-minimal [`DeliveryOrder::Unordered`] ablation against the paper's
//!   oblivious routing.
//!
//! [`SpanningTree`] builds the deterministic BFS tree that the in-network
//! combining stage (fetch-and-add, in-switch reduce/broadcast) runs along;
//! [`TopologySpec`] is the runtime `--topology` flag parser.

mod adaptive;
mod dragonfly;
mod fattree;
mod id;
mod mesh2d;
mod topology;
mod torus;
mod tree;

pub use adaptive::AdaptiveMesh;
pub use dragonfly::{Dragonfly, GLOBAL_WIRE_FACTOR};
pub use fattree::FatTree;
pub use id::{Coord, Direction, NodeId};
pub use mesh2d::Mesh2D;
pub use topology::{
    DeliveryOrder, Hop, Link, NodeIter, RouterId, Topology, TopologyRef, TopologySpec,
};
pub use torus::Torus2D;
pub use tree::SpanningTree;
