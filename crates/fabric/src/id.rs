//! Node identity and grid coordinates, shared by every topology.

use std::fmt;

/// Identifies a compute node (and the router its NIC injects into).
///
/// Node ids are dense `0..len`; grid topologies number them row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A position in a grid-shaped topology (2-D mesh or torus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (X dimension, routed first).
    pub x: usize,
    /// Row (Y dimension, routed second).
    pub y: usize,
}

/// One of the four grid directions; its [`Direction::index`] is the
/// output-port number on a grid router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing X.
    East,
    /// Decreasing X.
    West,
    /// Increasing Y.
    South,
    /// Decreasing Y.
    North,
}

impl Direction {
    /// Index 0..4, used to address per-router output links.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}
