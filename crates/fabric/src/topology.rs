//! The `Topology` trait: what the backplane needs to know about a fabric.
//!
//! The SHRIMP prototype hard-wires a 2-D mesh of iMRCs with oblivious
//! dimension-order wormhole routing. This trait lifts that contract so the
//! same backplane timing model can drive a torus, a fat-tree, a dragonfly,
//! or an adaptively-routed mesh — and so the VMMC layer can *derive* its
//! in-order delivery assumption from the topology's declared guarantee
//! instead of assuming it.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use crate::id::NodeId;

/// Identifies a router in the fabric. Routers `0..len()` host the compute
/// nodes (router `i` is node `i`'s injection/ejection point); indirect
/// topologies (fat-tree) add switch-only routers with ids `>= len()`.
pub type RouterId = usize;

/// A shared handle to a topology; the backplane and every layer above it
/// hold one of these.
pub type TopologyRef = Arc<dyn Topology>;

/// What a topology promises about the relative order of packets sent
/// between one (source, destination) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOrder {
    /// Every packet between a given pair follows the same path over FIFO
    /// links, so packets arrive in injection order. VMMC's flag-after-data
    /// update protocol requires this.
    InOrder,
    /// Packets between a pair may take different paths (adaptive or
    /// randomized routing) and can overtake each other. VMMC cannot run
    /// directly on such a fabric without a reorder stage.
    Unordered,
}

/// One hop of a route: the router a packet is at and the output port it
/// leaves through. `Topology::link(router, port)` names the next router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Router the packet occupies before the hop.
    pub router: RouterId,
    /// Output port it takes.
    pub port: usize,
}

/// A unidirectional physical link, for fault planning and enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Router the link leaves.
    pub from: RouterId,
    /// Output port on `from`.
    pub port: usize,
    /// Router the link enters.
    pub to: RouterId,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.p{}->r{}", self.from, self.port, self.to)
    }
}

/// Iterator over the compute-node ids of a topology.
///
/// A concrete type (rather than `impl Iterator`) so [`Topology`] stays
/// object-safe.
#[derive(Debug, Clone)]
pub struct NodeIter {
    range: Range<usize>,
}

impl NodeIter {
    /// Iterate nodes `0..len`.
    pub fn new(len: usize) -> NodeIter {
        NodeIter { range: 0..len }
    }
}

impl Iterator for NodeIter {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for NodeIter {
    fn next_back(&mut self) -> Option<NodeId> {
        self.range.next_back().map(NodeId)
    }
}

impl ExactSizeIterator for NodeIter {}

/// A network fabric: node/router mapping, route computation, link
/// enumeration, per-hop cost, and the ordering guarantee the layers above
/// may rely on.
///
/// # Contract
///
/// * Compute nodes are `0..len()`; node `i` injects at router
///   [`router_of`](Topology::router_of)`(i)` (dense node routers first).
/// * [`route`](Topology::route)`(src, dst, salt)` returns the hop list: the
///   first hop starts at `router_of(src)`, each `link(hop.router, hop.port)`
///   is the next hop's router, and the final link lands on `router_of(dst)`.
///   The route is empty iff `src == dst`.
/// * When [`ordering`](Topology::ordering) is
///   [`DeliveryOrder::InOrder`], `route` must ignore `salt` — the path is a
///   pure function of the pair, which (with FIFO links) is exactly the
///   pairwise path-invariance in-order delivery needs.
/// * When [`minimal`](Topology::minimal) is true, every route's length
///   equals [`min_distance`](Topology::min_distance) of the pair.
pub trait Topology: fmt::Debug + Send + Sync {
    /// Short name ("mesh", "torus", ...) for reports and bench output.
    fn name(&self) -> &'static str;

    /// Number of compute nodes.
    fn len(&self) -> usize;

    /// True for a degenerate 0-node fabric (never constructible; present
    /// for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total routers, including switch-only routers. Defaults to one
    /// router per node.
    fn routers(&self) -> usize {
        self.len()
    }

    /// Router a node injects at / ejects from.
    fn router_of(&self, node: NodeId) -> RouterId {
        debug_assert!(node.0 < self.len());
        node.0
    }

    /// Upper bound on output ports across all routers; valid port numbers
    /// are `0..ports()` (some may be unconnected on a given router).
    fn ports(&self) -> usize;

    /// Router at the far end of `(router, port)`, or `None` if that port
    /// is unconnected.
    fn link(&self, router: RouterId, port: usize) -> Option<RouterId>;

    /// The hop sequence from `src` to `dst`. `salt` seeds route
    /// randomization for adaptive topologies and MUST be ignored by
    /// topologies declaring [`DeliveryOrder::InOrder`].
    fn route(&self, src: NodeId, dst: NodeId, salt: u64) -> Vec<Hop>;

    /// Length of a shortest path between two nodes, in links (excluding
    /// injection/ejection).
    fn min_distance(&self, a: NodeId, b: NodeId) -> usize;

    /// The ordering guarantee this fabric provides between each pair.
    fn ordering(&self) -> DeliveryOrder;

    /// Whether every route is a shortest path.
    fn minimal(&self) -> bool {
        true
    }

    /// Relative wire length of `(router, port)`; per-hop wire latency is
    /// scaled by this. 1.0 for ordinary backplane traces; dragonfly global
    /// links are longer.
    fn wire_factor(&self, _router: RouterId, _port: usize) -> f64 {
        1.0
    }

    /// `(width, height)` when the compute nodes form a row-major 2-D grid
    /// (mesh, torus); layers that lay out communication patterns
    /// geometrically (the collectives snake ring) use this.
    fn grid_dims(&self) -> Option<(usize, usize)> {
        None
    }

    /// All compute-node ids.
    fn nodes(&self) -> NodeIter {
        NodeIter::new(self.len())
    }

    /// Every unidirectional link in the fabric, in `(router, port)` order.
    fn links(&self) -> Vec<Link> {
        let mut out = Vec::new();
        for from in 0..self.routers() {
            for port in 0..self.ports() {
                if let Some(to) = self.link(from, port) {
                    out.push(Link { from, port, to });
                }
            }
        }
        out
    }

    /// Longest shortest path between any two compute nodes, in links.
    fn diameter(&self) -> usize {
        let mut d = 0;
        for a in self.nodes() {
            for b in self.nodes() {
                d = d.max(self.min_distance(a, b));
            }
        }
        d
    }
}

/// SplitMix64: cheap stateless mixer for deterministic route
/// randomization and pair hashing.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A parsed topology description, the runtime `--topology` flag shape:
/// `mesh:4x4`, `torus:8x8`, `adaptive:4x4`, `fattree:16,4,2` (nodes,
/// leaf arity, spines), `dragonfly:4,4` (groups, routers per group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// 2-D mesh, dimension-order routed.
    Mesh {
        /// X extent.
        width: usize,
        /// Y extent.
        height: usize,
    },
    /// 2-D torus, shortest-wrap dimension-order routed.
    Torus {
        /// X extent.
        width: usize,
        /// Y extent.
        height: usize,
    },
    /// 2-D mesh under Valiant two-phase randomized routing.
    Adaptive {
        /// X extent.
        width: usize,
        /// Y extent.
        height: usize,
    },
    /// Two-level fat-tree.
    FatTree {
        /// Compute nodes.
        nodes: usize,
        /// Nodes per leaf switch.
        arity: usize,
        /// Spine switches.
        spines: usize,
    },
    /// Dragonfly: groups of locally full-meshed routers, one node each.
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers (= nodes) per group.
        routers: usize,
    },
}

impl TopologySpec {
    /// Parse a `kind:params` spec string.
    pub fn parse(s: &str) -> Result<TopologySpec, String> {
        let (kind, params) = s
            .split_once(':')
            .ok_or_else(|| format!("topology spec {s:?} missing ':' (e.g. mesh:4x4)"))?;
        let dims = |p: &str| -> Result<(usize, usize), String> {
            let (w, h) = p
                .split_once('x')
                .ok_or_else(|| format!("expected WxH in {s:?}"))?;
            Ok((
                w.parse().map_err(|e| format!("bad width in {s:?}: {e}"))?,
                h.parse().map_err(|e| format!("bad height in {s:?}: {e}"))?,
            ))
        };
        match kind {
            "mesh" => {
                let (width, height) = dims(params)?;
                Ok(TopologySpec::Mesh { width, height })
            }
            "torus" => {
                let (width, height) = dims(params)?;
                Ok(TopologySpec::Torus { width, height })
            }
            "adaptive" => {
                let (width, height) = dims(params)?;
                Ok(TopologySpec::Adaptive { width, height })
            }
            "fattree" => {
                let parts: Vec<&str> = params.split(',').collect();
                if parts.len() != 3 {
                    return Err(format!("expected fattree:NODES,ARITY,SPINES in {s:?}"));
                }
                let n = |i: usize| -> Result<usize, String> {
                    parts[i]
                        .parse()
                        .map_err(|e| format!("bad number in {s:?}: {e}"))
                };
                Ok(TopologySpec::FatTree {
                    nodes: n(0)?,
                    arity: n(1)?,
                    spines: n(2)?,
                })
            }
            "dragonfly" => {
                let parts: Vec<&str> = params.split(',').collect();
                if parts.len() != 2 {
                    return Err(format!("expected dragonfly:GROUPS,ROUTERS in {s:?}"));
                }
                let n = |i: usize| -> Result<usize, String> {
                    parts[i]
                        .parse()
                        .map_err(|e| format!("bad number in {s:?}: {e}"))
                };
                Ok(TopologySpec::Dragonfly {
                    groups: n(0)?,
                    routers: n(1)?,
                })
            }
            other => Err(format!("unknown topology kind {other:?}")),
        }
    }

    /// Instantiate the described topology.
    pub fn build(&self) -> TopologyRef {
        match *self {
            TopologySpec::Mesh { width, height } => Arc::new(crate::Mesh2D::new(width, height)),
            TopologySpec::Torus { width, height } => Arc::new(crate::Torus2D::new(width, height)),
            TopologySpec::Adaptive { width, height } => {
                Arc::new(crate::AdaptiveMesh::new(width, height))
            }
            TopologySpec::FatTree {
                nodes,
                arity,
                spines,
            } => Arc::new(crate::FatTree::new(nodes, arity, spines)),
            TopologySpec::Dragonfly { groups, routers } => {
                Arc::new(crate::Dragonfly::new(groups, routers))
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Mesh { width, height } => write!(f, "mesh:{width}x{height}"),
            TopologySpec::Torus { width, height } => write!(f, "torus:{width}x{height}"),
            TopologySpec::Adaptive { width, height } => write!(f, "adaptive:{width}x{height}"),
            TopologySpec::FatTree {
                nodes,
                arity,
                spines,
            } => write!(f, "fattree:{nodes},{arity},{spines}"),
            TopologySpec::Dragonfly { groups, routers } => {
                write!(f, "dragonfly:{groups},{routers}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for s in [
            "mesh:4x4",
            "torus:8x8",
            "adaptive:4x4",
            "fattree:16,4,2",
            "dragonfly:4,4",
        ] {
            let spec = TopologySpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            let topo = spec.build();
            assert!(!topo.is_empty());
        }
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(TopologySpec::parse("mesh").is_err());
        assert!(TopologySpec::parse("ring:4").is_err());
        assert!(TopologySpec::parse("mesh:4").is_err());
        assert!(TopologySpec::parse("fattree:16,4").is_err());
    }
}
