//! Dragonfly: groups of locally full-meshed routers joined by long global
//! links.
//!
//! Each group is an all-to-all clique of `a` routers (one compute node
//! per router); every pair of groups is joined by exactly one global link,
//! spread round-robin across the group's routers. Global links model the
//! long inter-cabinet cables of real dragonflies: their wire latency is
//! scaled by [`GLOBAL_WIRE_FACTOR`]. Minimal routing is at most
//! local → global → local (three hops) and is a pure function of the
//! pair, so delivery is in-order.

use crate::id::NodeId;
use crate::topology::{DeliveryOrder, Hop, RouterId, Topology};

/// Wire-latency multiplier for global (inter-group) links relative to
/// local (intra-group) links.
pub const GLOBAL_WIRE_FACTOR: f64 = 3.0;

/// A dragonfly of `groups` groups, each an all-to-all clique of
/// `routers` routers with one compute node apiece.
///
/// Router `G*routers + i` is router `i` of group `G`. Local ports are
/// `0..routers` (port `j` reaches local router `j`; the self port is
/// unconnected); global ports follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dragonfly {
    groups: usize,
    routers: usize,
}

impl Dragonfly {
    /// Create a dragonfly with `groups` groups of `routers` routers each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(groups: usize, routers: usize) -> Dragonfly {
        assert!(
            groups > 0 && routers > 0,
            "dragonfly parameters must be positive"
        );
        Dragonfly { groups, routers }
    }

    /// Global link index `t` on group `g`'s side reaching group `h`:
    /// defined by `h = (g + 1 + t) mod groups`, so `t` ranges over
    /// `0..groups-1` and never names the group itself.
    fn global_link_to(&self, g: usize, h: usize) -> usize {
        (h + self.groups - g - 1) % self.groups
    }

    /// `(router, global port)` carrying group `g`'s global link `t`; links
    /// are spread round-robin across the group's routers.
    fn global_attach(&self, g: usize, t: usize) -> (RouterId, usize) {
        (
            g * self.routers + t % self.routers,
            self.routers + t / self.routers,
        )
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> &'static str {
        "dragonfly"
    }

    fn len(&self) -> usize {
        self.groups * self.routers
    }

    fn ports(&self) -> usize {
        if self.groups > 1 {
            self.routers + (self.groups - 1).div_ceil(self.routers)
        } else {
            self.routers
        }
    }

    fn link(&self, router: RouterId, port: usize) -> Option<RouterId> {
        if router >= self.len() {
            return None;
        }
        let g = router / self.routers;
        let i = router % self.routers;
        if port < self.routers {
            // Local clique: port j reaches local router j.
            (port != i).then(|| g * self.routers + port)
        } else {
            let t = (port - self.routers) * self.routers + i;
            if self.groups < 2 || t > self.groups - 2 {
                return None;
            }
            let h = (g + 1 + t) % self.groups;
            let back = self.global_link_to(h, g);
            Some(h * self.routers + back % self.routers)
        }
    }

    fn route(&self, src: NodeId, dst: NodeId, _salt: u64) -> Vec<Hop> {
        assert!(
            src.0 < self.len() && dst.0 < self.len(),
            "node out of range"
        );
        if src == dst {
            return Vec::new();
        }
        let gs = src.0 / self.routers;
        let gd = dst.0 / self.routers;
        if gs == gd {
            return vec![Hop {
                router: src.0,
                port: dst.0 % self.routers,
            }];
        }
        let t = self.global_link_to(gs, gd);
        let (exit, gport) = self.global_attach(gs, t);
        let t_back = self.global_link_to(gd, gs);
        let entry = gd * self.routers + t_back % self.routers;
        let mut hops = Vec::with_capacity(3);
        if src.0 != exit {
            hops.push(Hop {
                router: src.0,
                port: exit % self.routers,
            });
        }
        hops.push(Hop {
            router: exit,
            port: gport,
        });
        if entry != dst.0 {
            hops.push(Hop {
                router: entry,
                port: dst.0 % self.routers,
            });
        }
        hops
    }

    // The length of the shortest *direct* path (through the single global
    // link joining the two groups) — the standard dragonfly minimal route.
    // A rare indirect two-global path through a third group can have fewer
    // hops, but minimal routing never takes it and its long-wire cost is
    // higher anyway.
    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            return 0;
        }
        let ga = a.0 / self.routers;
        let gb = b.0 / self.routers;
        if ga == gb {
            return 1;
        }
        let t = self.global_link_to(ga, gb);
        let (exit, _) = self.global_attach(ga, t);
        let t_back = self.global_link_to(gb, ga);
        let entry = gb * self.routers + t_back % self.routers;
        1 + usize::from(a.0 != exit) + usize::from(entry != b.0)
    }

    fn ordering(&self) -> DeliveryOrder {
        DeliveryOrder::InOrder
    }

    fn wire_factor(&self, _router: RouterId, port: usize) -> f64 {
        if port >= self.routers {
            GLOBAL_WIRE_FACTOR
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_links_pair_up() {
        let t = Dragonfly::new(4, 4);
        // Every global link must be symmetric: following it and then the
        // reverse link returns to the start.
        for l in t.links() {
            if l.port >= 4 {
                let back = t
                    .links()
                    .into_iter()
                    .find(|b| b.from == l.to && b.to == l.from && b.port >= 4);
                assert!(back.is_some(), "global link {l} has no reverse");
            }
        }
        // 4 groups -> 6 group pairs -> 12 unidirectional global links.
        let globals = t.links().iter().filter(|l| l.port >= 4).count();
        assert_eq!(globals, 12);
    }

    #[test]
    fn intra_group_is_one_hop() {
        let t = Dragonfly::new(4, 4);
        let route = t.route(NodeId(1), NodeId(3), 0);
        assert_eq!(route, vec![Hop { router: 1, port: 3 }]);
        assert_eq!(t.min_distance(NodeId(1), NodeId(3)), 1);
    }

    #[test]
    fn inter_group_is_at_most_three_hops() {
        let t = Dragonfly::new(4, 4);
        for a in t.nodes() {
            for b in t.nodes() {
                let route = t.route(a, b, 0);
                assert!(route.len() <= 3);
                assert_eq!(route.len(), t.min_distance(a, b));
            }
        }
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn global_ports_are_long_wires() {
        let t = Dragonfly::new(4, 4);
        assert_eq!(t.wire_factor(0, 2), 1.0);
        assert!(t.wire_factor(0, 4) > 1.0);
    }

    #[test]
    fn single_group_is_a_clique() {
        let t = Dragonfly::new(1, 4);
        assert_eq!(t.ports(), 4);
        assert_eq!(t.route(NodeId(0), NodeId(3), 0).len(), 1);
        assert_eq!(t.link(0, 0), None); // self port
    }

    #[test]
    fn one_router_groups_still_connect() {
        let t = Dragonfly::new(3, 1);
        // Groups of one router: all traffic is global.
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    assert_eq!(t.route(a, b, 0).len(), 1);
                }
            }
        }
    }
}
