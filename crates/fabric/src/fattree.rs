//! Two-level fat-tree: leaf switches over the nodes, spine switches over
//! the leaves.
//!
//! The first indirect topology in the zoo — routers outnumber nodes, and
//! the switch-only routers (leaves, spines) carry no compute. Every
//! inter-leaf packet goes up through its leaf to a spine and back down;
//! the spine is chosen by a hash of the (source, destination) pair, so the
//! path is pair-invariant and in-order delivery holds even though the
//! fabric load-balances across spines.

use crate::id::NodeId;
use crate::topology::{splitmix64, DeliveryOrder, Hop, RouterId, Topology};

/// A two-level fat-tree over `nodes` compute nodes: `ceil(nodes/arity)`
/// leaf switches, each serving up to `arity` nodes, fully connected to
/// `spines` spine switches.
///
/// Router ids: `0..nodes` are per-node routers (one up port each), then
/// the leaves, then the spines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    nodes: usize,
    arity: usize,
    spines: usize,
    leaves: usize,
}

impl FatTree {
    /// Create a fat-tree over `nodes` nodes with `arity` nodes per leaf
    /// and `spines` spine switches.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(nodes: usize, arity: usize, spines: usize) -> FatTree {
        assert!(
            nodes > 0 && arity > 0 && spines > 0,
            "fat-tree parameters must be positive"
        );
        FatTree {
            nodes,
            arity,
            spines,
            leaves: nodes.div_ceil(arity),
        }
    }

    /// Leaf-switch router id serving `node`.
    pub fn leaf_of(&self, node: NodeId) -> RouterId {
        self.nodes + node.0 / self.arity
    }

    /// Spine-switch router id chosen for the `(src, dst)` pair — a pure
    /// function of the pair, which is what keeps delivery in-order.
    fn spine_for(&self, src: NodeId, dst: NodeId) -> usize {
        (splitmix64(((src.0 as u64) << 32) | dst.0 as u64) % self.spines as u64) as usize
    }

    fn first_spine(&self) -> RouterId {
        self.nodes + self.leaves
    }
}

impl Topology for FatTree {
    fn name(&self) -> &'static str {
        "fattree"
    }

    fn len(&self) -> usize {
        self.nodes
    }

    fn routers(&self) -> usize {
        self.nodes + self.leaves + self.spines
    }

    fn ports(&self) -> usize {
        // Node routers use 1 port, leaves arity + spines, spines one per
        // leaf.
        (self.arity + self.spines).max(self.leaves).max(1)
    }

    fn link(&self, router: RouterId, port: usize) -> Option<RouterId> {
        if router < self.nodes {
            // Node router: single up port to its leaf.
            (port == 0).then(|| self.leaf_of(NodeId(router)))
        } else if router < self.first_spine() {
            let leaf = router - self.nodes;
            if port < self.arity {
                // Down to a node router.
                let node = leaf * self.arity + port;
                (node < self.nodes).then_some(node)
            } else if port < self.arity + self.spines {
                // Up to a spine.
                Some(self.first_spine() + (port - self.arity))
            } else {
                None
            }
        } else if router < self.routers() {
            // Spine: one down port per leaf.
            (port < self.leaves).then(|| self.nodes + port)
        } else {
            None
        }
    }

    fn route(&self, src: NodeId, dst: NodeId, _salt: u64) -> Vec<Hop> {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        if src == dst {
            return Vec::new();
        }
        let leaf_s = self.leaf_of(src);
        let leaf_d = self.leaf_of(dst);
        let up = Hop {
            router: src.0,
            port: 0,
        };
        let down_to_dst = Hop {
            router: leaf_d,
            port: dst.0 % self.arity,
        };
        if leaf_s == leaf_d {
            return vec![up, down_to_dst];
        }
        let spine = self.spine_for(src, dst);
        vec![
            up,
            Hop {
                router: leaf_s,
                port: self.arity + spine,
            },
            Hop {
                router: self.first_spine() + spine,
                port: leaf_d - self.nodes,
            },
            down_to_dst,
        ]
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            2
        } else {
            4
        }
    }

    fn ordering(&self) -> DeliveryOrder {
        DeliveryOrder::InOrder
    }

    fn diameter(&self) -> usize {
        if self.leaves > 1 {
            4
        } else if self.nodes > 1 {
            2
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_leaf_route_skips_spine() {
        let t = FatTree::new(16, 4, 2);
        let route = t.route(NodeId(0), NodeId(3), 0);
        assert_eq!(route.len(), 2);
        assert_eq!(route[0], Hop { router: 0, port: 0 });
        assert_eq!(
            route[1],
            Hop {
                router: 16,
                port: 3
            }
        );
    }

    #[test]
    fn inter_leaf_route_crosses_one_spine() {
        let t = FatTree::new(16, 4, 2);
        let route = t.route(NodeId(1), NodeId(14), 0);
        assert_eq!(route.len(), 4);
        // Up from node router into leaf 0.
        assert_eq!(t.link(route[0].router, route[0].port), Some(16));
        // Leaf up-port lands on a spine.
        let spine = t.link(route[1].router, route[1].port).unwrap();
        assert!((20..22).contains(&spine));
        // Spine down-port lands on leaf 3 (serves nodes 12..16).
        assert_eq!(t.link(route[2].router, route[2].port), Some(19));
        // Leaf down-port lands on node 14's router.
        assert_eq!(t.link(route[3].router, route[3].port), Some(14));
    }

    #[test]
    fn spine_choice_is_pair_invariant() {
        let t = FatTree::new(16, 4, 2);
        for salt in [0u64, 1, 99] {
            assert_eq!(
                t.route(NodeId(1), NodeId(14), salt),
                t.route(NodeId(1), NodeId(14), 0)
            );
        }
    }

    #[test]
    fn router_and_port_counts() {
        let t = FatTree::new(16, 4, 2);
        assert_eq!(t.routers(), 16 + 4 + 2);
        assert_eq!(t.ports(), 6); // leaf: 4 down + 2 up
                                  // Ragged last leaf: 10 nodes, arity 4 -> 3 leaves.
        let r = FatTree::new(10, 4, 2);
        assert_eq!(r.routers(), 10 + 3 + 2);
        // Leaf 2 serves nodes 8, 9 only.
        assert_eq!(r.link(12, 0), Some(8));
        assert_eq!(r.link(12, 1), Some(9));
        assert_eq!(r.link(12, 2), None);
    }

    #[test]
    fn distances() {
        let t = FatTree::new(16, 4, 2);
        assert_eq!(t.min_distance(NodeId(5), NodeId(5)), 0);
        assert_eq!(t.min_distance(NodeId(5), NodeId(6)), 2);
        assert_eq!(t.min_distance(NodeId(5), NodeId(12)), 4);
        assert_eq!(t.diameter(), 4);
    }
}
