//! Valiant two-phase randomized routing on the 2-D mesh — the ablation
//! against the paper's oblivious dimension-order routing.
//!
//! Each packet picks a random intermediate node (seeded by the per-packet
//! salt) and routes dimension-order source → intermediate → destination.
//! This spreads adversarial traffic across the whole fabric at the price
//! of non-minimal paths — and, crucially, of the in-order delivery
//! guarantee: two packets between the same pair can take different routes
//! and overtake each other, so this topology declares
//! [`DeliveryOrder::Unordered`] and VMMC refuses to run on it. The
//! `topobench` ablation quantifies exactly what the paper's oblivious
//! choice buys and costs.

use crate::id::NodeId;
use crate::mesh2d::Mesh2D;
use crate::topology::{splitmix64, DeliveryOrder, Hop, RouterId, Topology};

/// A `width × height` mesh under Valiant randomized routing. Geometry
/// (node numbering, ports, links) is identical to [`Mesh2D`]; only route
/// selection differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveMesh {
    mesh: Mesh2D,
}

impl AdaptiveMesh {
    /// Create a `width × height` adaptively-routed mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> AdaptiveMesh {
        AdaptiveMesh {
            mesh: Mesh2D::new(width, height),
        }
    }

    /// The intermediate node a packet with `salt` bounces through.
    fn intermediate(&self, src: NodeId, dst: NodeId, salt: u64) -> NodeId {
        let pair = ((src.0 as u64) << 32) | dst.0 as u64;
        NodeId((splitmix64(salt ^ pair.rotate_left(17)) % self.mesh.len() as u64) as usize)
    }
}

impl Topology for AdaptiveMesh {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn len(&self) -> usize {
        self.mesh.len()
    }

    fn ports(&self) -> usize {
        self.mesh.ports()
    }

    fn link(&self, router: RouterId, port: usize) -> Option<RouterId> {
        self.mesh.link(router, port)
    }

    fn route(&self, src: NodeId, dst: NodeId, salt: u64) -> Vec<Hop> {
        if src == dst {
            return Vec::new();
        }
        let mid = self.intermediate(src, dst, salt);
        let mut hops =
            Vec::with_capacity(self.mesh.distance(src, mid) + self.mesh.distance(mid, dst));
        self.mesh.dim_order_route(src, mid, &mut hops);
        self.mesh.dim_order_route(mid, dst, &mut hops);
        hops
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        self.mesh.distance(a, b)
    }

    fn ordering(&self) -> DeliveryOrder {
        DeliveryOrder::Unordered
    }

    fn minimal(&self) -> bool {
        false
    }

    fn grid_dims(&self) -> Option<(usize, usize)> {
        self.mesh.grid_dims()
    }

    fn diameter(&self) -> usize {
        self.mesh.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_vary_with_salt() {
        let t = AdaptiveMesh::new(4, 4);
        let baseline = t.route(NodeId(0), NodeId(15), 0);
        let varied = (1..32u64).any(|salt| t.route(NodeId(0), NodeId(15), salt) != baseline);
        assert!(varied, "Valiant routing should depend on the salt");
    }

    #[test]
    fn routes_are_at_least_minimal_length() {
        let t = AdaptiveMesh::new(4, 4);
        for salt in 0..8u64 {
            for a in t.nodes() {
                for b in t.nodes() {
                    let route = t.route(a, b, salt);
                    assert!(route.len() >= t.min_distance(a, b));
                    if a == b {
                        assert!(route.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn declares_unordered() {
        let t = AdaptiveMesh::new(4, 4);
        assert_eq!(t.ordering(), DeliveryOrder::Unordered);
        assert!(!t.minimal());
    }
}
