//! Deterministic, scriptable fault injection.
//!
//! The SHRIMP hardware's reliability contract is strong — in-order
//! wormhole delivery, freeze-and-interrupt on protection violations,
//! trusted daemons — but a production-scale descendant has to survive
//! the contract *bending*: links stalling, DMA engines pausing, daemons
//! restarting. This module provides the substrate every layer's fault
//! hooks share:
//!
//! * [`FaultPlan`] — a schedule of [`FaultEvent`]s, either scripted or
//!   generated from a seed ([`FaultPlan::generate`]). Generation is
//!   driven by [`SplitMix64`], so the same `(seed, spec)` always yields
//!   the same plan, and — because the kernel itself is deterministic —
//!   the same simulation.
//! * [`StallWindows`] — time windows during which a resource is fully
//!   stalled or slowed by a factor. Layers consult these when computing
//!   service times; stalls only ever *delay* work, so FIFO ordering is
//!   preserved by construction (the network never corrupts, it only
//!   slows — the hardware contract).
//! * [`FaultLog`] — a timestamped record of every injected fault and
//!   every recovery action, rendered deterministically so two runs of
//!   the same plan can be compared byte-for-byte.
//! * [`RetryPolicy`] — bounded retry with exponential backoff for the
//!   libraries' control/bootstrap paths, in virtual time.
//!
//! The kernel-side hook is [`FaultPlan::schedule`]: it arms one
//! simulation event per fault, dispatching to a caller-supplied
//! injector (in this workspace, `ShrimpSystem::apply_faults`).

use parking_lot::Mutex;

use crate::process::SimHandle;
use crate::rng::SplitMix64;
use crate::time::{SimDur, SimTime};

/// One kind of injectable fault. Node indices refer to the flat node
/// numbering of the system the plan is applied to.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// All mesh channels touching `node` stop moving flits for `dur`
    /// (backpressure; in-flight packets are delayed, never dropped).
    LinkStall {
        /// Node whose injection/ejection/routing channels stall.
        node: usize,
        /// How long the stall lasts.
        dur: SimDur,
    },
    /// The single fabric link leaving `router` through output `port`
    /// stops moving flits for `dur` (backpressure; in-flight packets
    /// are delayed, never dropped). Unlike [`FaultKind::LinkStall`]
    /// this targets one physical link by its topology coordinates —
    /// including switch-only routers (fat-tree spines) and wraparound
    /// or global links — so topology-parameterized chaos plans can be
    /// built from `Topology::links()` enumeration. Scripted only:
    /// [`FaultPlan::generate`] never draws these (router/port spaces
    /// are topology-specific, and generated-plan digests must stay
    /// stable across fabrics).
    PortStall {
        /// Router the stalled link leaves.
        router: usize,
        /// Output port on that router.
        port: usize,
        /// How long the stall lasts.
        dur: SimDur,
    },
    /// Every mesh link's serialization slows by `factor` for `dur`
    /// (a bandwidth brownout, e.g. congestion from outside traffic).
    Brownout {
        /// Service-time multiplier (≥ 1.0).
        factor: f64,
        /// How long the brownout lasts.
        dur: SimDur,
    },
    /// The receiving NIC at `node` pauses its incoming-DMA engine for
    /// `dur`; arriving packets queue and complete late, in order.
    DmaStall {
        /// Node whose NIC stalls.
        node: usize,
        /// How long the DMA engine pauses.
        dur: SimDur,
    },
    /// Disable the incoming-page-table entry of an active export on
    /// `node`, so the next arriving packet takes the paper's
    /// freeze-and-interrupt path and must be repaired by the OS.
    IptViolation {
        /// Node whose IPT is sabotaged.
        node: usize,
    },
    /// The VMMC daemon on `node` crashes and restarts after
    /// `downtime`, re-validating its export table on the way up.
    /// Imports during the outage see `DaemonUnavailable`.
    DaemonCrash {
        /// Node whose daemon crashes.
        node: usize,
        /// Time until restart.
        downtime: SimDur,
    },
    /// The responder-side remote-fetch engine at `node` pauses for
    /// `dur`; accepted fetch requests are held (in order) and their
    /// replies stall, so requesters see late completions, never drops.
    FetchStall {
        /// Node whose fetch engine stalls.
        node: usize,
        /// How long the engine pauses.
        dur: SimDur,
    },
    /// A control-plane directive for a higher layer (e.g. `"migrate"`
    /// shard `a` to node `b` for the serving layer's planned handoff):
    /// the injector records and forwards it; the simulated hardware is
    /// untouched. Lets a fault plan script membership changes alongside
    /// real faults under the same deterministic schedule.
    Directive {
        /// Operation name the consuming layer dispatches on.
        op: &'static str,
        /// First operand (layer-defined).
        a: u64,
        /// Second operand (layer-defined).
        b: u64,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::LinkStall { node, dur } => write!(f, "link-stall node={node} dur={dur}"),
            FaultKind::PortStall { router, port, dur } => {
                write!(f, "port-stall router={router} port={port} dur={dur}")
            }
            FaultKind::Brownout { factor, dur } => write!(f, "brownout x{factor:.2} dur={dur}"),
            FaultKind::DmaStall { node, dur } => write!(f, "dma-stall node={node} dur={dur}"),
            FaultKind::IptViolation { node } => write!(f, "ipt-violation node={node}"),
            FaultKind::DaemonCrash { node, downtime } => {
                write!(f, "daemon-crash node={node} downtime={downtime}")
            }
            FaultKind::FetchStall { node, dur } => {
                write!(f, "fetch-stall node={node} dur={dur}")
            }
            FaultKind::Directive { op, a, b } => {
                write!(f, "directive op={op} a={a} b={b}")
            }
        }
    }
}

/// A fault and the virtual time it fires.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// How many of each fault kind [`FaultPlan::generate`] draws, and from
/// what ranges.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of nodes in the target system (faults pick nodes below
    /// this bound).
    pub nodes: usize,
    /// Fault times are drawn uniformly from `[0, horizon)`.
    pub horizon: SimDur,
    /// Number of link-stall events.
    pub link_stalls: usize,
    /// Longest link stall drawn.
    pub max_link_stall: SimDur,
    /// Number of brownout events.
    pub brownouts: usize,
    /// Longest brownout drawn.
    pub max_brownout: SimDur,
    /// Strongest brownout slowdown drawn (≥ 1.0).
    pub max_brownout_factor: f64,
    /// Number of incoming-DMA stalls.
    pub dma_stalls: usize,
    /// Longest DMA stall drawn.
    pub max_dma_stall: SimDur,
    /// Number of injected IPT protection violations.
    pub ipt_violations: usize,
    /// Number of daemon crash/restart cycles.
    pub daemon_crashes: usize,
    /// Longest daemon downtime drawn.
    pub max_daemon_downtime: SimDur,
    /// Number of remote-fetch engine stalls.
    pub fetch_stalls: usize,
    /// Longest fetch-engine stall drawn.
    pub max_fetch_stall: SimDur,
}

impl FaultSpec {
    /// A light mix of every fault kind: one of each, short durations,
    /// suitable as a smoke-test default.
    pub fn light(nodes: usize, horizon: SimDur) -> FaultSpec {
        FaultSpec {
            nodes,
            horizon,
            link_stalls: 1,
            max_link_stall: SimDur::from_us(50.0),
            brownouts: 1,
            max_brownout: SimDur::from_us(200.0),
            max_brownout_factor: 4.0,
            dma_stalls: 1,
            max_dma_stall: SimDur::from_us(50.0),
            ipt_violations: 1,
            daemon_crashes: 1,
            max_daemon_downtime: SimDur::from_us(100.0),
            fetch_stalls: 1,
            max_fetch_stall: SimDur::from_us(50.0),
        }
    }

    /// A heavier mix for stress runs: several of each kind.
    pub fn heavy(nodes: usize, horizon: SimDur) -> FaultSpec {
        FaultSpec {
            link_stalls: 4,
            brownouts: 3,
            dma_stalls: 4,
            ipt_violations: 3,
            daemon_crashes: 2,
            fetch_stalls: 3,
            ..FaultSpec::light(nodes, horizon)
        }
    }
}

/// A deterministic schedule of fault injections.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for scripted plans).
    pub seed: u64,
    /// Events in firing order (ties keep insertion order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults (the healthy baseline).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A hand-written plan; events are (stably) sorted by time.
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed: 0, events }
    }

    /// Draw a plan from `seed`. Identical `(seed, spec)` pairs yield
    /// identical plans — the replay guarantee the chaos harness's
    /// bit-identical-report assertion rests on.
    pub fn generate(seed: u64, spec: &FaultSpec) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        let horizon = spec.horizon.as_ps().max(1);
        let draw_at =
            |rng: &mut SplitMix64| SimTime::ZERO + SimDur::from_ps(rng.next_below(horizon));
        let draw_dur = |rng: &mut SplitMix64, max: SimDur| {
            SimDur::from_ps(rng.next_below(max.as_ps().max(1)).max(1))
        };
        for _ in 0..spec.link_stalls {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::LinkStall {
                    node: rng.next_below(spec.nodes.max(1) as u64) as usize,
                    dur: draw_dur(&mut rng, spec.max_link_stall),
                },
            });
        }
        for _ in 0..spec.brownouts {
            // Quantized so the drawn factor is exactly reproducible.
            let steps = rng.next_below(64);
            let factor = 1.0 + (spec.max_brownout_factor - 1.0).max(0.0) * (steps as f64 / 63.0);
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::Brownout {
                    factor,
                    dur: draw_dur(&mut rng, spec.max_brownout),
                },
            });
        }
        for _ in 0..spec.dma_stalls {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::DmaStall {
                    node: rng.next_below(spec.nodes.max(1) as u64) as usize,
                    dur: draw_dur(&mut rng, spec.max_dma_stall),
                },
            });
        }
        for _ in 0..spec.ipt_violations {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::IptViolation {
                    node: rng.next_below(spec.nodes.max(1) as u64) as usize,
                },
            });
        }
        for _ in 0..spec.daemon_crashes {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::DaemonCrash {
                    node: rng.next_below(spec.nodes.max(1) as u64) as usize,
                    downtime: draw_dur(&mut rng, spec.max_daemon_downtime),
                },
            });
        }
        for _ in 0..spec.fetch_stalls {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::FetchStall {
                    node: rng.next_below(spec.nodes.max(1) as u64) as usize,
                    dur: draw_dur(&mut rng, spec.max_fetch_stall),
                },
            });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Arm one kernel event per fault: at each event's time, `inject`
    /// is called with the event. This is the generic kernel-side hook;
    /// the system layer supplies the dispatch into mesh/NIC/daemon.
    pub fn schedule<F>(&self, h: &SimHandle, inject: F)
    where
        F: Fn(&FaultEvent) + Send + Sync + 'static,
    {
        let inject = std::sync::Arc::new(inject);
        for ev in &self.events {
            let ev = ev.clone();
            let inject = std::sync::Arc::clone(&inject);
            h.schedule_at(ev.at, move || inject(&ev));
        }
    }

    /// A deterministic, human-readable rendering of the plan.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "fault plan (seed {}): {} events\n",
            self.seed,
            self.events.len()
        );
        for ev in &self.events {
            out.push_str(&format!("  {} {}\n", ev.at, ev.kind));
        }
        out
    }
}

/// Windows of full stall and of slowdown applied to a timed resource.
///
/// All effects are *delays*: `release` pushes a start time past any
/// enclosing stall window, and `factor_at` scales a service time. A
/// resource applying these to an already-FIFO timeline (like
/// `BandwidthResource` or a mesh channel) stays FIFO.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StallWindows {
    stalls: Vec<(SimTime, SimTime)>,
    slowdowns: Vec<(SimTime, SimTime, f64)>,
}

impl StallWindows {
    /// No windows.
    pub fn new() -> StallWindows {
        StallWindows::default()
    }

    /// Add a full stall over `[start, start + dur)`.
    pub fn add_stall(&mut self, start: SimTime, dur: SimDur) {
        self.stalls.push((start, start + dur));
    }

    /// Add a service-time slowdown of `factor` over `[start, start + dur)`.
    pub fn add_slowdown(&mut self, start: SimTime, dur: SimDur, factor: f64) {
        self.slowdowns.push((start, start + dur, factor.max(1.0)));
    }

    /// Merge another set of windows into this one.
    pub fn merge(&mut self, other: &StallWindows) {
        self.stalls.extend_from_slice(&other.stalls);
        self.slowdowns.extend_from_slice(&other.slowdowns);
    }

    /// The earliest time at or after `at` outside every stall window.
    pub fn release(&self, at: SimTime) -> SimTime {
        let mut t = at;
        // Windows may chain or overlap; iterate to a fixed point. Each
        // pass only moves forward, so this terminates.
        loop {
            let mut moved = false;
            for &(s, e) in &self.stalls {
                if t >= s && t < e {
                    t = e;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The strongest slowdown factor active at `at` (1.0 when none).
    pub fn factor_at(&self, at: SimTime) -> f64 {
        self.slowdowns
            .iter()
            .filter(|&&(s, e, _)| at >= s && at < e)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::max)
    }

    /// True when no windows are present.
    pub fn is_empty(&self) -> bool {
        self.stalls.is_empty() && self.slowdowns.is_empty()
    }
}

/// A timestamped record of injected faults and recovery actions,
/// shared between the injector and the layers that react.
#[derive(Debug, Default)]
pub struct FaultLog {
    entries: Mutex<Vec<(SimTime, String)>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Append one entry.
    pub fn record(&self, at: SimTime, what: impl Into<String>) {
        self.entries.lock().push((at, what.into()));
    }

    /// Copy of the entries in insertion order.
    pub fn snapshot(&self) -> Vec<(SimTime, String)> {
        self.entries.lock().clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Deterministic rendering, one line per entry in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (at, what) in self.entries.lock().iter() {
            out.push_str(&format!("  {at} {what}\n"));
        }
        out
    }
}

/// Bounded retry with exponential backoff, in virtual time: attempt
/// `i` waits up to `timeout(i)` (doubling from `base`, capped at
/// `cap`) before the caller retries or gives up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (≥ 1).
    pub attempts: u32,
    /// Timeout of the first attempt.
    pub base: SimDur,
    /// Upper bound on any single attempt's timeout.
    pub cap: SimDur,
}

impl RetryPolicy {
    /// A policy with explicit parameters.
    pub fn new(attempts: u32, base: SimDur, cap: SimDur) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            base,
            cap,
        }
    }

    /// Default for connection/bootstrap paths (Ethernet handshakes,
    /// VRPC binds, NX rendezvous): 5 attempts from 5 ms, so transient
    /// outages shorter than ~150 ms of virtual time are ridden out.
    pub fn bootstrap() -> RetryPolicy {
        RetryPolicy::new(5, SimDur::from_us(5_000.0), SimDur::from_us(100_000.0))
    }

    /// A single bounded wait with no retry, for non-idempotent
    /// operations (e.g. an RPC call already in flight).
    pub fn no_retry(timeout: SimDur) -> RetryPolicy {
        RetryPolicy::new(1, timeout, timeout)
    }

    /// The timeout for attempt `attempt` (0-based): `base * 2^attempt`,
    /// capped.
    pub fn timeout(&self, attempt: u32) -> SimDur {
        let scaled = SimDur::from_ps(
            self.base
                .as_ps()
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX)),
        );
        scaled.min(self.cap)
    }

    /// Total virtual time the policy may spend waiting.
    pub fn total_budget(&self) -> SimDur {
        (0..self.attempts).fold(SimDur::ZERO, |acc, i| acc + self.timeout(i))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::bootstrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec::heavy(4, SimDur::from_us(1_000.0))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(42, &spec());
        let b = FaultPlan::generate(42, &spec());
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        let c = FaultPlan::generate(43, &spec());
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn generated_events_respect_spec_bounds() {
        let s = spec();
        let plan = FaultPlan::generate(7, &s);
        let expected = s.link_stalls
            + s.brownouts
            + s.dma_stalls
            + s.ipt_violations
            + s.daemon_crashes
            + s.fetch_stalls;
        assert_eq!(plan.events.len(), expected);
        assert!(
            plan.events.windows(2).all(|w| w[0].at <= w[1].at),
            "sorted by time"
        );
        for ev in &plan.events {
            assert!(ev.at < SimTime::ZERO + s.horizon);
            match &ev.kind {
                FaultKind::LinkStall { node, dur } => {
                    assert!(*node < s.nodes && *dur <= s.max_link_stall);
                }
                FaultKind::Brownout { factor, dur } => {
                    assert!((1.0..=s.max_brownout_factor).contains(factor));
                    assert!(*dur <= s.max_brownout);
                }
                FaultKind::DmaStall { node, dur } => {
                    assert!(*node < s.nodes && *dur <= s.max_dma_stall);
                }
                FaultKind::IptViolation { node } => assert!(*node < s.nodes),
                FaultKind::DaemonCrash { node, downtime } => {
                    assert!(*node < s.nodes && *downtime <= s.max_daemon_downtime);
                }
                FaultKind::FetchStall { node, dur } => {
                    assert!(*node < s.nodes && *dur <= s.max_fetch_stall);
                }
                FaultKind::Directive { .. } => {
                    panic!("generate never draws directives; they are scripted only")
                }
                FaultKind::PortStall { .. } => {
                    panic!("generate never draws port stalls; they are scripted only")
                }
            }
        }
    }

    #[test]
    fn schedule_fires_each_event_at_its_time() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(3.0),
                kind: FaultKind::IptViolation { node: 0 },
            },
            FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(1.0),
                kind: FaultKind::LinkStall {
                    node: 1,
                    dur: SimDur::from_us(2.0),
                },
            },
        ]);
        assert_eq!(
            plan.events[0].at.as_us(),
            1.0,
            "scripted plans sort by time"
        );
        let k = crate::Kernel::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        let log = Arc::new(FaultLog::new());
        let log2 = Arc::clone(&log);
        let h = k.handle();
        plan.schedule(&k.handle(), move |ev| {
            fired2.fetch_add(1, Ordering::SeqCst);
            log2.record(h.now(), format!("{}", ev.kind));
        });
        let end = k.run_until_quiescent().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(end.as_us(), 3.0);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0.as_us(), 1.0);
        assert!(snap[1].1.contains("ipt-violation"));
        assert_eq!(log.render(), log.render(), "rendering is deterministic");
    }

    #[test]
    fn stall_windows_release_and_factor() {
        let mut w = StallWindows::new();
        let t = |us: f64| SimTime::ZERO + SimDur::from_us(us);
        w.add_stall(t(10.0), SimDur::from_us(5.0));
        w.add_stall(t(15.0), SimDur::from_us(5.0)); // chains with the first
        w.add_slowdown(t(30.0), SimDur::from_us(10.0), 3.0);
        w.add_slowdown(t(35.0), SimDur::from_us(10.0), 2.0);
        assert_eq!(w.release(t(9.0)), t(9.0));
        assert_eq!(
            w.release(t(10.0)),
            t(20.0),
            "chained windows release at the last end"
        );
        assert_eq!(w.release(t(14.9)), t(20.0));
        assert_eq!(w.release(t(20.0)), t(20.0));
        assert_eq!(w.factor_at(t(29.0)), 1.0);
        assert_eq!(w.factor_at(t(36.0)), 3.0, "strongest active slowdown wins");
        assert_eq!(w.factor_at(t(42.0)), 2.0);
        assert!(!w.is_empty());
        assert!(StallWindows::new().is_empty());
    }

    #[test]
    fn retry_policy_backs_off_exponentially_with_cap() {
        let p = RetryPolicy::new(4, SimDur::from_us(10.0), SimDur::from_us(35.0));
        assert_eq!(p.timeout(0).as_us(), 10.0);
        assert_eq!(p.timeout(1).as_us(), 20.0);
        assert_eq!(p.timeout(2).as_us(), 35.0, "capped");
        assert_eq!(p.timeout(3).as_us(), 35.0);
        assert_eq!(p.total_budget().as_us(), 100.0);
        let single = RetryPolicy::no_retry(SimDur::from_us(7.0));
        assert_eq!(single.attempts, 1);
        assert_eq!(single.timeout(0).as_us(), 7.0);
    }
}
