//! Process-side and kernel-side handles into a running simulation.

use std::sync::Arc;

use crate::kernel::{ProcSync, ProcessId, Shared, ShutdownSignal};
use crate::time::{SimDur, SimTime};

/// The context handed to every simulation process body.
///
/// A `Ctx` lets protocol code observe virtual time, spend it
/// ([`advance`](Ctx::advance)), block ([`park`](Ctx::park)) and wake other
/// processes ([`unpark`](Ctx::unpark)), and schedule one-shot events.
///
/// A `Ctx` must only be used from the process thread it was created for;
/// using it from elsewhere can deadlock the simulation (it cannot cause
/// undefined behaviour). To interact with the simulation from event
/// closures or from the test harness, use [`SimHandle`].
///
/// # Examples
///
/// ```
/// use shrimp_sim::{Kernel, SimDur};
/// let kernel = Kernel::new();
/// kernel.spawn("ping", |ctx| {
///     ctx.advance(SimDur::from_ns(250.0)); // spend CPU time
///     assert_eq!(ctx.now().as_ns(), 250.0);
/// });
/// kernel.run_until_quiescent()?;
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
pub struct Ctx {
    pid: ProcessId,
    shared: Arc<Shared>,
    sync: Arc<ProcSync>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    pub(crate) fn new(pid: ProcessId, shared: Arc<Shared>, sync: Arc<ProcSync>) -> Ctx {
        Ctx { pid, shared, sync }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Spend `d` of virtual time: the process suspends and resumes once
    /// the clock has advanced past every other event in between.
    ///
    /// Under the token-passing executor this thread usually keeps the
    /// token: intervening event closures run inline here, and popping its
    /// own resume simply returns — observable behaviour is identical to a
    /// kernel round-trip, the context switches are just skipped.
    pub fn advance(&self, d: SimDur) {
        if !self.shared.advance_process(self.pid, &self.sync, d) {
            self.shutdown_unwind();
        }
    }

    /// Yield without spending time, letting any same-timestamp events run
    /// first (FIFO order).
    pub fn yield_now(&self) {
        self.advance(SimDur::ZERO);
    }

    /// Suspend until the virtual clock reads `t`. Returns immediately if
    /// `t` is in the past.
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            self.advance(t - now);
        }
    }

    /// Block until another process or event calls [`unpark`](Ctx::unpark)
    /// (or [`SimHandle::unpark`]) for this process.
    ///
    /// Wake-ups are latched: if an unpark arrived while this process was
    /// running, `park` consumes it and returns immediately.
    pub fn park(&self) {
        if self.shared.prepare_park(self.pid) {
            return; // consumed a pending wake-up
        }
        if !self.shared.park_process(self.pid, &self.sync) {
            self.shutdown_unwind();
        }
    }

    /// Wake the given process if it is parked; otherwise latch the wake-up.
    pub fn unpark(&self, pid: ProcessId) {
        self.shared.unpark(pid);
    }

    /// Schedule a one-shot event `d` after now.
    pub fn schedule_in(&self, d: SimDur, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_in(d, Box::new(f));
    }

    /// Schedule a one-shot event at absolute time `at` (clamped to now).
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_at(at, Box::new(f));
    }

    /// Spawn a sibling process starting at the current virtual time.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ProcessId {
        self.shared.spawn(name, f)
    }

    /// A kernel-side handle usable from event closures spawned by this
    /// process.
    pub fn handle(&self) -> SimHandle {
        SimHandle::new(Arc::clone(&self.shared))
    }

    fn shutdown_unwind(&self) -> ! {
        // Shutdown requested: unwind this thread. The unwind is caught
        // by the process wrapper in kernel.rs and reported as a clean
        // termination. `resume_unwind` (rather than `panic_any`) skips
        // the panic hook, so clean shutdowns print no backtrace.
        std::panic::resume_unwind(Box::new(ShutdownSignal));
    }
}

/// A cloneable handle for interacting with the simulation from *outside*
/// process context: event closures, the test harness between
/// [`Kernel::run_until`](crate::Kernel::run_until) calls, or component
/// callbacks.
///
/// Unlike [`Ctx`], a `SimHandle` can never block, so it is safe to use
/// from anywhere.
#[derive(Clone)]
pub struct SimHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHandle").finish_non_exhaustive()
    }
}

impl SimHandle {
    pub(crate) fn new(shared: Arc<Shared>) -> SimHandle {
        SimHandle { shared }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Wake the given process if parked; otherwise latch the wake-up.
    pub fn unpark(&self, pid: ProcessId) {
        self.shared.unpark(pid);
    }

    /// Schedule a one-shot event `d` after now.
    pub fn schedule_in(&self, d: SimDur, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_in(d, Box::new(f));
    }

    /// Schedule a one-shot event at absolute time `at` (clamped to now).
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_at(at, Box::new(f));
    }

    /// Spawn a new process starting at the current virtual time.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ProcessId {
        self.shared.spawn(name, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Kernel, SimDur, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn sleep_until_past_is_noop() {
        let k = Kernel::new();
        let t = Arc::new(AtomicU64::new(u64::MAX));
        let t2 = Arc::clone(&t);
        k.spawn("p", move |ctx| {
            ctx.advance(SimDur::from_us(5.0));
            ctx.sleep_until(SimTime::ZERO + SimDur::from_us(2.0)); // past
            t2.store(ctx.now().as_ps(), Ordering::SeqCst);
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(t.load(Ordering::SeqCst), 5_000_000);
    }

    #[test]
    fn yield_now_lets_same_time_events_run() {
        let k = Kernel::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        k.spawn("a", move |ctx| {
            o1.lock().push("a-before");
            ctx.yield_now();
            o1.lock().push("a-after");
        });
        k.spawn("b", move |_ctx| {
            o2.lock().push("b");
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(*order.lock(), vec!["a-before", "b", "a-after"]);
    }

    #[test]
    fn handle_schedules_from_event_closures() {
        let k = Kernel::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = k.handle();
        let hits2 = Arc::clone(&hits);
        k.schedule_in(SimDur::from_us(1.0), move || {
            let hits3 = Arc::clone(&hits2);
            h.schedule_in(SimDur::from_us(1.0), move || {
                hits3.fetch_add(1, Ordering::SeqCst);
            });
        });
        let end = k.run_until_quiescent().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(end.as_us(), 2.0);
    }
}
