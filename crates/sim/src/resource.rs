//! Shared hardware resources with finite bandwidth.
//!
//! Buses (Xpress memory bus, EISA I/O bus) and links are modelled as
//! *reservation timelines*: a transfer asks the resource for `bytes` of
//! service at time `t` and receives a `[start, end)` window that begins no
//! earlier than both `t` and the end of the previously granted window.
//! This captures FIFO arbitration and throughput limits — the two
//! properties the paper's bandwidth curves depend on — without simulating
//! individual bus cycles.

use parking_lot::Mutex;

use crate::faults::StallWindows;
use crate::time::{SimDur, SimTime};

/// A granted service window on a [`BandwidthResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= request time).
    pub start: SimTime,
    /// When service completes; the resource is busy until then.
    pub end: SimTime,
}

impl Grant {
    /// Total queueing + service delay experienced by the requester.
    pub fn delay_from(&self, requested_at: SimTime) -> SimDur {
        self.end - requested_at
    }
}

/// A FIFO, work-conserving bandwidth resource.
///
/// Each reservation costs a fixed per-transaction overhead (arbitration,
/// setup) plus a per-byte cost derived from the configured bandwidth.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{BandwidthResource, SimTime, SimDur};
/// // 33 MB/s EISA bus with 200 ns arbitration overhead.
/// let bus = BandwidthResource::new("eisa", 33.0e6, SimDur::from_ns(200.0));
/// let g1 = bus.reserve(SimTime::ZERO, 4096);
/// let g2 = bus.reserve(SimTime::ZERO, 4096);
/// assert_eq!(g2.start, g1.end); // FIFO: second transfer queues behind the first
/// ```
#[derive(Debug)]
pub struct BandwidthResource {
    name: &'static str,
    bytes_per_sec: f64,
    per_txn: SimDur,
    inner: Mutex<ResourceInner>,
}

#[derive(Debug, Default)]
struct ResourceInner {
    next_free: SimTime,
    busy_total: SimDur,
    transactions: u64,
    bytes: u64,
    faults: StallWindows,
}

impl BandwidthResource {
    /// Create a resource with the given bandwidth (bytes/second) and fixed
    /// per-transaction overhead.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive.
    pub fn new(name: &'static str, bytes_per_sec: f64, per_txn: SimDur) -> BandwidthResource {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        BandwidthResource {
            name,
            bytes_per_sec,
            per_txn,
            inner: Mutex::new(ResourceInner::default()),
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Reserve the resource for `bytes` starting no earlier than `at`.
    /// Returns the granted window; the caller is expected to advance its
    /// own clock to `grant.end` (or chain further events from it).
    pub fn reserve(&self, at: SimTime, bytes: usize) -> Grant {
        let mut service = self.per_txn + SimDur::per_bytes(bytes, self.bytes_per_sec);
        let mut inner = self.inner.lock();
        let mut start = at.max(inner.next_free);
        // Injected faults (see `shrimp_sim::faults`): a full stall
        // postpones the start, a brownout dilates the service time.
        // Both only delay, so the timeline stays FIFO.
        if !inner.faults.is_empty() {
            start = inner.faults.release(start);
            let factor = inner.faults.factor_at(start);
            if factor > 1.0 {
                service = SimDur::from_ps((service.as_ps() as f64 * factor).ceil() as u64);
            }
        }
        let end = start + service;
        inner.next_free = end;
        inner.busy_total += service;
        inner.transactions += 1;
        inner.bytes += bytes as u64;
        Grant { start, end }
    }

    /// Time at which the resource next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.inner.lock().next_free
    }

    /// Merge injected fault windows into this resource's timeline
    /// (the `resource.rs` injection hook of the fault engine).
    pub fn inject_faults(&self, windows: &StallWindows) {
        self.inner.lock().faults.merge(windows);
    }

    /// Cumulative utilization statistics: (busy time, transactions, bytes).
    pub fn stats(&self) -> (SimDur, u64, u64) {
        let inner = self.inner.lock();
        (inner.busy_total, inner.transactions, inner.bytes)
    }

    /// Reset utilization statistics (not the timeline).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.busy_total = SimDur::ZERO;
        inner.transactions = 0;
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_matches_bandwidth() {
        let r = BandwidthResource::new("r", 1e6, SimDur::ZERO); // 1 MB/s
        let g = r.reserve(SimTime::ZERO, 1000);
        assert_eq!(g.start, SimTime::ZERO);
        assert_eq!(g.end.as_us(), 1000.0); // 1000 B at 1 B/us
    }

    #[test]
    fn fifo_reservations_queue() {
        let r = BandwidthResource::new("r", 1e6, SimDur::from_us(1.0));
        let g1 = r.reserve(SimTime::ZERO, 100);
        let g2 = r.reserve(SimTime::ZERO, 100);
        assert_eq!(g1.end.as_us(), 101.0);
        assert_eq!(g2.start, g1.end);
        assert_eq!(g2.end.as_us(), 202.0);
        assert_eq!(r.next_free(), g2.end);
    }

    #[test]
    fn idle_gap_is_respected() {
        let r = BandwidthResource::new("r", 1e6, SimDur::ZERO);
        let g1 = r.reserve(SimTime::ZERO, 100);
        // Request far after the first completes: starts at request time.
        let late = SimTime::ZERO + SimDur::from_us(500.0);
        let g2 = r.reserve(late, 100);
        assert_eq!(g2.start, late);
        assert!(g1.end < g2.start);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let r = BandwidthResource::new("r", 2e6, SimDur::ZERO);
        r.reserve(SimTime::ZERO, 200);
        r.reserve(SimTime::ZERO, 300);
        let (busy, txns, bytes) = r.stats();
        assert_eq!(txns, 2);
        assert_eq!(bytes, 500);
        assert_eq!(busy.as_us(), 250.0);
        r.reset_stats();
        assert_eq!(r.stats(), (SimDur::ZERO, 0, 0));
    }

    #[test]
    fn grant_delay_from_includes_queueing() {
        let r = BandwidthResource::new("r", 1e6, SimDur::ZERO);
        r.reserve(SimTime::ZERO, 100); // busy until 100us
        let g = r.reserve(SimTime::ZERO, 50);
        assert_eq!(g.delay_from(SimTime::ZERO).as_us(), 150.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthResource::new("bad", 0.0, SimDur::ZERO);
    }

    #[test]
    fn injected_stall_postpones_service() {
        let r = BandwidthResource::new("r", 1e6, SimDur::ZERO);
        let mut w = StallWindows::new();
        w.add_stall(SimTime::ZERO, SimDur::from_us(40.0));
        r.inject_faults(&w);
        let g = r.reserve(SimTime::ZERO, 100);
        assert_eq!(g.start.as_us(), 40.0, "reservation waits out the stall");
        assert_eq!(g.end.as_us(), 140.0);
        // After the window, service is unaffected.
        let late = r.reserve(SimTime::ZERO + SimDur::from_us(500.0), 100);
        assert_eq!(late.start.as_us(), 500.0);
        assert_eq!(late.end.as_us(), 600.0);
    }

    #[test]
    fn injected_brownout_dilates_service() {
        let r = BandwidthResource::new("r", 1e6, SimDur::ZERO);
        let mut w = StallWindows::new();
        w.add_slowdown(SimTime::ZERO, SimDur::from_us(1_000.0), 3.0);
        r.inject_faults(&w);
        let g = r.reserve(SimTime::ZERO, 100);
        assert_eq!(g.end.as_us(), 300.0, "service takes 3x during the brownout");
        // FIFO is preserved under faults.
        let g2 = r.reserve(SimTime::ZERO, 100);
        assert_eq!(g2.start, g.end);
    }
}
