//! Process-wide wall-clock metrics for the simulation engine.
//!
//! These counters measure the *host* cost of running the simulator —
//! how many scheduled items the engine executed, and how many of those
//! the token-passing executor dispatched without a thread handoff — as
//! opposed to the *modelled* (virtual time) costs everything else in
//! this workspace reports. The perf
//! harness (`shrimp-bench`'s `simperf` binary) snapshots them around
//! each workload to derive events/sec.
//!
//! The counters are global atomics because kernel hot paths must not
//! pay for per-kernel plumbing, and because a wall-clock harness always
//! measures one workload at a time. Increments use relaxed ordering;
//! only one simulation thread executes at any moment, so totals are
//! exact for a single kernel and merely additive across concurrent
//! kernels.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static EVENTS_EXECUTED: AtomicU64 = AtomicU64::new(0);
pub(crate) static RESUMES: AtomicU64 = AtomicU64::new(0);
pub(crate) static FAST_RESUMES: AtomicU64 = AtomicU64::new(0);
pub(crate) static BATCHED_EVENTS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the engine counters. Obtain with
/// [`snapshot`]; subtract two snapshots (see [`MetricsSnapshot::delta`])
/// to attribute counts to a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One-shot event closures executed (on any dispatching thread).
    pub events_executed: u64,
    /// Process resumes, counting both token handoffs and own-resume
    /// pops.
    pub resumes: u64,
    /// Resumes a process consumed for *itself* while holding the token
    /// (no thread handoff at all); a subset of `resumes`.
    pub fast_resumes: u64,
    /// Event closures executed inline on a process thread (each one a
    /// kernel-thread handoff avoided); a subset of `events_executed`.
    pub batched_events: u64,
}

impl MetricsSnapshot {
    /// Counts accumulated since `earlier` (saturating).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            events_executed: self.events_executed.saturating_sub(earlier.events_executed),
            resumes: self.resumes.saturating_sub(earlier.resumes),
            fast_resumes: self.fast_resumes.saturating_sub(earlier.fast_resumes),
            batched_events: self.batched_events.saturating_sub(earlier.batched_events),
        }
    }

    /// Total scheduled items executed (events plus resumes).
    pub fn items(&self) -> u64 {
        self.events_executed + self.resumes
    }
}

/// Read the current values of the global engine counters.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        events_executed: EVENTS_EXECUTED.load(Ordering::Relaxed),
        resumes: RESUMES.load(Ordering::Relaxed),
        fast_resumes: FAST_RESUMES.load(Ordering::Relaxed),
        batched_events: BATCHED_EVENTS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_additive() {
        let a = MetricsSnapshot {
            events_executed: 10,
            resumes: 5,
            fast_resumes: 2,
            batched_events: 1,
        };
        let b = MetricsSnapshot {
            events_executed: 25,
            resumes: 9,
            fast_resumes: 4,
            batched_events: 3,
        };
        let d = b.delta(&a);
        assert_eq!(d.events_executed, 15);
        assert_eq!(d.resumes, 4);
        assert_eq!(d.items(), 19);
        // Reversed order saturates to zero rather than wrapping.
        assert_eq!(a.delta(&b).events_executed, 0);
    }

    #[test]
    fn kernel_execution_moves_the_counters() {
        let before = snapshot();
        let k = crate::Kernel::new();
        k.schedule_in(crate::SimDur::from_us(1.0), || {});
        k.spawn("p", |ctx| ctx.advance(crate::SimDur::from_us(2.0)));
        k.run_until_quiescent().unwrap();
        let d = snapshot().delta(&before);
        assert!(d.events_executed >= 1);
        assert!(d.resumes >= 2, "spawn resume + advance resume");
    }
}
