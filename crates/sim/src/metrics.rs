//! Per-kernel wall-clock metrics for the simulation engine.
//!
//! These counters measure the *host* cost of running the simulator —
//! how many scheduled items the engine executed, and how many of those
//! the token-passing executor dispatched without a thread handoff — as
//! opposed to the *modelled* (virtual time) costs everything else in
//! this workspace reports. The perf harness (`shrimp-bench`'s
//! `simperf` and `simprof` binaries) snapshots them around each
//! workload to derive events/sec.
//!
//! Counters live on a [`MetricsRegistry`]; every [`Kernel`](crate::Kernel)
//! captures the thread's *current* registry at construction (the
//! process-wide default when none is installed), so a harness that
//! installs a fresh registry before building its kernels reads exact
//! per-workload numbers even while other kernels run concurrently on
//! other threads. The module-level [`snapshot`] reads the default
//! registry and keeps the old additive-across-everything behaviour for
//! callers that don't care about isolation.
//!
//! Increments use relaxed ordering; only one simulation thread of a
//! kernel executes at any moment, so totals are exact per registry.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The four engine counters backing one registry. Hot paths touch
/// these through `Shared.counters`, paying one pointer indirection per
/// increment (no thread-local lookup on the dispatch path).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) events_executed: AtomicU64,
    pub(crate) resumes: AtomicU64,
    pub(crate) fast_resumes: AtomicU64,
    pub(crate) batched_events: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_executed: self.events_executed.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            fast_resumes: self.fast_resumes.load(Ordering::Relaxed),
            batched_events: self.batched_events.load(Ordering::Relaxed),
        }
    }
}

fn default_counters() -> &'static Arc<Counters> {
    static DEFAULT: OnceLock<Arc<Counters>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(Counters::default()))
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Counters>>> = const { RefCell::new(None) };
}

/// The counters a kernel built on this thread should record into: the
/// installed registry's, else the process-wide default.
pub(crate) fn current_counters() -> Arc<Counters> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .cloned()
            .unwrap_or_else(|| Arc::clone(default_counters()))
    })
}

/// An isolated set of engine counters.
///
/// Install one around a workload so that only kernels built inside the
/// scope record into it:
///
/// ```
/// use shrimp_sim::{Kernel, MetricsRegistry, SimDur};
/// let reg = MetricsRegistry::new();
/// let guard = reg.install();
/// let k = Kernel::new(); // records into `reg`
/// k.spawn("p", |ctx| ctx.advance(SimDur::from_us(1.0)));
/// k.run_until_quiescent()?;
/// drop(guard);
/// assert!(reg.snapshot().resumes >= 1);
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Arc<Counters>,
}

impl MetricsRegistry {
    /// A fresh registry with zeroed counters.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Make this the thread's current registry until the guard drops.
    /// Kernels capture the current registry at [`Kernel::new`]
    /// (crate::Kernel::new) and keep recording into it for their whole
    /// lifetime, even after the guard is gone.
    pub fn install(&self) -> MetricsGuard {
        let prev = CURRENT.with(|c| c.replace(Some(Arc::clone(&self.counters))));
        MetricsGuard { prev }
    }

    /// Current values of this registry's counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.counters.snapshot()
    }
}

/// Restores the previously-installed registry on drop. Returned by
/// [`MetricsRegistry::install`].
#[must_use = "dropping the guard immediately uninstalls the registry"]
#[derive(Debug)]
pub struct MetricsGuard {
    prev: Option<Arc<Counters>>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// A point-in-time copy of a registry's counters. Obtain with
/// [`snapshot`] or [`MetricsRegistry::snapshot`]; subtract two
/// snapshots (see [`MetricsSnapshot::delta`]) to attribute counts to a
/// workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One-shot event closures executed (on any dispatching thread).
    pub events_executed: u64,
    /// Process resumes, counting both token handoffs and own-resume
    /// pops.
    pub resumes: u64,
    /// Resumes a process consumed for *itself* while holding the token
    /// (no thread handoff at all); a subset of `resumes`.
    pub fast_resumes: u64,
    /// Event closures executed inline on a process thread (each one a
    /// kernel-thread handoff avoided); a subset of `events_executed`.
    pub batched_events: u64,
}

impl MetricsSnapshot {
    /// Counts accumulated since `earlier` (saturating).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            events_executed: self.events_executed.saturating_sub(earlier.events_executed),
            resumes: self.resumes.saturating_sub(earlier.resumes),
            fast_resumes: self.fast_resumes.saturating_sub(earlier.fast_resumes),
            batched_events: self.batched_events.saturating_sub(earlier.batched_events),
        }
    }

    /// Total scheduled items executed (events plus resumes).
    pub fn items(&self) -> u64 {
        self.events_executed + self.resumes
    }
}

/// Read the current values of the *default* registry — every kernel
/// built while no [`MetricsRegistry`] was installed on the building
/// thread. Additive across all such kernels.
pub fn snapshot() -> MetricsSnapshot {
    default_counters().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_additive() {
        let a = MetricsSnapshot {
            events_executed: 10,
            resumes: 5,
            fast_resumes: 2,
            batched_events: 1,
        };
        let b = MetricsSnapshot {
            events_executed: 25,
            resumes: 9,
            fast_resumes: 4,
            batched_events: 3,
        };
        let d = b.delta(&a);
        assert_eq!(d.events_executed, 15);
        assert_eq!(d.resumes, 4);
        assert_eq!(d.items(), 19);
        // Reversed order saturates to zero rather than wrapping.
        assert_eq!(a.delta(&b).events_executed, 0);
    }

    #[test]
    fn kernel_execution_moves_the_default_counters() {
        let before = snapshot();
        let k = crate::Kernel::new();
        k.schedule_in(crate::SimDur::from_us(1.0), || {});
        k.spawn("p", |ctx| ctx.advance(crate::SimDur::from_us(2.0)));
        k.run_until_quiescent().unwrap();
        let d = snapshot().delta(&before);
        assert!(d.events_executed >= 1);
        assert!(d.resumes >= 2, "spawn resume + advance resume");
    }

    #[test]
    fn installed_registry_isolates_kernels() {
        let reg = MetricsRegistry::new();
        let default_before = snapshot();
        {
            let _g = reg.install();
            let k = crate::Kernel::new();
            k.schedule_in(crate::SimDur::from_us(1.0), || {});
            k.spawn("p", |ctx| ctx.advance(crate::SimDur::from_us(2.0)));
            k.run_until_quiescent().unwrap();
        }
        let d = reg.snapshot();
        assert!(d.events_executed >= 1);
        assert!(d.resumes >= 2);
        // Concurrent default-registry kernels (other test threads) may
        // move the default counters, but *this* kernel must not have:
        // build a second isolated registry and check zero cross-talk.
        let other = MetricsRegistry::new();
        assert_eq!(other.snapshot(), MetricsSnapshot::default());
        // The guard restored the previous (default) registry.
        let k2 = crate::Kernel::new();
        k2.spawn("q", |ctx| ctx.advance(crate::SimDur::from_us(1.0)));
        k2.run_until_quiescent().unwrap();
        assert!(snapshot().delta(&default_before).resumes >= 1);
        // And the isolated registry did not see k2.
        assert_eq!(reg.snapshot(), d);
    }

    #[test]
    fn kernel_keeps_registry_after_guard_drop() {
        let reg = MetricsRegistry::new();
        let k = {
            let _g = reg.install();
            crate::Kernel::new()
        };
        k.spawn("p", |ctx| ctx.advance(crate::SimDur::from_us(1.0)));
        k.run_until_quiescent().unwrap();
        assert!(reg.snapshot().resumes >= 1);
    }
}
