//! Simulated time.
//!
//! All simulation timestamps are integer **picoseconds** stored in a `u64`.
//! Picosecond resolution lets the hardware model express sub-nanosecond
//! costs (a 64-bit flit on a 175 MB/s link lasts ~45 ns = 45 714 ps) without
//! floating-point accumulation error, while still covering more than 200
//! days of simulated time — many orders of magnitude beyond any experiment
//! in this repository.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in picoseconds from simulation
/// start.
///
/// `SimTime` is an absolute timestamp; [`SimDur`] is the corresponding
/// duration type. The usual mixed arithmetic is provided:
///
/// ```
/// use shrimp_sim::{SimTime, SimDur};
/// let t = SimTime::ZERO + SimDur::from_us(2.5);
/// assert_eq!(t.as_us(), 2.5);
/// assert_eq!(t - SimTime::ZERO, SimDur::from_ns(2500.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, measured in picoseconds.
///
/// ```
/// use shrimp_sim::SimDur;
/// let d = SimDur::from_ns(1.0) * 3;
/// assert_eq!(d.as_ps(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" in timer logic.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (the unit the paper reports).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` (debug builds); saturates in
    /// release builds.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        debug_assert!(earlier <= self, "since() called with a later instant");
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDur {
    /// The empty duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Build a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> SimDur {
        SimDur(ps)
    }

    /// Build a duration from nanoseconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_ns(ns: f64) -> SimDur {
        SimDur((ns * 1_000.0).round() as u64)
    }

    /// Build a duration from microseconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_us(us: f64) -> SimDur {
        SimDur((us * 1_000_000.0).round() as u64)
    }

    /// Build a duration from seconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_secs(s: f64) -> SimDur {
        SimDur((s * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration needed to move `bytes` at `bytes_per_sec`, rounded up to a
    /// whole picosecond so back-to-back transfers never overlap.
    ///
    /// ```
    /// use shrimp_sim::SimDur;
    /// // 33 MB/s EISA burst: 4 bytes take ~121 ns.
    /// let d = SimDur::per_bytes(4, 33.0e6);
    /// assert!((d.as_ns() - 121.2).abs() < 0.5);
    /// ```
    pub fn per_bytes(bytes: usize, bytes_per_sec: f64) -> SimDur {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SimDur(((bytes as f64 / bytes_per_sec) * 1e12).ceil() as u64)
    }

    /// Saturating multiplication by an integer count.
    #[inline]
    pub fn saturating_mul(self, n: u64) -> SimDur {
        SimDur(self.0.saturating_mul(n))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        *self = *self + d;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    #[inline]
    fn sub(self, t: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(t.0))
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, d: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        *self = *self + d;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, d: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, d: SimDur) {
        *self = *self - d;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, n: u64) -> SimDur {
        SimDur(self.0.saturating_mul(n))
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, n: u64) -> SimDur {
        SimDur(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDur::from_us(4.75);
        assert_eq!(t.as_ps(), 4_750_000);
        assert_eq!((t - SimTime::ZERO).as_us(), 4.75);
        assert_eq!(t - SimDur::from_us(4.75), SimTime::ZERO);
    }

    #[test]
    fn durations_saturate_instead_of_wrapping() {
        let d = SimDur(u64::MAX) + SimDur(1);
        assert_eq!(d.0, u64::MAX);
        let t = SimTime::MAX + SimDur(10);
        assert_eq!(t, SimTime::MAX);
        assert_eq!((SimDur(3) - SimDur(5)).as_ps(), 0);
    }

    #[test]
    fn per_bytes_rounds_up() {
        // 1 byte at 3 bytes/sec = 1/3 s = 333_333_333_333.33.. ps -> ceil.
        let d = SimDur::per_bytes(1, 3.0);
        assert_eq!(d.as_ps(), 333_333_333_334);
        assert_eq!(SimDur::per_bytes(0, 1e6), SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn per_bytes_rejects_zero_bandwidth() {
        let _ = SimDur::per_bytes(1, 0.0);
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.since(a), SimDur(4));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SimDur::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(SimDur::from_us(1.0).as_ps(), 1_000_000);
        assert_eq!(SimDur::from_secs(1.0).as_ps(), 1_000_000_000_000);
        assert!((SimDur::from_us(2.0).as_secs() - 2e-6).abs() < 1e-18);
        assert_eq!(format!("{}", SimDur::from_us(1.5)), "1.500us");
        assert_eq!(
            format!("{}", SimTime::ZERO + SimDur::from_us(2.0)),
            "2.000us"
        );
    }
}
