//! The discrete-event simulation kernel.
//!
//! The kernel owns a priority queue of scheduled items and a set of
//! *processes*. A process is protocol code written in ordinary blocking
//! style (loops, calls, waits) that runs on its own OS thread, but the
//! kernel guarantees that **at most one thread — the kernel thread or a
//! single process thread — executes at any moment**. The whole
//! simulation is deterministic: every run with the same inputs produces
//! the same event order and the same virtual timestamps.
//!
//! Two kinds of items live in the event queue:
//!
//! * **Closures** — one-shot events (a packet arriving, a DMA completing).
//! * **Resumes** — wake-ups for processes that called
//!   [`Ctx::advance`](crate::Ctx::advance) or were unparked.
//!
//! Items at equal timestamps execute in the order they were scheduled
//! (FIFO tie-break by sequence number).
//!
//! ## Execution model: direct token passing
//!
//! Exactly one *token* exists per kernel; the thread holding it drains
//! the queue. Each pop is dispatched by the token holder itself:
//!
//! * a **closure** runs inline on whatever thread holds the token (event
//!   closures are `Send` and never block, so any thread will do);
//! * a **resume for the dispatching process itself** simply returns
//!   control to its body — the common polling-loop case costs no context
//!   switch at all;
//! * a **resume for another process** hands the token *directly* to that
//!   process's thread — one context switch, not a round-trip through the
//!   kernel thread.
//!
//! The kernel thread is woken only to finish a run (queue empty or
//! deadline reached), join a terminated process, or surface a panic.
//! Because every pop happens in strict queue order under one lock and
//! trace/metrics hooks fire at the pop regardless of which thread
//! dispatches it, the executed item sequence — and therefore every
//! virtual timestamp — is bit-identical to a classic single-dispatcher
//! loop; only the host-side handoff count changes. Event storage itself
//! is a slab: the binary heap orders small `Copy` keys `(at, seq, slot)`
//! while the actions sit in a recycled slot arena, so heap sifts never
//! move boxed closures around.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDur, SimTime};

/// Identifies a simulation process for the lifetime of its [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Errors surfaced by [`Kernel::run_until_quiescent`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process panicked; carries the process name and panic message.
    ProcessPanicked {
        /// Name given at spawn time.
        process: String,
        /// Stringified panic payload.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessPanicked { process, message } => {
                write!(f, "simulation process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload used to unwind process threads at shutdown. Process code
/// never sees it: the unwind is caught by the process wrapper.
pub(crate) struct ShutdownSignal;

type EventFn = Box<dyn FnOnce() + Send + 'static>;

enum Action {
    Closure(EventFn),
    Resume(ProcessId),
}

/// Heap entry: ordering fields plus the index of the action's slot in the
/// arena. Keeping the heap to a small `Copy` value makes sift operations
/// cheap and leaves the boxed closures in place.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Token handed to a process thread.
enum ToProc {
    /// You hold the token: continue executing.
    Run,
    /// Unwind and exit; the simulation is shutting down.
    Shutdown,
}

/// Reasons the token comes back to the kernel thread.
enum KernelWake {
    /// Queue empty or next entry past the deadline: finish the run.
    Idle,
    /// A process body returned; join its thread and keep dispatching.
    ProcTerminated(ProcessId),
    /// A process body panicked (a real panic, not a shutdown unwind).
    ProcPanicked(ProcessId, String),
    /// An event closure panicked while running on a process thread; the
    /// payload is re-raised on the kernel thread so `run_until` callers
    /// observe the same panic they would from a kernel-dispatched event.
    ClosurePanic(Box<dyn Any + Send>),
}

/// The per-process mailbox used to pass the token to a process thread.
pub(crate) struct ProcSync {
    m: Mutex<Hand>,
    cv: Condvar,
}

#[derive(Default)]
struct Hand {
    token: Option<ToProc>,
    /// Final-termination flag consumed by the shutdown handshake.
    done: bool,
}

impl ProcSync {
    fn new() -> Self {
        ProcSync {
            m: Mutex::new(Hand::default()),
            cv: Condvar::new(),
        }
    }

    /// Hand the token to this process's thread.
    fn post(&self, msg: ToProc) {
        let mut g = self.m.lock();
        debug_assert!(g.token.is_none(), "token duplicated");
        g.token = Some(msg);
        self.cv.notify_one();
    }

    /// Process side: block until the token arrives. Returns `false` when
    /// the simulation is shutting down.
    pub(crate) fn wait_token(&self) -> bool {
        let mut g = self.m.lock();
        loop {
            if let Some(msg) = g.token.take() {
                return matches!(msg, ToProc::Run);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Process side: signal final termination to the shutdown handshake.
    fn signal_done(&self) {
        let mut g = self.m.lock();
        g.done = true;
        self.cv.notify_one();
    }

    /// Kernel side (shutdown only): wait for the thread's final signal.
    fn wait_done(&self) {
        let mut g = self.m.lock();
        while !g.done {
            self.cv.wait(&mut g);
        }
    }
}

/// The kernel thread's mailbox. Only one wake can ever be pending: a
/// waker holds the token and hands it over with the wake.
struct KernelSync {
    m: Mutex<Option<KernelWake>>,
    cv: Condvar,
}

impl KernelSync {
    fn new() -> Self {
        KernelSync {
            m: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wake(&self, w: KernelWake) {
        let mut g = self.m.lock();
        debug_assert!(g.is_none(), "kernel woken twice");
        *g = Some(w);
        self.cv.notify_one();
    }

    fn wait(&self) -> KernelWake {
        let mut g = self.m.lock();
        loop {
            if let Some(w) = g.take() {
                return w;
            }
            self.cv.wait(&mut g);
        }
    }
}

/// Outcome of dispatching one queue entry.
enum Step {
    /// A closure ran; the dispatching actor keeps the token.
    Ran,
    /// The dispatching process popped its own resume: keep running.
    MyResume,
    /// The token was handed to another process.
    Handed,
    /// The queue is empty.
    Quiesced,
    /// The next entry lies beyond the current run's deadline.
    PastDeadline,
    /// A closure panicked on a process thread; the kernel has been woken
    /// with the payload and will re-raise it.
    Poisoned,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    /// Has a resume entry in the queue (or is currently running).
    Scheduled,
    /// Waiting for an unpark.
    Parked,
    /// Finished; thread joined or about to be.
    Terminated,
}

struct ProcSlot {
    name: String,
    sync: Arc<ProcSync>,
    join: Option<JoinHandle<()>>,
    status: ProcStatus,
    wake_pending: bool,
}

pub(crate) struct State {
    now: SimTime,
    seq: u64,
    /// Deadline of the run currently in progress; no dispatcher may
    /// execute an entry past it.
    deadline: SimTime,
    queue: BinaryHeap<Reverse<HeapKey>>,
    /// Slot arena holding the actions the heap keys point at.
    slots: Vec<Option<Action>>,
    free_slots: Vec<u32>,
    procs: Vec<ProcSlot>,
    shutting_down: bool,
}

impl State {
    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(action);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slot arena overflow");
                self.slots.push(Some(action));
                s
            }
        };
        self.queue.push(Reverse(HeapKey { at, seq, slot }));
    }

    fn take_action(&mut self, key: HeapKey) -> Action {
        let action = self.slots[key.slot as usize]
            .take()
            .expect("popped key points at an empty slot");
        self.free_slots.push(key.slot);
        action
    }
}

/// Shared between the kernel, all [`Ctx`](crate::Ctx) handles, and all
/// [`SimHandle`](crate::SimHandle)s.
pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
    kernel_sync: KernelSync,
    /// Mirror of `state.now`, so `now()` never takes the state lock.
    now_ps: AtomicU64,
    /// Trace hook; lives here (not on `Kernel`) because any thread that
    /// holds the token dispatches entries and must emit the same events
    /// the kernel thread would.
    tracer: Mutex<Option<Tracer>>,
    /// Cheap guard so untraced runs never touch the tracer mutex.
    has_tracer: AtomicBool,
    /// Engine counters this kernel records into: the registry current
    /// on the constructing thread (see `crate::metrics`).
    counters: Arc<crate::metrics::Counters>,
}

impl Shared {
    pub(crate) fn now(&self) -> SimTime {
        SimTime(self.now_ps.load(Ordering::Relaxed))
    }

    fn set_now(&self, st: &mut State, at: SimTime) {
        st.now = at;
        self.now_ps.store(at.as_ps(), Ordering::Relaxed);
    }

    fn trace(&self, ev: TraceEvent) {
        if let Some(t) = self.tracer.lock().as_ref() {
            t(&ev);
        }
    }

    pub(crate) fn schedule_at(&self, at: SimTime, f: EventFn) {
        let mut st = self.state.lock();
        let at = at.max(st.now);
        st.push(at, Action::Closure(f));
    }

    pub(crate) fn schedule_in(&self, d: SimDur, f: EventFn) {
        let mut st = self.state.lock();
        let at = st.now + d;
        st.push(at, Action::Closure(f));
    }

    /// Wake `pid` if it is parked; otherwise remember the wake-up so the
    /// next `park` returns immediately (exactly like thread unpark).
    pub(crate) fn unpark(&self, pid: ProcessId) {
        let mut st = self.state.lock();
        let now = st.now;
        let slot = &mut st.procs[pid.0];
        match slot.status {
            ProcStatus::Parked => {
                slot.status = ProcStatus::Scheduled;
                st.push(now, Action::Resume(pid));
            }
            ProcStatus::Scheduled => slot.wake_pending = true,
            ProcStatus::Terminated => {}
        }
    }

    /// Called by a process that is about to park. Returns `true` if a
    /// pending wake-up was consumed (the caller should not park).
    pub(crate) fn prepare_park(&self, pid: ProcessId) -> bool {
        let mut st = self.state.lock();
        let slot = &mut st.procs[pid.0];
        if slot.wake_pending {
            slot.wake_pending = false;
            // Stay Scheduled: the caller continues running without
            // yielding, which is safe because it still holds the token.
            true
        } else {
            slot.status = ProcStatus::Parked;
            false
        }
    }

    /// Dispatch the next queue entry on the calling thread. `me` is the
    /// dispatching process, or `None` when the kernel thread dispatches.
    ///
    /// Exactly one thread per kernel is ever inside this function (it
    /// holds the token), so the pops — and the trace/metrics emissions
    /// that accompany them — form one globally ordered sequence no
    /// matter which threads perform them.
    fn dispatch_next(&self, me: Option<ProcessId>) -> Step {
        loop {
            enum Todo {
                Run(EventFn),
                Mine(Option<String>),
                Give(Arc<ProcSync>, Option<String>),
            }
            let at;
            let todo;
            {
                let mut st = self.state.lock();
                let next_at = match st.queue.peek() {
                    None => return Step::Quiesced,
                    Some(&Reverse(k)) => k.at,
                };
                if next_at > st.deadline {
                    return Step::PastDeadline;
                }
                let Reverse(key) = st.queue.pop().expect("peeked entry vanished");
                at = next_at;
                self.set_now(&mut st, at);
                todo = match st.take_action(key) {
                    Action::Closure(f) => Todo::Run(f),
                    Action::Resume(pid) => {
                        let slot = &st.procs[pid.0];
                        if slot.status == ProcStatus::Terminated {
                            continue; // stale resume for a finished process
                        }
                        debug_assert_eq!(slot.status, ProcStatus::Scheduled);
                        let name = if self.has_tracer.load(Ordering::Relaxed) {
                            Some(slot.name.clone())
                        } else {
                            None
                        };
                        if me == Some(pid) {
                            Todo::Mine(name)
                        } else {
                            Todo::Give(Arc::clone(&slot.sync), name)
                        }
                    }
                };
            }
            return match todo {
                Todo::Run(f) => {
                    self.counters
                        .events_executed
                        .fetch_add(1, Ordering::Relaxed);
                    if me.is_some() {
                        // A kernel-thread handoff avoided: the closure
                        // runs inline on the process thread.
                        self.counters.batched_events.fetch_add(1, Ordering::Relaxed);
                    }
                    if self.has_tracer.load(Ordering::Relaxed) {
                        self.trace(TraceEvent::Event { at });
                    }
                    if me.is_some() {
                        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                            self.kernel_sync.wake(KernelWake::ClosurePanic(payload));
                            return Step::Poisoned;
                        }
                    } else {
                        f();
                    }
                    Step::Ran
                }
                Todo::Mine(name) => {
                    self.counters.resumes.fetch_add(1, Ordering::Relaxed);
                    self.counters.fast_resumes.fetch_add(1, Ordering::Relaxed);
                    if let Some(process) = name {
                        self.trace(TraceEvent::Resume { at, process });
                    }
                    Step::MyResume
                }
                Todo::Give(sync, name) => {
                    self.counters.resumes.fetch_add(1, Ordering::Relaxed);
                    // Trace before the handoff so the receiving process
                    // cannot emit its next event first.
                    if let Some(process) = name {
                        self.trace(TraceEvent::Resume { at, process });
                    }
                    sync.post(ToProc::Run);
                    Step::Handed
                }
            };
        }
    }

    /// Drive the queue from a process thread until control returns to
    /// this process — either it pops its own resume directly, or it hands
    /// the token away and blocks until another dispatcher pops its
    /// resume. Returns `false` when the simulation is shutting down.
    fn dispatch_as_process(&self, me: ProcessId, sync: &ProcSync) -> bool {
        loop {
            match self.dispatch_next(Some(me)) {
                Step::Ran => continue,
                Step::MyResume => return true,
                Step::Handed | Step::Poisoned => return sync.wait_token(),
                Step::Quiesced | Step::PastDeadline => {
                    self.kernel_sync.wake(KernelWake::Idle);
                    return sync.wait_token();
                }
            }
        }
    }

    /// [`Ctx::advance`](crate::Ctx::advance): schedule this process's
    /// resume and dispatch until it comes up. Returns `false` at
    /// shutdown.
    pub(crate) fn advance_process(&self, me: ProcessId, sync: &ProcSync, d: SimDur) -> bool {
        {
            let mut st = self.state.lock();
            if st.shutting_down {
                drop(st);
                return sync.wait_token(); // delivers the Shutdown token
            }
            let at = st.now + d;
            st.push(at, Action::Resume(me));
        }
        self.dispatch_as_process(me, sync)
    }

    /// [`Ctx::park`](crate::Ctx::park) after `prepare_park`: dispatch
    /// without scheduling a resume; control returns when an unpark
    /// schedules one. Returns `false` at shutdown.
    pub(crate) fn park_process(&self, me: ProcessId, sync: &ProcSync) -> bool {
        if self.state.lock().shutting_down {
            return sync.wait_token();
        }
        self.dispatch_as_process(me, sync)
    }

    pub(crate) fn spawn(
        self: &Arc<Self>,
        name: impl Into<String>,
        f: impl FnOnce(&crate::Ctx) + Send + 'static,
    ) -> ProcessId {
        let name = name.into();
        let sync = Arc::new(ProcSync::new());
        let mut st = self.state.lock();
        let pid = ProcessId(st.procs.len());
        let ctx = crate::Ctx::new(pid, Arc::clone(self), Arc::clone(&sync));
        let tsync = Arc::clone(&sync);
        let tname = name.clone();
        let shared = Arc::clone(self);
        let join = std::thread::Builder::new()
            .name(format!("sim-{tname}"))
            .spawn(move || {
                if !tsync.wait_token() {
                    tsync.signal_done();
                    return;
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                match result {
                    // The body finished while holding the token: hand it
                    // to the kernel thread, which joins us and carries on.
                    Ok(()) => shared.kernel_sync.wake(KernelWake::ProcTerminated(pid)),
                    Err(payload) => {
                        if payload.is::<ShutdownSignal>() {
                            tsync.signal_done();
                        } else {
                            let msg = panic_message(payload.as_ref());
                            shared.kernel_sync.wake(KernelWake::ProcPanicked(pid, msg));
                        }
                    }
                }
            })
            .expect("failed to spawn simulation process thread");
        st.procs.push(ProcSlot {
            name,
            sync,
            join: Some(join),
            status: ProcStatus::Scheduled,
            wake_pending: false,
        });
        let now = st.now;
        st.push(now, Action::Resume(pid));
        pid
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The simulation kernel. See the crate documentation for the
/// execution model.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{Kernel, SimDur};
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
///
/// let kernel = Kernel::new();
/// let done_at = Arc::new(AtomicU64::new(0));
/// let d = Arc::clone(&done_at);
/// kernel.spawn("worker", move |ctx| {
///     ctx.advance(SimDur::from_us(3.0));
///     d.store(ctx.now().as_ps(), Ordering::SeqCst);
/// });
/// kernel.run_until_quiescent()?;
/// assert_eq!(done_at.load(Ordering::SeqCst), 3_000_000);
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
pub struct Kernel {
    shared: Arc<Shared>,
}

/// What a trace hook observes: every scheduled item the kernel executes.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A one-shot event closure ran at the given time.
    Event {
        /// Execution time.
        at: SimTime,
    },
    /// A process was resumed at the given time.
    Resume {
        /// Execution time.
        at: SimTime,
        /// The process's spawn name.
        process: String,
    },
}

/// A trace hook installed with [`Kernel::set_tracer`].
pub type Tracer = Box<dyn Fn(&TraceEvent) + Send>;

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create an empty kernel at time zero.
    pub fn new() -> Kernel {
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    now: SimTime::ZERO,
                    seq: 0,
                    deadline: SimTime::ZERO,
                    queue: BinaryHeap::new(),
                    slots: Vec::new(),
                    free_slots: Vec::new(),
                    procs: Vec::new(),
                    shutting_down: false,
                }),
                kernel_sync: KernelSync::new(),
                now_ps: AtomicU64::new(0),
                tracer: Mutex::new(None),
                has_tracer: AtomicBool::new(false),
                counters: crate::metrics::current_counters(),
            }),
        }
    }

    /// Install a trace hook observing every executed item (diagnostics;
    /// adds a callback per event). The hook may be invoked from any
    /// simulation thread, but invocations are strictly serialized and in
    /// queue order. Replaces any previous tracer.
    pub fn set_tracer(&self, tracer: impl Fn(&TraceEvent) + Send + 'static) {
        *self.shared.tracer.lock() = Some(Box::new(tracer));
        self.shared.has_tracer.store(true, Ordering::Relaxed);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// A cloneable, kernel-side handle for scheduling events and waking
    /// processes from outside process context.
    pub fn handle(&self) -> crate::SimHandle {
        crate::SimHandle::new(Arc::clone(&self.shared))
    }

    /// Spawn a named process. Its body starts executing at the current
    /// virtual time, when the kernel next runs.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&crate::Ctx) + Send + 'static,
    ) -> ProcessId {
        self.shared.spawn(name, f)
    }

    /// Schedule a one-shot event `d` after the current virtual time.
    pub fn schedule_in(&self, d: SimDur, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_in(d, Box::new(f));
    }

    /// Run until the event queue is empty. Parked processes (servers,
    /// daemons) may remain; they are cleanly shut down when the kernel is
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanicked`] if any process panicked; the
    /// rest of the simulation is shut down first.
    pub fn run_until_quiescent(&self) -> Result<SimTime, SimError> {
        self.run_inner(SimTime::MAX)
    }

    /// Run until the queue is empty **or** virtual time would pass
    /// `deadline`; on return the clock reads `min(deadline, quiescent
    /// time)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanicked`] if any process panicked.
    pub fn run_until(&self, deadline: SimTime) -> Result<SimTime, SimError> {
        self.run_inner(deadline)
    }

    fn run_inner(&self, deadline: SimTime) -> Result<SimTime, SimError> {
        self.shared.state.lock().deadline = deadline;
        loop {
            match self.shared.dispatch_next(None) {
                Step::Ran => {}
                Step::MyResume | Step::Poisoned => {
                    unreachable!("kernel dispatch has no own resume and re-raises panics directly")
                }
                Step::Handed => match self.shared.kernel_sync.wait() {
                    KernelWake::Idle => {} // re-examine the queue
                    KernelWake::ProcTerminated(pid) => self.finish_proc(pid),
                    KernelWake::ProcPanicked(pid, message) => {
                        let process = {
                            let st = self.shared.state.lock();
                            st.procs[pid.0].name.clone()
                        };
                        self.finish_proc(pid);
                        self.shutdown();
                        return Err(SimError::ProcessPanicked { process, message });
                    }
                    KernelWake::ClosurePanic(payload) => panic::resume_unwind(payload),
                },
                Step::Quiesced => return Ok(self.shared.now()),
                Step::PastDeadline => {
                    let mut st = self.shared.state.lock();
                    let clamped = deadline.max(st.now);
                    self.shared.set_now(&mut st, clamped);
                    return Ok(clamped);
                }
            }
        }
    }

    fn finish_proc(&self, pid: ProcessId) {
        let join = {
            let mut st = self.shared.state.lock();
            let slot = &mut st.procs[pid.0];
            slot.status = ProcStatus::Terminated;
            slot.join.take()
        };
        if let Some(j) = join {
            let _ = j.join();
        }
    }

    /// Names of processes currently parked (useful for deadlock checks in
    /// tests).
    pub fn parked_processes(&self) -> Vec<String> {
        let st = self.shared.state.lock();
        st.procs
            .iter()
            .filter(|p| p.status == ProcStatus::Parked)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Cleanly unwind every live process. Called automatically on drop.
    fn shutdown(&self) {
        let live: Vec<(ProcessId, Arc<ProcSync>)> = {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
            st.queue.clear();
            st.slots.clear();
            st.free_slots.clear();
            st.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status != ProcStatus::Terminated)
                .map(|(i, p)| (ProcessId(i), Arc::clone(&p.sync)))
                .collect()
        };
        for (pid, sync) in live {
            sync.post(ToProc::Shutdown);
            sync.wait_done();
            self.finish_proc(pid);
        }
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn events_run_in_time_order_with_fifo_tiebreak() {
        let k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [(0usize, 5.0), (1, 1.0), (2, 5.0), (3, 3.0)] {
            let log = Arc::clone(&log);
            k.schedule_in(SimDur::from_us(d), move || log.lock().push(i));
        }
        k.run_until_quiescent().unwrap();
        assert_eq!(*log.lock(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn process_advance_moves_virtual_time() {
        let k = Kernel::new();
        let t = Arc::new(Mutex::new(SimTime::ZERO));
        let t2 = Arc::clone(&t);
        k.spawn("p", move |ctx| {
            ctx.advance(SimDur::from_us(2.0));
            ctx.advance(SimDur::from_us(3.0));
            *t2.lock() = ctx.now();
        });
        let end = k.run_until_quiescent().unwrap();
        assert_eq!(t.lock().as_us(), 5.0);
        assert_eq!(end.as_us(), 5.0);
    }

    #[test]
    fn park_unpark_round_trip() {
        let k = Kernel::new();
        let woke_at = Arc::new(Mutex::new(SimTime::ZERO));
        let w = Arc::clone(&woke_at);
        let pid = k.spawn("sleeper", move |ctx| {
            ctx.park();
            *w.lock() = ctx.now();
        });
        let h = k.handle();
        k.schedule_in(SimDur::from_us(7.0), move || h.unpark(pid));
        k.run_until_quiescent().unwrap();
        assert_eq!(woke_at.lock().as_us(), 7.0);
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        let k = Kernel::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let pid = k.spawn("p", move |ctx| {
            // Give the waker a chance to run first.
            ctx.advance(SimDur::from_us(10.0));
            ctx.park(); // wake already pending: returns immediately
            r.store(1, Ordering::SeqCst);
        });
        let h = k.handle();
        k.schedule_in(SimDur::from_us(1.0), move || h.unpark(pid));
        k.run_until_quiescent().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn process_panic_is_reported() {
        let k = Kernel::new();
        k.spawn("bad", |_ctx| panic!("boom"));
        let err = k.run_until_quiescent().unwrap_err();
        match err {
            SimError::ProcessPanicked { process, message } => {
                assert_eq!(process, "bad");
                assert_eq!(message, "boom");
            }
        }
    }

    #[test]
    fn parked_processes_survive_quiescence_and_shutdown() {
        let k = Kernel::new();
        k.spawn("daemon", |ctx| {
            ctx.park(); // never woken
            unreachable!("daemon should be unwound at shutdown, not resumed");
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(k.parked_processes(), vec!["daemon".to_string()]);
        // Drop (end of scope) must not hang or panic.
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let k = Kernel::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 1..=10 {
            let h = Arc::clone(&hits);
            k.schedule_in(SimDur::from_us(i as f64), move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t = k.run_until(SimTime::ZERO + SimDur::from_us(4.5)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(t.as_us(), 4.5);
        k.run_until_quiescent().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn run_until_deadline_interrupts_advancing_process() {
        // A process sleeping past the deadline must not carry the clock
        // with it: its dispatch hands control back to the kernel, which
        // stops at exactly the deadline; the process finishes in a later
        // run.
        let k = Kernel::new();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        k.spawn("sleeper", move |ctx| {
            ctx.advance(SimDur::from_us(10.0));
            d.store(ctx.now().as_ps() as usize, Ordering::SeqCst);
        });
        let t = k.run_until(SimTime::ZERO + SimDur::from_us(4.0)).unwrap();
        assert_eq!(t.as_us(), 4.0);
        assert_eq!(done.load(Ordering::SeqCst), 0, "must not run past deadline");
        assert_eq!(k.now().as_us(), 4.0);
        k.run_until_quiescent().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 10_000_000);
    }

    #[test]
    fn nested_spawn_from_process() {
        let k = Kernel::new();
        let sum = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&sum);
        k.spawn("parent", move |ctx| {
            let s2 = Arc::clone(&s);
            ctx.spawn("child", move |cctx| {
                cctx.advance(SimDur::from_us(1.0));
                s2.fetch_add(10, Ordering::SeqCst);
            });
            ctx.advance(SimDur::from_us(2.0));
            s.fetch_add(1, Ordering::SeqCst);
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, usize)> {
            let k = Kernel::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..4 {
                let log = Arc::clone(&log);
                k.spawn(format!("p{i}"), move |ctx| {
                    for step in 0..3 {
                        ctx.advance(SimDur::from_us((i + 1) as f64));
                        log.lock().push((ctx.now().as_ps(), i * 10 + step));
                    }
                });
            }
            k.run_until_quiescent().unwrap();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn own_resume_dispatch_is_traced_like_a_kernel_one() {
        // A lone advancing process pops its own resumes without any
        // handoff; the tracer must still see one Resume per advance, at
        // the right timestamps.
        let k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        k.set_tracer(move |ev| {
            if let TraceEvent::Resume { at, process } = ev {
                l.lock().push((at.as_ps(), process.clone()));
            }
        });
        k.spawn("solo", |ctx| {
            ctx.advance(SimDur::from_us(1.0));
            ctx.advance(SimDur::from_us(2.0));
        });
        k.run_until_quiescent().unwrap();
        let log = log.lock().clone();
        assert_eq!(
            log,
            vec![
                (0, "solo".to_string()),
                (1_000_000, "solo".to_string()),
                (3_000_000, "solo".to_string()),
            ]
        );
    }

    #[test]
    fn closures_run_inline_during_process_advance() {
        // An event scheduled between now and the wake-up time executes
        // (on the advancing process's thread) before the advance returns,
        // in queue order.
        let k = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        k.schedule_in(SimDur::from_us(1.0), move || o1.lock().push("event"));
        k.spawn("p", move |ctx| {
            ctx.advance(SimDur::from_us(5.0));
            o2.lock().push("proc");
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(*order.lock(), vec!["event", "proc"]);
    }

    #[test]
    fn closure_panic_surfaces_on_the_run_caller() {
        // Closures may execute on process threads, but a panicking
        // closure must still unwind out of run_until_quiescent on the
        // kernel thread, exactly as if the kernel had dispatched it.
        let k = Kernel::new();
        k.spawn("driver", |ctx| {
            ctx.schedule_in(SimDur::from_us(1.0), || panic!("event went bad"));
            ctx.advance(SimDur::from_us(5.0));
        });
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| k.run_until_quiescent()));
        let payload = caught.expect_err("closure panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("event went bad")
        );
    }

    #[test]
    fn direct_handoff_preserves_round_robin_order() {
        // Three processes advancing by the same step hand the token to
        // each other directly; the interleaving must stay strict FIFO.
        let k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3usize {
            let log = Arc::clone(&log);
            k.spawn(format!("p{i}"), move |ctx| {
                for step in 0..3usize {
                    ctx.advance(SimDur::from_us(1.0));
                    log.lock().push((step, i));
                }
            });
        }
        k.run_until_quiescent().unwrap();
        let expect: Vec<(usize, usize)> = (0..3)
            .flat_map(|step| (0..3).map(move |i| (step, i)))
            .collect();
        assert_eq!(*log.lock(), expect);
    }

    #[test]
    fn same_time_event_batch_preserves_fifo_and_interleaving() {
        // Five closures at one timestamp, where the middle one schedules
        // a sixth at the same time: execution must stay in seq order.
        let k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let h = k.handle();
        for i in 0..5 {
            let log = Arc::clone(&log);
            let h = h.clone();
            k.schedule_in(SimDur::from_us(1.0), move || {
                log.lock().push(i);
                if i == 2 {
                    let log = Arc::clone(&log);
                    h.schedule_in(SimDur::ZERO, move || log.lock().push(99));
                }
            });
        }
        k.run_until_quiescent().unwrap();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4, 99]);
    }
}
