//! The discrete-event simulation kernel.
//!
//! The kernel owns a priority queue of scheduled items and a set of
//! *processes*. A process is protocol code written in ordinary blocking
//! style (loops, calls, waits) that runs on its own OS thread, but the
//! kernel guarantees that **at most one thread — the kernel thread or a
//! single process thread — executes at any moment**. Control is handed
//! back and forth with a strict two-phase handshake, so the whole
//! simulation is deterministic: every run with the same inputs produces
//! the same event order and the same virtual timestamps.
//!
//! Two kinds of items live in the event queue:
//!
//! * **Closures** — one-shot events (a packet arriving, a DMA completing),
//!   executed on the kernel thread.
//! * **Resumes** — wake-ups for processes that called
//!   [`Ctx::advance`](crate::Ctx::advance) or were unparked.
//!
//! Items at equal timestamps execute in the order they were scheduled
//! (FIFO tie-break by sequence number).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDur, SimTime};

/// Identifies a simulation process for the lifetime of its [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Errors surfaced by [`Kernel::run_until_quiescent`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process panicked; carries the process name and panic message.
    ProcessPanicked {
        /// Name given at spawn time.
        process: String,
        /// Stringified panic payload.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessPanicked { process, message } => {
                write!(f, "simulation process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload used to unwind process threads at shutdown. Process code
/// never sees it: the unwind is caught by the process wrapper.
pub(crate) struct ShutdownSignal;

type EventFn = Box<dyn FnOnce() + Send + 'static>;

enum Action {
    Closure(EventFn),
    Resume(ProcessId),
}

struct Entry {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Message handed from kernel to a process thread.
enum ToProc {
    /// Continue executing.
    Run,
    /// Unwind and exit; the simulation is shutting down.
    Shutdown,
}

/// Message handed from a process thread back to the kernel.
enum ToKernel {
    /// The process yielded (it scheduled its own resume or parked).
    Yielded,
    /// The process function returned normally or unwound at shutdown.
    Terminated,
    /// The process function panicked with the given message.
    Panicked(String),
}

/// The per-process rendezvous used to pass control between the kernel
/// thread and a process thread.
pub(crate) struct ProcSync {
    m: Mutex<Hand>,
    cv: Condvar,
}

#[derive(Default)]
struct Hand {
    to_proc: Option<ToProc>,
    to_kernel: Option<ToKernel>,
}

impl ProcSync {
    fn new() -> Self {
        ProcSync {
            m: Mutex::new(Hand::default()),
            cv: Condvar::new(),
        }
    }

    /// Kernel side: give the process the token and wait for it to yield.
    fn resume_and_wait(&self, msg: ToProc) -> ToKernel {
        let mut g = self.m.lock();
        debug_assert!(g.to_proc.is_none());
        g.to_proc = Some(msg);
        self.cv.notify_all();
        loop {
            if let Some(back) = g.to_kernel.take() {
                return back;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Process side: give the kernel the token and wait for our next turn.
    /// Returns `false` when the simulation is shutting down.
    pub(crate) fn yield_and_wait(&self, terminal: bool) -> bool {
        let mut g = self.m.lock();
        debug_assert!(g.to_kernel.is_none());
        g.to_kernel = Some(ToKernel::Yielded);
        self.cv.notify_all();
        if terminal {
            return false;
        }
        loop {
            if let Some(msg) = g.to_proc.take() {
                return matches!(msg, ToProc::Run);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Process side, first wait before the body runs.
    fn wait_first_turn(&self) -> bool {
        let mut g = self.m.lock();
        loop {
            if let Some(msg) = g.to_proc.take() {
                return matches!(msg, ToProc::Run);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Process side: final handoff when the body has finished or panicked.
    fn send_final(&self, msg: ToKernel) {
        let mut g = self.m.lock();
        g.to_kernel = Some(msg);
        self.cv.notify_all();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    /// Has a resume entry in the queue (or is currently running).
    Scheduled,
    /// Waiting for an unpark.
    Parked,
    /// Finished; thread joined or about to be.
    Terminated,
}

struct ProcSlot {
    name: String,
    sync: Arc<ProcSync>,
    join: Option<JoinHandle<()>>,
    status: ProcStatus,
    wake_pending: bool,
}

pub(crate) struct State {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry>>,
    procs: Vec<ProcSlot>,
    shutting_down: bool,
}

impl State {
    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { at, seq, action }));
    }
}

/// Shared between the kernel, all [`Ctx`](crate::Ctx) handles, and all
/// [`SimHandle`](crate::SimHandle)s.
pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
}

impl Shared {
    pub(crate) fn now(&self) -> SimTime {
        self.state.lock().now
    }

    pub(crate) fn schedule_at(&self, at: SimTime, f: EventFn) {
        let mut st = self.state.lock();
        let at = at.max(st.now);
        st.push(at, Action::Closure(f));
    }

    pub(crate) fn schedule_in(&self, d: SimDur, f: EventFn) {
        let mut st = self.state.lock();
        let at = st.now + d;
        st.push(at, Action::Closure(f));
    }

    /// Wake `pid` if it is parked; otherwise remember the wake-up so the
    /// next `park` returns immediately (exactly like thread unpark).
    pub(crate) fn unpark(&self, pid: ProcessId) {
        let mut st = self.state.lock();
        let now = st.now;
        let slot = &mut st.procs[pid.0];
        match slot.status {
            ProcStatus::Parked => {
                slot.status = ProcStatus::Scheduled;
                st.push(now, Action::Resume(pid));
            }
            ProcStatus::Scheduled => slot.wake_pending = true,
            ProcStatus::Terminated => {}
        }
    }

    /// Called by a process that is about to park. Returns `true` if a
    /// pending wake-up was consumed (the caller should not park).
    pub(crate) fn prepare_park(&self, pid: ProcessId) -> bool {
        let mut st = self.state.lock();
        let slot = &mut st.procs[pid.0];
        if slot.wake_pending {
            slot.wake_pending = false;
            // Stay Scheduled: the caller continues running without
            // yielding, which is safe because it still holds the token.
            true
        } else {
            slot.status = ProcStatus::Parked;
            false
        }
    }

    /// Called by a process yielding until `at`.
    pub(crate) fn schedule_resume(&self, pid: ProcessId, d: SimDur) {
        let mut st = self.state.lock();
        let at = st.now + d;
        st.push(at, Action::Resume(pid));
    }

    pub(crate) fn spawn(
        self: &Arc<Self>,
        name: impl Into<String>,
        f: impl FnOnce(&crate::Ctx) + Send + 'static,
    ) -> ProcessId {
        let name = name.into();
        let sync = Arc::new(ProcSync::new());
        let mut st = self.state.lock();
        let pid = ProcessId(st.procs.len());
        let ctx = crate::Ctx::new(pid, Arc::clone(self), Arc::clone(&sync));
        let tsync = Arc::clone(&sync);
        let tname = name.clone();
        let join = std::thread::Builder::new()
            .name(format!("sim-{tname}"))
            .spawn(move || {
                if !tsync.wait_first_turn() {
                    tsync.send_final(ToKernel::Terminated);
                    return;
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                match result {
                    Ok(()) => tsync.send_final(ToKernel::Terminated),
                    Err(payload) => {
                        if payload.is::<ShutdownSignal>() {
                            tsync.send_final(ToKernel::Terminated);
                        } else {
                            let msg = panic_message(payload.as_ref());
                            tsync.send_final(ToKernel::Panicked(msg));
                        }
                    }
                }
            })
            .expect("failed to spawn simulation process thread");
        st.procs.push(ProcSlot {
            name,
            sync,
            join: Some(join),
            status: ProcStatus::Scheduled,
            wake_pending: false,
        });
        let now = st.now;
        st.push(now, Action::Resume(pid));
        pid
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The simulation kernel. See the crate documentation for the
/// execution model.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{Kernel, SimDur};
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
///
/// let kernel = Kernel::new();
/// let done_at = Arc::new(AtomicU64::new(0));
/// let d = Arc::clone(&done_at);
/// kernel.spawn("worker", move |ctx| {
///     ctx.advance(SimDur::from_us(3.0));
///     d.store(ctx.now().as_ps(), Ordering::SeqCst);
/// });
/// kernel.run_until_quiescent()?;
/// assert_eq!(done_at.load(Ordering::SeqCst), 3_000_000);
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
pub struct Kernel {
    shared: Arc<Shared>,
    tracer: Mutex<Option<Tracer>>,
}

/// What a trace hook observes: every scheduled item the kernel executes.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A one-shot event closure ran at the given time.
    Event {
        /// Execution time.
        at: SimTime,
    },
    /// A process was resumed at the given time.
    Resume {
        /// Execution time.
        at: SimTime,
        /// The process's spawn name.
        process: String,
    },
}

/// A trace hook installed with [`Kernel::set_tracer`].
pub type Tracer = Box<dyn Fn(&TraceEvent) + Send>;

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create an empty kernel at time zero.
    pub fn new() -> Kernel {
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    now: SimTime::ZERO,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    procs: Vec::new(),
                    shutting_down: false,
                }),
            }),
            tracer: Mutex::new(None),
        }
    }

    /// Install a trace hook observing every executed item (diagnostics;
    /// adds a callback per event). Replaces any previous tracer.
    pub fn set_tracer(&self, tracer: impl Fn(&TraceEvent) + Send + 'static) {
        *self.tracer.lock() = Some(Box::new(tracer));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// A cloneable, kernel-side handle for scheduling events and waking
    /// processes from outside process context.
    pub fn handle(&self) -> crate::SimHandle {
        crate::SimHandle::new(Arc::clone(&self.shared))
    }

    /// Spawn a named process. Its body starts executing at the current
    /// virtual time, when the kernel next runs.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&crate::Ctx) + Send + 'static,
    ) -> ProcessId {
        self.shared.spawn(name, f)
    }

    /// Schedule a one-shot event `d` after the current virtual time.
    pub fn schedule_in(&self, d: SimDur, f: impl FnOnce() + Send + 'static) {
        self.shared.schedule_in(d, Box::new(f));
    }

    /// Run until the event queue is empty. Parked processes (servers,
    /// daemons) may remain; they are cleanly shut down when the kernel is
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanicked`] if any process panicked; the
    /// rest of the simulation is shut down first.
    pub fn run_until_quiescent(&self) -> Result<SimTime, SimError> {
        self.run_inner(SimTime::MAX)
    }

    /// Run until the queue is empty **or** virtual time would pass
    /// `deadline`; on return the clock reads `min(deadline, quiescent
    /// time)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanicked`] if any process panicked.
    pub fn run_until(&self, deadline: SimTime) -> Result<SimTime, SimError> {
        self.run_inner(deadline)
    }

    fn run_inner(&self, deadline: SimTime) -> Result<SimTime, SimError> {
        loop {
            let (action, pid_sync);
            {
                let mut st = self.shared.state.lock();
                let next_at = match st.queue.peek() {
                    None => break,
                    Some(Reverse(e)) => e.at,
                };
                if next_at > deadline {
                    st.now = deadline.max(st.now);
                    break;
                }
                let Reverse(entry) = st.queue.pop().expect("peeked entry vanished");
                st.now = entry.at;
                match entry.action {
                    Action::Closure(f) => {
                        pid_sync = None;
                        action = Some(f);
                    }
                    Action::Resume(pid) => {
                        let slot = &st.procs[pid.0];
                        if slot.status == ProcStatus::Terminated {
                            continue;
                        }
                        debug_assert_eq!(slot.status, ProcStatus::Scheduled);
                        pid_sync = Some((pid, Arc::clone(&slot.sync)));
                        action = None;
                    }
                }
            }
            if let Some(f) = action {
                if let Some(t) = self.tracer.lock().as_ref() {
                    t(&TraceEvent::Event {
                        at: self.shared.now(),
                    });
                }
                f();
            } else if let Some((pid, sync)) = pid_sync {
                if let Some(t) = self.tracer.lock().as_ref() {
                    let name = self.shared.state.lock().procs[pid.0].name.clone();
                    t(&TraceEvent::Resume {
                        at: self.shared.now(),
                        process: name,
                    });
                }
                match sync.resume_and_wait(ToProc::Run) {
                    ToKernel::Yielded => {}
                    ToKernel::Terminated => self.finish_proc(pid),
                    ToKernel::Panicked(message) => {
                        let process = {
                            let st = self.shared.state.lock();
                            st.procs[pid.0].name.clone()
                        };
                        self.finish_proc(pid);
                        self.shutdown();
                        return Err(SimError::ProcessPanicked { process, message });
                    }
                }
            }
        }
        let now = self.shared.state.lock().now;
        Ok(now)
    }

    fn finish_proc(&self, pid: ProcessId) {
        let join = {
            let mut st = self.shared.state.lock();
            let slot = &mut st.procs[pid.0];
            slot.status = ProcStatus::Terminated;
            slot.join.take()
        };
        if let Some(j) = join {
            let _ = j.join();
        }
    }

    /// Names of processes currently parked (useful for deadlock checks in
    /// tests).
    pub fn parked_processes(&self) -> Vec<String> {
        let st = self.shared.state.lock();
        st.procs
            .iter()
            .filter(|p| p.status == ProcStatus::Parked)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Cleanly unwind every live process. Called automatically on drop.
    fn shutdown(&self) {
        let live: Vec<(ProcessId, Arc<ProcSync>)> = {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
            st.queue.clear();
            st.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status != ProcStatus::Terminated)
                .map(|(i, p)| (ProcessId(i), Arc::clone(&p.sync)))
                .collect()
        };
        for (pid, sync) in live {
            loop {
                match sync.resume_and_wait(ToProc::Shutdown) {
                    ToKernel::Terminated | ToKernel::Panicked(_) => break,
                    // A process may need one more turn if it was mid-yield.
                    ToKernel::Yielded => continue,
                }
            }
            self.finish_proc(pid);
        }
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn events_run_in_time_order_with_fifo_tiebreak() {
        let k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [(0usize, 5.0), (1, 1.0), (2, 5.0), (3, 3.0)] {
            let log = Arc::clone(&log);
            k.schedule_in(SimDur::from_us(d), move || log.lock().push(i));
        }
        k.run_until_quiescent().unwrap();
        assert_eq!(*log.lock(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn process_advance_moves_virtual_time() {
        let k = Kernel::new();
        let t = Arc::new(Mutex::new(SimTime::ZERO));
        let t2 = Arc::clone(&t);
        k.spawn("p", move |ctx| {
            ctx.advance(SimDur::from_us(2.0));
            ctx.advance(SimDur::from_us(3.0));
            *t2.lock() = ctx.now();
        });
        let end = k.run_until_quiescent().unwrap();
        assert_eq!(t.lock().as_us(), 5.0);
        assert_eq!(end.as_us(), 5.0);
    }

    #[test]
    fn park_unpark_round_trip() {
        let k = Kernel::new();
        let woke_at = Arc::new(Mutex::new(SimTime::ZERO));
        let w = Arc::clone(&woke_at);
        let pid = k.spawn("sleeper", move |ctx| {
            ctx.park();
            *w.lock() = ctx.now();
        });
        let h = k.handle();
        k.schedule_in(SimDur::from_us(7.0), move || h.unpark(pid));
        k.run_until_quiescent().unwrap();
        assert_eq!(woke_at.lock().as_us(), 7.0);
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        let k = Kernel::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let pid = k.spawn("p", move |ctx| {
            // Give the waker a chance to run first.
            ctx.advance(SimDur::from_us(10.0));
            ctx.park(); // wake already pending: returns immediately
            r.store(1, Ordering::SeqCst);
        });
        let h = k.handle();
        k.schedule_in(SimDur::from_us(1.0), move || h.unpark(pid));
        k.run_until_quiescent().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn process_panic_is_reported() {
        let k = Kernel::new();
        k.spawn("bad", |_ctx| panic!("boom"));
        let err = k.run_until_quiescent().unwrap_err();
        match err {
            SimError::ProcessPanicked { process, message } => {
                assert_eq!(process, "bad");
                assert_eq!(message, "boom");
            }
        }
    }

    #[test]
    fn parked_processes_survive_quiescence_and_shutdown() {
        let k = Kernel::new();
        k.spawn("daemon", |ctx| {
            ctx.park(); // never woken
            unreachable!("daemon should be unwound at shutdown, not resumed");
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(k.parked_processes(), vec!["daemon".to_string()]);
        // Drop (end of scope) must not hang or panic.
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let k = Kernel::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 1..=10 {
            let h = Arc::clone(&hits);
            k.schedule_in(SimDur::from_us(i as f64), move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t = k.run_until(SimTime::ZERO + SimDur::from_us(4.5)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(t.as_us(), 4.5);
        k.run_until_quiescent().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_from_process() {
        let k = Kernel::new();
        let sum = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&sum);
        k.spawn("parent", move |ctx| {
            let s2 = Arc::clone(&s);
            ctx.spawn("child", move |cctx| {
                cctx.advance(SimDur::from_us(1.0));
                s2.fetch_add(10, Ordering::SeqCst);
            });
            ctx.advance(SimDur::from_us(2.0));
            s.fetch_add(1, Ordering::SeqCst);
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, usize)> {
            let k = Kernel::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..4 {
                let log = Arc::clone(&log);
                k.spawn(format!("p{i}"), move |ctx| {
                    for step in 0..3 {
                        ctx.advance(SimDur::from_us((i + 1) as f64));
                        log.lock().push((ctx.now().as_ps(), i * 10 + step));
                    }
                });
            }
            k.run_until_quiescent().unwrap();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
