//! A small deterministic PRNG for workload generation.
//!
//! The simulation itself is deterministic by construction; randomness is
//! only used by workload generators (message contents, request sizes).
//! `SplitMix64` is tiny, fast, has a public reference implementation, and
//! keeps the simulator free of versioning hazards from external RNG
//! crates (benchmarks embed seeds in their output).

/// A 64-bit SplitMix generator (Steele, Lea & Flood 2014).
///
/// # Examples
///
/// ```
/// use shrimp_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fill a byte slice with pseudorandom data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 0 from the published SplitMix64 reference.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_tail() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let mut x = [0u8; 13];
        let mut y = [0u8; 13];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 13]); // astronomically unlikely to be all zero
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
