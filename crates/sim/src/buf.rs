//! `SimBuf` — the zero-copy payload buffer of the simulated datapath.
//!
//! Simulated hardware moves the *same* bytes through many stations: a
//! snooped write run is split into packets, each packet crosses the
//! mesh, lands in the incoming queue, and is DMAed into destination
//! memory. Modelling each station with an owned `Vec<u8>` costs one
//! allocation + copy per packet per station; for a 64-node collective
//! sweep that dominates the simulator's wall-clock time without
//! changing a single virtual timestamp.
//!
//! [`SimBuf`] is a reference-counted byte slice: a shared backing
//! allocation plus an `(offset, len)` window. Cloning and slicing are
//! O(1) and allocation-free, so packetization becomes "take a window"
//! and fan-out becomes "bump a refcount".
//!
//! ## Ownership rules (documented for the datapath)
//!
//! * A `SimBuf` is **immutable** through shared views: mutation is only
//!   possible via [`SimBuf::append`] on a buffer that uniquely owns its
//!   backing storage and ends exactly at the backing vector's tail —
//!   otherwise `append` copies out into a fresh allocation first.
//!   Holding a clone of a buffer therefore guarantees its bytes never
//!   change underneath you.
//! * Producers (snoop logic, DMA reads) build a `Vec<u8>` once and wrap
//!   it (`SimBuf::from`); every downstream station clones or slices.
//! * Consumers that need owned bytes at the end of the path (a memory
//!   write) read through `Deref<Target = [u8]>` — no copy-out needed.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
///
/// Equality and hashing are content-based (two buffers with the same
/// bytes compare equal regardless of sharing), so swapping a `Vec<u8>`
/// field for a `SimBuf` preserves observable behaviour.
#[derive(Clone, Default)]
pub struct SimBuf {
    backing: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl SimBuf {
    /// The empty buffer (no allocation is shared but the `Arc` itself
    /// still allocates once; use sparingly on hot paths).
    pub fn new() -> SimBuf {
        SimBuf::default()
    }

    /// Wrap an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> SimBuf {
        let len = v.len();
        SimBuf {
            backing: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-window of this buffer; shares the backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.len()`.
    pub fn slice(&self, r: Range<usize>) -> SimBuf {
        assert!(r.start <= r.end && r.end <= self.len, "slice out of range");
        SimBuf {
            backing: Arc::clone(&self.backing),
            off: self.off + r.start,
            len: r.end - r.start,
        }
    }

    /// Append bytes, extending the backing storage in place when this
    /// buffer is the sole owner and its window ends at the backing
    /// vector's tail (the packetizer's combining case: the open packet
    /// was built here and nobody else has seen it). Otherwise the
    /// visible bytes are copied out into a fresh allocation first.
    pub fn append(&mut self, bytes: &[u8]) {
        match Arc::get_mut(&mut self.backing) {
            Some(v) if self.off + self.len == v.len() => {
                v.extend_from_slice(bytes);
            }
            _ => {
                let mut v = Vec::with_capacity(self.len + bytes.len());
                v.extend_from_slice(&self.backing[self.off..self.off + self.len]);
                v.extend_from_slice(bytes);
                self.backing = Arc::new(v);
                self.off = 0;
            }
        }
        self.len += bytes.len();
    }

    /// Copy the visible bytes into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for SimBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.backing[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for SimBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for SimBuf {
    fn from(v: Vec<u8>) -> SimBuf {
        SimBuf::from_vec(v)
    }
}

impl From<&[u8]> for SimBuf {
    fn from(s: &[u8]) -> SimBuf {
        SimBuf::from_vec(s.to_vec())
    }
}

impl PartialEq for SimBuf {
    fn eq(&self, other: &SimBuf) -> bool {
        self[..] == other[..]
    }
}

impl Eq for SimBuf {}

impl std::fmt::Debug for SimBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimBuf({} bytes @{})", self.len, self.off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing_without_copying() {
        let b = SimBuf::from_vec((0u8..100).collect());
        let s = b.slice(10..20);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<_>>()[..]);
        assert!(Arc::ptr_eq(&b.backing, &s.backing));
        let s2 = s.slice(5..10);
        assert_eq!(&s2[..], &(15u8..20).collect::<Vec<_>>()[..]);
        assert!(Arc::ptr_eq(&b.backing, &s2.backing));
    }

    #[test]
    fn append_extends_in_place_when_unique_at_tail() {
        let mut b = SimBuf::from_vec(vec![1, 2, 3]);
        let backing_before = Arc::as_ptr(&b.backing);
        b.append(&[4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(Arc::as_ptr(&b.backing), backing_before);
    }

    #[test]
    fn append_copies_when_shared() {
        let mut b = SimBuf::from_vec(vec![1, 2, 3]);
        let held = b.clone();
        b.append(&[4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        // The held clone must be unaffected: immutability through shares.
        assert_eq!(&held[..], &[1, 2, 3]);
    }

    #[test]
    fn append_copies_when_window_not_at_tail() {
        let base = SimBuf::from_vec(vec![1, 2, 3, 4]);
        let mut head = base.slice(0..2);
        drop(base); // head is now unique, but its window ends mid-vector
        head.append(&[9]);
        assert_eq!(&head[..], &[1, 2, 9]);
    }

    #[test]
    fn equality_is_content_based() {
        let a = SimBuf::from_vec(vec![7, 8, 9]);
        let b = SimBuf::from_vec(vec![0, 7, 8, 9, 0]).slice(1..4);
        assert_eq!(a, b);
        assert_ne!(a, SimBuf::from_vec(vec![7, 8]));
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        SimBuf::from_vec(vec![0; 4]).slice(2..6);
    }
}
