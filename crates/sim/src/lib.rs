//! # shrimp-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the SHRIMP multicomputer
//! reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDur`] — integer-picosecond virtual time;
//! * [`Kernel`] — a deterministic event loop;
//! * [`Ctx`] — *blocking processes*: protocol code runs on dedicated OS
//!   threads but the kernel interleaves them one-at-a-time in virtual-time
//!   order, so message-passing libraries are written in the same natural
//!   blocking style the original SHRIMP libraries were;
//! * [`SimBuf`] — the zero-copy payload buffer shared by every
//!   datapath station (packetizer, mesh, incoming DMA);
//! * [`BandwidthResource`] — FIFO-arbitrated buses and links;
//! * [`WaitQueue`], [`Gate`], [`SimChannel`] — blocking synchronization;
//! * [`SplitMix64`] — a deterministic PRNG for workload generators;
//! * [`faults`] — deterministic fault injection ([`FaultPlan`],
//!   [`StallWindows`], [`RetryPolicy`]) shared by every layer's chaos
//!   hooks.
//!
//! ## Determinism
//!
//! Same program + same seeds = identical event order and timestamps on
//! every run. All scheduling ties break FIFO by sequence number, and only
//! one thread executes at a time, so there are no racy interleavings.
//! Benchmarks in this repository therefore need no repetition for
//! statistical confidence — a single simulated run is exact.
//!
//! ## Example
//!
//! ```
//! use shrimp_sim::{Kernel, SimDur, SimChannel};
//!
//! let kernel = Kernel::new();
//! let ch: SimChannel<&'static str> = SimChannel::new();
//!
//! let rx = ch.clone();
//! kernel.spawn("server", move |ctx| {
//!     let msg = rx.recv(ctx);
//!     assert_eq!(msg, "ping");
//!     assert_eq!(ctx.now().as_us(), 3.0);
//! });
//!
//! let tx = ch.clone();
//! kernel.spawn("client", move |ctx| {
//!     ctx.advance(SimDur::from_us(3.0)); // think time
//!     tx.send(&ctx.handle(), "ping");
//! });
//!
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod buf;
pub mod faults;
mod kernel;
pub mod metrics;
mod process;
mod resource;
mod rng;
mod sync;
mod time;

pub use buf::SimBuf;
pub use faults::{
    FaultEvent, FaultKind, FaultLog, FaultPlan, FaultSpec, RetryPolicy, StallWindows,
};
pub use kernel::{Kernel, ProcessId, SimError, TraceEvent, Tracer};
pub use metrics::{MetricsGuard, MetricsRegistry, MetricsSnapshot};
pub use process::{Ctx, SimHandle};
pub use resource::{BandwidthResource, Grant};
pub use rng::SplitMix64;
pub use sync::{Gate, SimChannel, WaitQueue};
pub use time::{SimDur, SimTime};
