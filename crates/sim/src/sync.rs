//! Blocking synchronization primitives for simulation processes.
//!
//! These are the simulation-world analogues of condition variables and
//! channels. Because the kernel guarantees only one logical thread runs at
//! a time, their internals are simple FIFO queues — there are no lost
//! wake-up races beyond the park/unpark latch already handled by the
//! kernel.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::ProcessId;
use crate::process::{Ctx, SimHandle};
use crate::time::SimTime;

/// A FIFO wait queue: processes [`wait`](WaitQueue::wait) on it and are
/// released in order by [`notify_one`](WaitQueue::notify_one) /
/// [`notify_all`](WaitQueue::notify_all).
///
/// This is a building block; most protocol code uses the higher-level
/// pattern of polling a shared flag (the paper's libraries poll) or
/// [`Gate`].
///
/// # Examples
///
/// ```
/// use shrimp_sim::{Kernel, SimDur, WaitQueue};
/// use std::sync::Arc;
///
/// let k = Kernel::new();
/// let q = Arc::new(WaitQueue::new());
/// let q2 = Arc::clone(&q);
/// let h = k.handle();
/// k.spawn("waiter", move |ctx| {
///     q2.wait(ctx);
///     assert_eq!(ctx.now().as_us(), 4.0);
/// });
/// let q3 = Arc::clone(&q);
/// k.schedule_in(SimDur::from_us(4.0), move || { q3.notify_one(&h); });
/// k.run_until_quiescent()?;
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct WaitQueue {
    waiters: Mutex<VecDeque<ProcessId>>,
}

impl WaitQueue {
    /// Create an empty queue.
    pub fn new() -> WaitQueue {
        WaitQueue::default()
    }

    /// Block the calling process until released by a notify call.
    pub fn wait(&self, ctx: &Ctx) {
        let pid = ctx.pid();
        self.waiters.lock().push_back(pid);
        loop {
            ctx.park();
            // A stale latched wake-up (from an unrelated unpark) could
            // release the park early; re-check membership.
            if !self.waiters.lock().contains(&pid) {
                return;
            }
        }
    }

    /// Like [`wait`](WaitQueue::wait), but give up at `deadline`.
    /// Returns `true` if notified, `false` on timeout (the process is
    /// removed from the queue, so a later notify goes to someone else).
    pub fn wait_deadline(&self, ctx: &Ctx, deadline: SimTime) -> bool {
        let pid = ctx.pid();
        if ctx.now() >= deadline {
            return false;
        }
        self.waiters.lock().push_back(pid);
        let h = ctx.handle();
        ctx.schedule_at(deadline, move || h.unpark(pid));
        loop {
            ctx.park();
            if !self.waiters.lock().contains(&pid) {
                return true; // a notify popped us
            }
            if ctx.now() >= deadline {
                self.waiters.lock().retain(|p| *p != pid);
                return false;
            }
        }
    }

    /// Release the longest-waiting process, if any. Returns whether a
    /// process was released.
    pub fn notify_one(&self, h: &SimHandle) -> bool {
        let popped = self.waiters.lock().pop_front();
        match popped {
            Some(pid) => {
                h.unpark(pid);
                true
            }
            None => false,
        }
    }

    /// Release every waiting process. Returns how many were released.
    pub fn notify_all(&self, h: &SimHandle) -> usize {
        let drained: Vec<ProcessId> = self.waiters.lock().drain(..).collect();
        for pid in &drained {
            h.unpark(*pid);
        }
        drained.len()
    }

    /// Number of processes currently waiting.
    pub fn len(&self) -> usize {
        self.waiters.lock().len()
    }

    /// True if no process is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.lock().is_empty()
    }
}

/// A latched boolean gate: starts closed, opens once, and releases every
/// current and future waiter. Used for "connection established" and
/// "server ready" rendezvous points.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{Kernel, SimDur, Gate};
/// use std::sync::Arc;
///
/// let k = Kernel::new();
/// let gate = Arc::new(Gate::new());
/// let g = Arc::clone(&gate);
/// k.spawn("client", move |ctx| {
///     g.wait(ctx); // blocks until the server opens the gate
/// });
/// let g2 = Arc::clone(&gate);
/// let h = k.handle();
/// k.schedule_in(SimDur::from_us(1.0), move || g2.open(&h));
/// k.run_until_quiescent()?;
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct Gate {
    inner: Mutex<GateInner>,
}

#[derive(Debug, Default)]
struct GateInner {
    open: bool,
    waiters: Vec<ProcessId>,
}

impl Gate {
    /// Create a closed gate.
    pub fn new() -> Gate {
        Gate::default()
    }

    /// True once [`open`](Gate::open) has been called.
    pub fn is_open(&self) -> bool {
        self.inner.lock().open
    }

    /// Open the gate, releasing all waiters; idempotent.
    pub fn open(&self, h: &SimHandle) {
        let waiters: Vec<ProcessId> = {
            let mut g = self.inner.lock();
            g.open = true;
            g.waiters.drain(..).collect()
        };
        for pid in waiters {
            h.unpark(pid);
        }
    }

    /// Block until the gate is open (returns immediately if already open).
    pub fn wait(&self, ctx: &Ctx) {
        {
            let mut g = self.inner.lock();
            if g.open {
                return;
            }
            g.waiters.push(ctx.pid());
        }
        loop {
            ctx.park();
            if self.inner.lock().open {
                return;
            }
        }
    }

    /// Like [`wait`](Gate::wait), but give up at `deadline`. Returns
    /// whether the gate opened.
    pub fn wait_deadline(&self, ctx: &Ctx, deadline: SimTime) -> bool {
        let pid = ctx.pid();
        {
            let mut g = self.inner.lock();
            if g.open {
                return true;
            }
            if ctx.now() >= deadline {
                return false;
            }
            g.waiters.push(pid);
        }
        let h = ctx.handle();
        ctx.schedule_at(deadline, move || h.unpark(pid));
        loop {
            ctx.park();
            let mut g = self.inner.lock();
            if g.open {
                return true;
            }
            if ctx.now() >= deadline {
                g.waiters.retain(|p| *p != pid);
                return false;
            }
        }
    }
}

/// An unbounded, FIFO, inter-process channel carrying values of type `T`
/// through simulated time. Receiving blocks the calling process until a
/// value is available.
///
/// This models out-of-band control paths (e.g. the prototype's Ethernet);
/// the mesh datapath is modelled in `shrimp-mesh`, not with this type.
#[derive(Debug)]
pub struct SimChannel<T> {
    inner: Arc<ChannelInner<T>>,
}

#[derive(Debug)]
struct ChannelInner<T> {
    queue: Mutex<VecDeque<T>>,
    waiters: WaitQueue,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> SimChannel<T> {
    /// Create an empty channel.
    pub fn new() -> SimChannel<T> {
        SimChannel {
            inner: Arc::new(ChannelInner {
                queue: Mutex::new(VecDeque::new()),
                waiters: WaitQueue::new(),
            }),
        }
    }

    /// Enqueue a value and wake one waiting receiver. Usable from both
    /// processes and event closures.
    pub fn send(&self, h: &SimHandle, value: T) {
        self.inner.queue.lock().push_back(value);
        self.inner.waiters.notify_one(h);
    }

    /// Dequeue a value, blocking the calling process until one arrives.
    pub fn recv(&self, ctx: &Ctx) -> T {
        loop {
            if let Some(v) = self.inner.queue.lock().pop_front() {
                return v;
            }
            self.inner.waiters.wait(ctx);
        }
    }

    /// Like [`recv`](SimChannel::recv), but give up at `deadline` and
    /// return `None` if no value arrived by then. The timed-out receiver
    /// leaves the queue untouched for other receivers.
    pub fn recv_deadline(&self, ctx: &Ctx, deadline: SimTime) -> Option<T> {
        loop {
            if let Some(v) = self.inner.queue.lock().pop_front() {
                return Some(v);
            }
            if ctx.now() >= deadline || !self.inner.waiters.wait_deadline(ctx, deadline) {
                // One last poll: a send may land exactly at the deadline.
                return self.inner.queue.lock().pop_front();
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.lock().pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kernel, SimDur};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn wait_queue_releases_in_fifo_order() {
        let k = Kernel::new();
        let q = Arc::new(WaitQueue::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            k.spawn(format!("w{i}"), move |ctx| {
                // Stagger arrival so the queue order is w0, w1, w2.
                ctx.advance(SimDur::from_us(i as f64));
                q.wait(ctx);
                order.lock().push(i);
            });
        }
        let h = k.handle();
        let q2 = Arc::clone(&q);
        k.schedule_in(SimDur::from_us(10.0), move || {
            q2.notify_one(&h);
            q2.notify_one(&h);
            q2.notify_one(&h);
        });
        k.run_until_quiescent().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn notify_one_on_empty_queue_returns_false() {
        let k = Kernel::new();
        let q = WaitQueue::new();
        assert!(!q.notify_one(&k.handle()));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn gate_releases_current_and_future_waiters() {
        let k = Kernel::new();
        let gate = Arc::new(Gate::new());
        let count = Arc::new(AtomicUsize::new(0));
        // Early waiter.
        {
            let g = Arc::clone(&gate);
            let c = Arc::clone(&count);
            k.spawn("early", move |ctx| {
                g.wait(ctx);
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Late waiter arrives after the gate opens.
        {
            let g = Arc::clone(&gate);
            let c = Arc::clone(&count);
            k.spawn("late", move |ctx| {
                ctx.advance(SimDur::from_us(20.0));
                g.wait(ctx);
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let g = Arc::clone(&gate);
        let h = k.handle();
        k.schedule_in(SimDur::from_us(5.0), move || g.open(&h));
        k.run_until_quiescent().unwrap();
        assert!(gate.is_open());
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn channel_delivers_in_order_across_processes() {
        let k = Kernel::new();
        let ch: SimChannel<u32> = SimChannel::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let ch = ch.clone();
            let got = Arc::clone(&got);
            k.spawn("rx", move |ctx| {
                for _ in 0..3 {
                    got.lock().push(ch.recv(ctx));
                }
            });
        }
        {
            let ch = ch.clone();
            k.spawn("tx", move |ctx| {
                for v in [7u32, 8, 9] {
                    ctx.advance(SimDur::from_us(1.0));
                    ch.send(&ctx.handle(), v);
                }
            });
        }
        k.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), vec![7, 8, 9]);
        assert!(ch.is_empty());
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let k = Kernel::new();
        let ch: SimChannel<u32> = SimChannel::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let ch = ch.clone();
            let got = Arc::clone(&got);
            k.spawn("rx", move |ctx| {
                // Nothing arrives before 5 us: timeout.
                let miss = ch.recv_deadline(ctx, ctx.now() + SimDur::from_us(5.0));
                got.lock().push((miss, ctx.now().as_us()));
                // A value arrives at 10 us, well before the 50 us deadline.
                let hit = ch.recv_deadline(ctx, ctx.now() + SimDur::from_us(45.0));
                got.lock().push((hit, ctx.now().as_us()));
            });
        }
        let h = k.handle();
        let tx = ch.clone();
        k.schedule_in(SimDur::from_us(10.0), move || tx.send(&h, 9));
        k.run_until_quiescent().unwrap();
        let v = got.lock().clone();
        assert_eq!(v[0], (None, 5.0), "timed out exactly at the deadline");
        assert_eq!(v[1], (Some(9), 10.0), "woken as soon as the value arrived");
        assert!(ch.is_empty());
    }

    #[test]
    fn gate_wait_deadline_reports_timeout_and_open() {
        let k = Kernel::new();
        let gate = Arc::new(Gate::new());
        let results = Arc::new(Mutex::new(Vec::new()));
        {
            let g = Arc::clone(&gate);
            let r = Arc::clone(&results);
            k.spawn("w", move |ctx| {
                let early = g.wait_deadline(ctx, ctx.now() + SimDur::from_us(2.0));
                r.lock().push((early, ctx.now().as_us()));
                let late = g.wait_deadline(ctx, ctx.now() + SimDur::from_us(20.0));
                r.lock().push((late, ctx.now().as_us()));
            });
        }
        let g = Arc::clone(&gate);
        let h = k.handle();
        k.schedule_in(SimDur::from_us(8.0), move || g.open(&h));
        k.run_until_quiescent().unwrap();
        let v = results.lock().clone();
        assert_eq!(v[0], (false, 2.0));
        assert_eq!(v[1], (true, 8.0));
    }

    #[test]
    fn channel_try_recv_is_nonblocking() {
        let k = Kernel::new();
        let ch: SimChannel<u8> = SimChannel::new();
        assert_eq!(ch.try_recv(), None);
        ch.send(&k.handle(), 5);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch.try_recv(), Some(5));
    }
}
