//! Edge cases of the simulation kernel's scheduling semantics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_sim::{Gate, Kernel, SimChannel, SimDur, SimTime, WaitQueue};

#[test]
fn unpark_of_terminated_process_is_harmless() {
    let kernel = Kernel::new();
    let pid = kernel.spawn("short", |_ctx| {});
    kernel.run_until_quiescent().unwrap();
    let h = kernel.handle();
    h.unpark(pid); // must not panic or resurrect the process
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn schedule_at_in_the_past_clamps_to_now() {
    let kernel = Kernel::new();
    let ran_at = Arc::new(AtomicU64::new(u64::MAX));
    let h = kernel.handle();
    let r = Arc::clone(&ran_at);
    kernel.schedule_in(SimDur::from_us(10.0), move || {
        let r2 = Arc::clone(&r);
        // Deliberately in the past: must fire immediately, not never.
        h.schedule_at(SimTime::ZERO, move || {
            r2.store(0xAA, Ordering::SeqCst);
        });
    });
    let end = kernel.run_until_quiescent().unwrap();
    assert_eq!(ran_at.load(Ordering::SeqCst), 0xAA);
    assert_eq!(end.as_us(), 10.0);
}

#[test]
fn many_processes_interleave_deterministically() {
    let kernel = Kernel::new();
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..32 {
        let order = Arc::clone(&order);
        kernel.spawn(format!("p{i}"), move |ctx| {
            // All advance by the same amount: FIFO tie-break by spawn
            // order applies at every step.
            for _ in 0..3 {
                ctx.advance(SimDur::from_us(1.0));
            }
            order.lock().push(i);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert_eq!(*order.lock(), (0..32).collect::<Vec<_>>());
}

#[test]
fn notify_all_releases_everyone_at_once() {
    let kernel = Kernel::new();
    let q = Arc::new(WaitQueue::new());
    let released = Arc::new(AtomicUsize::new(0));
    for i in 0..5 {
        let q = Arc::clone(&q);
        let released = Arc::clone(&released);
        kernel.spawn(format!("w{i}"), move |ctx| {
            q.wait(ctx);
            released.fetch_add(1, Ordering::SeqCst);
        });
    }
    let q2 = Arc::clone(&q);
    let h = kernel.handle();
    kernel.schedule_in(SimDur::from_us(3.0), move || {
        assert_eq!(q2.notify_all(&h), 5);
    });
    kernel.run_until_quiescent().unwrap();
    assert_eq!(released.load(Ordering::SeqCst), 5);
    assert!(q.is_empty());
}

#[test]
fn gate_open_is_idempotent() {
    let kernel = Kernel::new();
    let gate = Arc::new(Gate::new());
    let h = kernel.handle();
    gate.open(&h);
    gate.open(&h);
    let g = Arc::clone(&gate);
    kernel.spawn("late", move |ctx| {
        g.wait(ctx); // already open: returns immediately
        assert_eq!(ctx.now(), SimTime::ZERO);
    });
    kernel.run_until_quiescent().unwrap();
}

#[test]
fn channel_interleaves_multiple_producers_in_virtual_time_order() {
    let kernel = Kernel::new();
    let ch: SimChannel<(usize, u64)> = SimChannel::new();
    for i in 0..3 {
        let ch = ch.clone();
        kernel.spawn(format!("producer{i}"), move |ctx| {
            for k in 0..4u64 {
                // Distinct, interleaved timestamps per producer.
                ctx.advance(SimDur::from_us((k * 3 + i as u64 + 1) as f64));
                ch.send(&ctx.handle(), (i, ctx.now().as_ps()));
            }
        });
    }
    let got: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let ch = ch.clone();
        let got = Arc::clone(&got);
        kernel.spawn("consumer", move |ctx| {
            for _ in 0..12 {
                got.lock().push(ch.recv(ctx));
            }
        });
    }
    kernel.run_until_quiescent().unwrap();
    let got = got.lock();
    assert_eq!(got.len(), 12);
    // Deliveries are globally ordered by send time.
    assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn run_until_can_be_resumed_repeatedly() {
    let kernel = Kernel::new();
    let count = Arc::new(AtomicUsize::new(0));
    for i in 1..=10 {
        let c = Arc::clone(&count);
        kernel.schedule_in(SimDur::from_us(i as f64), move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    for stop in [2.5, 5.5, 20.0] {
        kernel
            .run_until(SimTime::ZERO + SimDur::from_us(stop))
            .unwrap();
    }
    assert_eq!(count.load(Ordering::SeqCst), 10);
}

#[test]
fn tracer_observes_events_and_resumes() {
    use shrimp_sim::TraceEvent;
    let kernel = Kernel::new();
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let log = Arc::clone(&log);
        kernel.set_tracer(move |ev| {
            log.lock().push(match ev {
                TraceEvent::Event { at } => format!("event@{}", at.as_us()),
                TraceEvent::Resume { at, process } => format!("{process}@{}", at.as_us()),
            });
        });
    }
    kernel.spawn("worker", |ctx| ctx.advance(SimDur::from_us(2.0)));
    kernel.schedule_in(SimDur::from_us(1.0), || {});
    kernel.run_until_quiescent().unwrap();
    let log = log.lock();
    assert_eq!(
        *log,
        vec![
            "worker@0".to_string(),
            "event@1".to_string(),
            "worker@2".to_string()
        ]
    );
}
