//! The stream socket: connection establishment, send, receive, close.
//!
//! Internals follow paper §4.3: for each socket two structures group
//! data by who has write access — *incoming* (written by the remote
//! process: a circular buffer plus control words) and *outgoing* (the
//! mirror of the peer's incoming structure). Data moves by deliberate or
//! automatic update according to the [`SocketVariant`]; control
//! information always by automatic update. A zero-copy protocol is
//! impossible: it would require exporting a page of the receiver's user
//! memory to a sender the receiver does not necessarily trust.

use std::sync::Arc;

use shrimp_core::{BufferName, ExportOpts, ImportHandle, Vmmc, VmmcError};
use shrimp_node::{CacheMode, EthAddr, Ethernet, MemFault, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, RetryPolicy, SimDur};

use crate::wire::{ctrl, SetupFrame, SocketVariant, REGION_BYTES, RING_BYTES};

/// Socket-library errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketError {
    /// The peer shut down and all buffered data has been consumed;
    /// `send` on a closed socket also reports this.
    Closed,
    /// Malformed connection-setup exchange.
    BadHandshake,
    /// A bounded control-plane wait (connection handshake) elapsed.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// Total time the retry policy was prepared to wait.
        waited: SimDur,
    },
    /// Transport failure.
    Vmmc(VmmcError),
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Closed => write!(f, "socket closed by peer"),
            SocketError::BadHandshake => write!(f, "malformed connection handshake"),
            SocketError::Timeout { op, waited } => write!(f, "{op} timed out after {waited}"),
            SocketError::Vmmc(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for SocketError {}

impl From<VmmcError> for SocketError {
    fn from(e: VmmcError) -> Self {
        SocketError::Vmmc(e)
    }
}

impl From<MemFault> for SocketError {
    fn from(e: MemFault) -> Self {
        SocketError::Vmmc(VmmcError::Fault(e))
    }
}

/// Per-call software overhead of the socket library beyond the memory
/// and transfer operations: procedure calls, error checking, and socket
/// data-structure access. Calibrated so small-message latency sits
/// ~13 µs above the hardware limit, split roughly equally between sender
/// and receiver (paper §4.3).
fn sock_overhead() -> SimDur {
    SimDur::from_us(5.9)
}

/// A connected, bidirectional stream socket.
pub struct ShrimpSocket {
    vmmc: Arc<Vmmc>,
    variant: SocketVariant,
    /// My exported region: the peer deposits data and control here.
    local: VAddr,
    /// AU mirror of the peer's region (my outgoing direction; also
    /// carries my control-word writes).
    mirror: VAddr,
    /// Shadow of every byte I have deposited in the peer's ring, used by
    /// the deliberate-update paths to word-align transfers.
    shadow: VAddr,
    /// Receive-side scratch the incoming copy lands in.
    scratch: VAddr,
    peer: ImportHandle,
    sent: u64,
    consumed: u64,
    sent_fin: bool,
}

impl std::fmt::Debug for ShrimpSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShrimpSocket")
            .field("variant", &self.variant)
            .finish_non_exhaustive()
    }
}

/// A passive (listening) socket bound to an Ethernet port.
pub struct Listener {
    vmmc: Arc<Vmmc>,
    eth: Arc<Ethernet>,
    port: u16,
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Listener")
            .field("port", &self.port)
            .finish_non_exhaustive()
    }
}

/// Bind a listening socket on this endpoint's node at `port`.
pub fn listen(vmmc: Vmmc, eth: Arc<Ethernet>, port: u16) -> Listener {
    let addr = EthAddr {
        node: vmmc.node_id(),
        port,
    };
    eth.bind(addr);
    Listener {
        vmmc: Arc::new(vmmc),
        eth,
        port,
    }
}

impl Listener {
    /// Accept one connection: completes the Ethernet handshake, exports
    /// this side's region, imports the client's, and wires the automatic
    /// update bindings.
    ///
    /// # Errors
    ///
    /// [`SocketError::BadHandshake`] on a malformed frame; transport
    /// errors otherwise.
    pub fn accept(&self, ctx: &Ctx) -> Result<ShrimpSocket, SocketError> {
        let me = EthAddr {
            node: self.vmmc.node_id(),
            port: self.port,
        };
        loop {
            let frame = self.eth.recv(ctx, me);
            let Some(SetupFrame::Connect {
                node,
                region,
                variant,
                reply_port,
            }) = SetupFrame::decode(&frame.data)
            else {
                // Stray traffic on the port: ignore, keep listening.
                continue;
            };
            let (local, my_name) = export_region(&self.vmmc, ctx)?;
            let reply = SetupFrame::Accept {
                node: self.vmmc.node_id(),
                region: my_name.0,
            };
            self.eth.send(
                self.vmmc.node_id(),
                EthAddr {
                    node,
                    port: reply_port,
                },
                reply.encode(),
            );
            let peer = self.vmmc.import(ctx, node, BufferName(region))?;
            return ShrimpSocket::assemble(Arc::clone(&self.vmmc), ctx, variant, local, peer);
        }
    }
}

/// Connect to a listening socket at `(server, port)` with the given
/// data-transfer variant. Uses the bootstrap retry policy: the connect
/// frame is re-sent with exponential backoff until the server answers.
///
/// # Errors
///
/// [`SocketError::BadHandshake`] on a malformed accept frame;
/// [`SocketError::Timeout`] if the server never answers within the
/// policy's budget; transport errors otherwise.
pub fn connect(
    vmmc: Vmmc,
    ctx: &Ctx,
    eth: &Arc<Ethernet>,
    server: shrimp_mesh::NodeId,
    port: u16,
    variant: SocketVariant,
) -> Result<ShrimpSocket, SocketError> {
    connect_with(
        vmmc,
        ctx,
        eth,
        server,
        port,
        variant,
        RetryPolicy::bootstrap(),
    )
}

/// [`connect`] with an explicit retry policy for the handshake and the
/// mapping import (chaos tests shrink the policy to observe timeouts).
///
/// # Errors
///
/// As for [`connect`].
pub fn connect_with(
    vmmc: Vmmc,
    ctx: &Ctx,
    eth: &Arc<Ethernet>,
    server: shrimp_mesh::NodeId,
    port: u16,
    variant: SocketVariant,
    policy: RetryPolicy,
) -> Result<ShrimpSocket, SocketError> {
    let vmmc = Arc::new(vmmc);
    let (local, my_name) = export_region(&vmmc, ctx)?;
    // An ephemeral port for the accept reply, derived from the exported
    // buffer name (unique per node).
    let reply_port = 40_000u16.wrapping_add(my_name.0 as u16);
    let me = EthAddr {
        node: vmmc.node_id(),
        port: reply_port,
    };
    eth.bind(me);
    let frame = SetupFrame::Connect {
        node: vmmc.node_id(),
        region: my_name.0,
        variant,
        reply_port,
    };
    let mut reply = None;
    for attempt in 0..policy.attempts {
        eth.send(
            vmmc.node_id(),
            EthAddr { node: server, port },
            frame.encode(),
        );
        let deadline = ctx.now() + policy.timeout(attempt);
        if let Some(f) = eth.recv_deadline(ctx, me, deadline) {
            reply = Some(f);
            break;
        }
    }
    let Some(reply) = reply else {
        return Err(SocketError::Timeout {
            op: "connect",
            waited: policy.total_budget(),
        });
    };
    let Some(SetupFrame::Accept { node, region }) = SetupFrame::decode(&reply.data) else {
        return Err(SocketError::BadHandshake);
    };
    let peer = vmmc.import_retry(ctx, node, BufferName(region), policy)?;
    ShrimpSocket::assemble(vmmc, ctx, variant, local, peer)
}

fn export_region(vmmc: &Vmmc, ctx: &Ctx) -> Result<(VAddr, BufferName), SocketError> {
    let va = vmmc.proc_().alloc(REGION_BYTES, CacheMode::WriteBack);
    let name = vmmc.export(ctx, va, REGION_BYTES, ExportOpts::default())?;
    Ok((va, name))
}

impl ShrimpSocket {
    fn assemble(
        vmmc: Arc<Vmmc>,
        ctx: &Ctx,
        variant: SocketVariant,
        local: VAddr,
        peer: ImportHandle,
    ) -> Result<ShrimpSocket, SocketError> {
        let mirror = vmmc.proc_().alloc(REGION_BYTES, CacheMode::WriteBack);
        vmmc.bind_au(ctx, mirror, &peer, 0, REGION_BYTES / PAGE_SIZE, true, false)?;
        let shadow = vmmc.proc_().alloc(RING_BYTES, CacheMode::WriteBack);
        let scratch = vmmc.proc_().alloc(RING_BYTES, CacheMode::WriteBack);
        Ok(ShrimpSocket {
            vmmc,
            variant,
            local,
            mirror,
            shadow,
            scratch,
            peer,
            sent: 0,
            consumed: 0,
            sent_fin: false,
        })
    }

    /// The negotiated data-transfer variant.
    pub fn variant(&self) -> SocketVariant {
        self.variant
    }

    /// The VMMC endpoint.
    pub fn vmmc(&self) -> &Arc<Vmmc> {
        &self.vmmc
    }

    /// Read one control word from the local (peer-written) region.
    ///
    /// # Errors
    ///
    /// Propagates a fault on the local mapping (a protocol-path error:
    /// callers surface it as [`SocketError::Vmmc`] instead of
    /// panicking).
    fn ctrl_word(&self, off: usize) -> Result<u32, SocketError> {
        let b = self.vmmc.proc_().peek(self.local.add(off), 4)?;
        Ok(u32::from_le_bytes(
            b.try_into().expect("peek returned 4 bytes"),
        ))
    }

    /// Send the whole of `data`, blocking on flow control as needed.
    /// Returns the byte count (always `data.len()` on success, matching
    /// a `write` loop).
    ///
    /// # Errors
    ///
    /// [`SocketError::Closed`] after [`ShrimpSocket::close`].
    pub fn send(&mut self, ctx: &Ctx, data: &[u8]) -> Result<usize, SocketError> {
        let obs_t0 = ctx.now();
        ctx.advance(sock_overhead());
        if self.sent_fin {
            return Err(SocketError::Closed);
        }
        let p = self.vmmc.proc_().clone();
        let mut off = 0usize;
        while off < data.len() {
            // Flow control.
            let sent32 = self.sent as u32;
            let ack = self.ctrl_word(ctrl::ACK)?;
            let space = RING_BYTES - sent32.wrapping_sub(ack) as usize;
            if space == 0 {
                let needed = sent32.wrapping_add(1).wrapping_sub(RING_BYTES as u32);
                self.vmmc
                    .wait_u32(ctx, self.local.add(ctrl::ACK), 256, move |v| {
                        v.wrapping_sub(needed) as i32 >= 0
                    })?;
                continue;
            }
            let pos = (self.sent % RING_BYTES as u64) as usize;
            let n = (data.len() - off).min(space).min(RING_BYTES - pos);
            self.deposit(ctx, &p, pos, &data[off..off + n])?;
            self.sent += n as u64;
            off += n;
            // Control information (the written count) after the data.
            p.write_u32(ctx, self.mirror.add(ctrl::WRITTEN), self.sent as u32)?;
        }
        if let Some(rec) = self.vmmc.obs() {
            rec.push(shrimp_obs::SpanRec {
                msg: shrimp_obs::MsgId::NONE,
                node: self.vmmc.node_index(),
                layer: shrimp_obs::Layer::User,
                name: "sock_send",
                start: obs_t0,
                end: ctx.now(),
                bytes: data.len(),
            });
        }
        Ok(data.len())
    }

    /// Put `chunk` into the peer's ring at `pos` using the configured
    /// variant.
    fn deposit(
        &mut self,
        ctx: &Ctx,
        p: &shrimp_node::UserProc,
        pos: usize,
        chunk: &[u8],
    ) -> Result<(), SocketError> {
        let ring_off = PAGE_SIZE + pos;
        match self.variant {
            SocketVariant::Au2Copy => {
                // The sender-side copy into the AU region is the send.
                p.poke(self.scratch, chunk)?; // stage the user bytes
                p.copy(ctx, self.scratch, self.mirror.add(ring_off), chunk.len())?;
            }
            SocketVariant::Du2Copy | SocketVariant::Du1Copy => {
                let start = pos & !3;
                let end = (pos + chunk.len()).div_ceil(4) * 4;
                if self.variant == SocketVariant::Du2Copy {
                    // Two-copy: a charged copy of the user bytes into
                    // the staging shadow (which also resolves any
                    // alignment raggedness), then one deliberate update
                    // of the enclosing word range.
                    p.poke(self.scratch, chunk)?; // the user's bytes
                    p.copy(ctx, self.scratch, self.shadow.add(pos), chunk.len())?;
                } else {
                    // One-copy: data goes straight from user memory (the
                    // shadow stands in for the user buffer — identical
                    // bytes, no copy charged). Word-ragged edges reuse
                    // previously-deposited shadow bytes, the library's
                    // alignment fallback of §4.3.
                    p.poke(self.shadow.add(pos), chunk)?;
                }
                self.vmmc.send(
                    ctx,
                    self.shadow.add(start),
                    &self.peer,
                    PAGE_SIZE + start,
                    end - start,
                )?;
            }
        }
        Ok(())
    }

    /// Receive up to `maxlen` bytes, blocking until at least one byte is
    /// available. Returns an empty vector at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates transport faults.
    pub fn recv(&mut self, ctx: &Ctx, maxlen: usize) -> Result<Vec<u8>, SocketError> {
        if maxlen == 0 {
            return Ok(Vec::new());
        }
        let obs_t0 = ctx.now();
        let p = self.vmmc.proc_().clone();
        // Wait for data or FIN.
        let consumed32 = self.consumed as u32;
        loop {
            let written = self.ctrl_word(ctrl::WRITTEN)?;
            if written.wrapping_sub(consumed32) > 0 {
                break;
            }
            if self.ctrl_word(ctrl::FIN)? != 0 {
                return Ok(Vec::new()); // clean EOF
            }
            let c2 = consumed32;
            let me = &*self;
            self.vmmc.wait_activity(ctx, || {
                // On a fault, skip the sleep; the loop's next ctrl_word
                // surfaces the error.
                me.ctrl_word(ctrl::WRITTEN)
                    .map(|w| w.wrapping_sub(c2) > 0)
                    .unwrap_or(true)
                    || me.ctrl_word(ctrl::FIN).map(|v| v != 0).unwrap_or(true)
            });
        }
        // Receive-side processing: error checks and socket data-structure
        // access, charged once data is present (it is on the critical
        // path of every message).
        ctx.advance(sock_overhead());
        let written = self.ctrl_word(ctrl::WRITTEN)?;
        let avail = written.wrapping_sub(consumed32) as usize;
        let pos = (self.consumed % RING_BYTES as u64) as usize;
        let n = avail.min(maxlen).min(RING_BYTES - pos);
        // The receiver-side copy out of the circular buffer.
        p.copy(ctx, self.local.add(PAGE_SIZE + pos), self.scratch, n)?;
        let out = p.peek(self.scratch, n)?;
        self.consumed += n as u64;
        // Return buffer space to the sender (control via AU).
        p.write_u32(ctx, self.mirror.add(ctrl::ACK), self.consumed as u32)?;
        if let Some(rec) = self.vmmc.obs() {
            rec.push(shrimp_obs::SpanRec {
                msg: shrimp_obs::MsgId::NONE,
                node: self.vmmc.node_index(),
                layer: shrimp_obs::Layer::User,
                name: "sock_recv",
                start: obs_t0,
                end: ctx.now(),
                bytes: n,
            });
        }
        Ok(out)
    }

    /// Receive exactly `len` bytes (helper for record-oriented callers).
    ///
    /// # Errors
    ///
    /// [`SocketError::Closed`] if the stream ends first.
    pub fn recv_exact(&mut self, ctx: &Ctx, len: usize) -> Result<Vec<u8>, SocketError> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let got = self.recv(ctx, len - out.len())?;
            if got.is_empty() {
                return Err(SocketError::Closed);
            }
            out.extend(got);
        }
        Ok(out)
    }

    /// Shut down the sending side: the peer's `recv` returns end of
    /// stream once it has drained the ring. Receiving is still possible.
    ///
    /// # Errors
    ///
    /// Propagates transport faults.
    pub fn close(&mut self, ctx: &Ctx) -> Result<(), SocketError> {
        if !self.sent_fin {
            self.vmmc
                .proc_()
                .write_u32(ctx, self.mirror.add(ctrl::FIN), 1)?;
            self.sent_fin = true;
        }
        Ok(())
    }
}
