//! # shrimp-sockets — stream sockets on VMMC
//!
//! A user-level library compatible with Unix stream sockets (paper
//! §4.3). Connections are established over the commodity Ethernet — a
//! regular internet-domain exchange carries the data needed to set up
//! the two VMMC mappings — and all data then flows through circular
//! buffers in the mapped regions:
//!
//! * [`SocketVariant::Du2Copy`] — sender staging copy (handles all
//!   alignment) + one deliberate update, receiver copy;
//! * [`SocketVariant::Du1Copy`] — deliberate update straight from user
//!   memory where word alignment allows, receiver copy;
//! * [`SocketVariant::Au2Copy`] — the sender-side copy into the
//!   automatic-update-bound ring *is* the send, receiver copy.
//!
//! No zero-copy variant exists: it would require exporting the
//! receiver's user memory to an untrusted sender (§4.3).
//!
//! Use [`listen`] + [`Listener::accept`] on the server,
//! [`connect`] on the client, then [`ShrimpSocket::send`] /
//! [`ShrimpSocket::recv`] — byte-stream semantics, no message
//! boundaries, no per-message headers.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod socket;
mod wire;

pub use socket::{connect, listen, Listener, ShrimpSocket, SocketError};
pub use wire::{SetupFrame, SocketVariant, REGION_BYTES, RING_BYTES};
