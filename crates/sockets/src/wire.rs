//! Socket region layout and the Ethernet connection-setup frames.

use shrimp_mesh::NodeId;
use shrimp_node::PAGE_SIZE;

/// Ring capacity per direction. Stream sockets do not guarantee
/// extensive buffering (paper §6), so the ring is moderate.
pub const RING_BYTES: usize = 32 * 1024;

/// Region bytes per direction: a control page plus the ring.
pub const REGION_BYTES: usize = PAGE_SIZE + RING_BYTES;

/// Control word offsets within a region. Every word of a region is
/// written by the *remote* peer (through automatic update) and read
/// locally.
pub mod ctrl {
    /// Running count of bytes the peer has deposited in this region's
    /// ring.
    pub const WRITTEN: usize = 0;
    /// Running count of bytes the peer has consumed from *its* region
    /// (the flow-control ack for our outgoing direction).
    pub const ACK: usize = 4;
    /// Nonzero once the peer has shut down its sending side.
    pub const FIN: usize = 8;
}

/// How socket data is moved (the variants of paper Figure 7; control
/// information always travels by automatic update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SocketVariant {
    /// Sender copies into the AU-bound ring (the copy is the send);
    /// receiver copies out: two copies.
    #[default]
    Au2Copy,
    /// Deliberate update directly from user memory when alignment
    /// phases allow, receiver copies out: one copy (falls back to the
    /// two-copy path when dictated by alignment).
    Du1Copy,
    /// Sender copies to a staging ring (handling all alignment), one
    /// deliberate update, receiver copies out: two copies.
    Du2Copy,
}

impl SocketVariant {
    /// Wire encoding for the connect frame.
    pub fn to_u8(self) -> u8 {
        match self {
            SocketVariant::Au2Copy => 0,
            SocketVariant::Du1Copy => 1,
            SocketVariant::Du2Copy => 2,
        }
    }

    /// Decode from the connect frame.
    pub fn from_u8(v: u8) -> Option<SocketVariant> {
        match v {
            0 => Some(SocketVariant::Au2Copy),
            1 => Some(SocketVariant::Du1Copy),
            2 => Some(SocketVariant::Du2Copy),
            _ => None,
        }
    }
}

/// The connection-establishment messages exchanged over the Ethernet
/// (paper §4.3: "a regular internet-domain socket ... to exchange the
/// data required to establish two VMMC mappings").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupFrame {
    /// Client → listener.
    Connect {
        /// Client's node.
        node: NodeId,
        /// Client's exported region (the server→client direction).
        region: u64,
        /// Requested data-transfer variant.
        variant: SocketVariant,
        /// Ethernet port on the client for the reply.
        reply_port: u16,
    },
    /// Listener → client.
    Accept {
        /// Server's node.
        node: NodeId,
        /// Server's exported region (the client→server direction).
        region: u64,
    },
}

impl SetupFrame {
    /// Serialize for the Ethernet.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SetupFrame::Connect {
                node,
                region,
                variant,
                reply_port,
            } => {
                let mut b = vec![1u8];
                b.extend((node.0 as u64).to_le_bytes());
                b.extend(region.to_le_bytes());
                b.push(variant.to_u8());
                b.extend(reply_port.to_le_bytes());
                b
            }
            SetupFrame::Accept { node, region } => {
                let mut b = vec![2u8];
                b.extend((node.0 as u64).to_le_bytes());
                b.extend(region.to_le_bytes());
                b
            }
        }
    }

    /// Deserialize; `None` for malformed frames.
    pub fn decode(b: &[u8]) -> Option<SetupFrame> {
        let node = |b: &[u8]| -> Option<NodeId> {
            Some(NodeId(
                u64::from_le_bytes(b.get(1..9)?.try_into().ok()?) as usize
            ))
        };
        let region =
            |b: &[u8]| -> Option<u64> { Some(u64::from_le_bytes(b.get(9..17)?.try_into().ok()?)) };
        match b.first()? {
            1 => Some(SetupFrame::Connect {
                node: node(b)?,
                region: region(b)?,
                variant: SocketVariant::from_u8(*b.get(17)?)?,
                reply_port: u16::from_le_bytes(b.get(18..20)?.try_into().ok()?),
            }),
            2 => Some(SetupFrame::Accept {
                node: node(b)?,
                region: region(b)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let f = SetupFrame::Connect {
            node: NodeId(3),
            region: 0xDEAD_BEEF,
            variant: SocketVariant::Du1Copy,
            reply_port: 4321,
        };
        assert_eq!(SetupFrame::decode(&f.encode()), Some(f));
        let f = SetupFrame::Accept {
            node: NodeId(1),
            region: 7,
        };
        assert_eq!(SetupFrame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(SetupFrame::decode(&[]), None);
        assert_eq!(SetupFrame::decode(&[9, 0, 0]), None);
        assert_eq!(SetupFrame::decode(&[1, 0]), None);
        let mut f = SetupFrame::Connect {
            node: NodeId(0),
            region: 1,
            variant: SocketVariant::Au2Copy,
            reply_port: 1,
        }
        .encode();
        f[17] = 99; // bad variant
        assert_eq!(SetupFrame::decode(&f), None);
    }

    #[test]
    fn variants_round_trip() {
        for v in [
            SocketVariant::Au2Copy,
            SocketVariant::Du1Copy,
            SocketVariant::Du2Copy,
        ] {
            assert_eq!(SocketVariant::from_u8(v.to_u8()), Some(v));
        }
        assert_eq!(SocketVariant::from_u8(3), None);
    }

    #[test]
    fn region_constants_are_page_multiples() {
        assert_eq!(REGION_BYTES % PAGE_SIZE, 0);
        assert_eq!(RING_BYTES % 4, 0);
    }
}
