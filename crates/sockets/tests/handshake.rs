//! Connection-establishment robustness: the Ethernet is a shared,
//! public channel; listeners must tolerate stray traffic.

use std::sync::Arc;

use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::EthAddr;
use shrimp_sim::{Kernel, SimDur};
use shrimp_sockets::{connect, listen, SetupFrame, SocketVariant};

#[test]
fn listener_ignores_stray_frames_and_still_accepts() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    {
        let vmmc = system.endpoint(1, "server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("server", move |ctx| {
            let listener = listen(vmmc, eth, 6000);
            let mut sock = listener.accept(ctx).unwrap();
            assert_eq!(sock.recv_exact(ctx, 5).unwrap(), b"hello");
            sock.close(ctx).unwrap();
        });
    }
    {
        // A confused host sprays garbage at the listening port first.
        let eth = Arc::clone(system.ethernet());
        kernel.schedule_in(SimDur::from_us(1.0), move || {
            eth.send(
                NodeId(3),
                EthAddr {
                    node: NodeId(1),
                    port: 6000,
                },
                vec![0xFF, 0x00, 0x01],
            );
        });
        let eth = Arc::clone(system.ethernet());
        kernel.schedule_in(SimDur::from_us(2.0), move || {
            eth.send(
                NodeId(2),
                EthAddr {
                    node: NodeId(1),
                    port: 6000,
                },
                Vec::new(),
            );
        });
    }
    {
        let vmmc = system.endpoint(0, "client");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("client", move |ctx| {
            // Arrive after the garbage.
            ctx.advance(SimDur::from_us(5_000.0));
            let mut sock =
                connect(vmmc, ctx, &eth, NodeId(1), 6000, SocketVariant::Au2Copy).unwrap();
            sock.send(ctx, b"hello").unwrap();
            sock.close(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn setup_frames_survive_the_ethernet_byte_for_byte() {
    // The frames carry mapping names — a corrupted exchange would wire
    // the rings to the wrong pages.
    let frames = [
        SetupFrame::Connect {
            node: NodeId(2),
            region: u64::MAX,
            variant: SocketVariant::Du2Copy,
            reply_port: 0,
        },
        SetupFrame::Accept {
            node: NodeId(0),
            region: 1,
        },
    ];
    for f in frames {
        assert_eq!(SetupFrame::decode(&f.encode()), Some(f));
    }
}
