//! End-to-end stream socket tests on the prototype.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_sim::{Ctx, Kernel, SimDur};
use shrimp_sockets::{connect, listen, ShrimpSocket, SocketError, SocketVariant};

fn run_pair(
    variant: SocketVariant,
    server_body: impl FnOnce(&Ctx, &mut ShrimpSocket) + Send + 'static,
    client_body: impl FnOnce(&Ctx, &mut ShrimpSocket) + Send + 'static,
) -> Arc<ShrimpSystem> {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    {
        let vmmc = system.endpoint(1, "server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("server", move |ctx| {
            let listener = listen(vmmc, eth, 7000);
            let mut sock = listener.accept(ctx).unwrap();
            server_body(ctx, &mut sock);
        });
    }
    {
        let vmmc = system.endpoint(0, "client");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("client", move |ctx| {
            let mut sock = connect(vmmc, ctx, &eth, NodeId(1), 7000, variant).unwrap();
            client_body(ctx, &mut sock);
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    system
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 247) as u8).collect()
}

#[test]
fn echo_round_trip_all_variants() {
    for variant in [
        SocketVariant::Au2Copy,
        SocketVariant::Du1Copy,
        SocketVariant::Du2Copy,
    ] {
        run_pair(
            variant,
            |ctx, sock| {
                let msg = sock.recv_exact(ctx, 1000).unwrap();
                sock.send(ctx, &msg).unwrap();
            },
            |ctx, sock| {
                let msg = pattern(1000);
                sock.send(ctx, &msg).unwrap();
                assert_eq!(sock.recv_exact(ctx, 1000).unwrap(), msg);
                sock.close(ctx).unwrap();
            },
        );
    }
}

#[test]
fn byte_stream_has_no_message_boundaries() {
    run_pair(
        SocketVariant::Au2Copy,
        |ctx, sock| {
            // Three small writes arrive as one coalesced stream.
            sock.send(ctx, b"hello ").unwrap();
            sock.send(ctx, b"shrimp ").unwrap();
            sock.send(ctx, b"sockets").unwrap();
            sock.close(ctx).unwrap();
        },
        |ctx, sock| {
            // Give all three writes time to land, then read them in one go.
            ctx.advance(SimDur::from_us(5_000.0));
            let all = sock.recv(ctx, 64).unwrap();
            assert_eq!(all, b"hello shrimp sockets");
            // Next recv: clean EOF.
            assert_eq!(sock.recv(ctx, 64).unwrap(), Vec::<u8>::new());
        },
    );
}

#[test]
fn large_transfer_wraps_ring_many_times() {
    let total = 300_000usize; // ~9 ring wraps
    for variant in [SocketVariant::Du1Copy, SocketVariant::Au2Copy] {
        let received: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&received);
        run_pair(
            variant,
            move |ctx, sock| loop {
                let chunk = sock.recv(ctx, 8192).unwrap();
                if chunk.is_empty() {
                    break;
                }
                r.lock().extend(chunk);
            },
            move |ctx, sock| {
                let data = pattern(total);
                // Odd-sized writes exercise alignment raggedness.
                for chunk in data.chunks(7321) {
                    sock.send(ctx, chunk).unwrap();
                }
                sock.close(ctx).unwrap();
            },
        );
        assert_eq!(*received.lock(), pattern(total), "variant {variant:?}");
    }
}

#[test]
fn flow_control_blocks_fast_sender() {
    // The sender outruns a slow receiver by far more than the ring size;
    // everything must still arrive intact and in order.
    let received: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let r = Arc::clone(&received);
    run_pair(
        SocketVariant::Au2Copy,
        move |ctx, sock| {
            ctx.advance(SimDur::from_us(20_000.0)); // slow start
            loop {
                let chunk = sock.recv(ctx, 2048).unwrap();
                if chunk.is_empty() {
                    break;
                }
                r.lock().extend(chunk);
                ctx.advance(SimDur::from_us(200.0)); // slow consumer
            }
        },
        move |ctx, sock| {
            let data = pattern(150_000);
            sock.send(ctx, &data).unwrap();
            sock.close(ctx).unwrap();
        },
    );
    assert_eq!(*received.lock(), pattern(150_000));
}

#[test]
fn send_after_close_is_an_error() {
    run_pair(
        SocketVariant::Au2Copy,
        |ctx, sock| {
            assert_eq!(sock.recv(ctx, 16).unwrap(), b"x");
            assert!(sock.recv(ctx, 16).unwrap().is_empty());
        },
        |ctx, sock| {
            sock.send(ctx, b"x").unwrap();
            sock.close(ctx).unwrap();
            assert_eq!(sock.send(ctx, b"y").unwrap_err(), SocketError::Closed);
            // Closing again is idempotent.
            sock.close(ctx).unwrap();
        },
    );
}

#[test]
fn recv_exact_reports_truncated_stream() {
    run_pair(
        SocketVariant::Du2Copy,
        |ctx, sock| {
            sock.send(ctx, b"only five").unwrap();
            sock.close(ctx).unwrap();
        },
        |ctx, sock| {
            let err = sock.recv_exact(ctx, 100).unwrap_err();
            assert_eq!(err, SocketError::Closed);
        },
    );
}

#[test]
fn bidirectional_concurrent_traffic() {
    // Full-duplex: both sides stream simultaneously.
    run_pair(
        SocketVariant::Du1Copy,
        |ctx, sock| {
            let data = pattern(50_000);
            sock.send(ctx, &data).unwrap();
            sock.close(ctx).unwrap();
            let mut got = Vec::new();
            loop {
                let c = sock.recv(ctx, 4096).unwrap();
                if c.is_empty() {
                    break;
                }
                got.extend(c);
            }
            assert_eq!(got, pattern(30_000));
        },
        |ctx, sock| {
            let data = pattern(30_000);
            sock.send(ctx, &data).unwrap();
            sock.close(ctx).unwrap();
            let mut got = Vec::new();
            loop {
                let c = sock.recv(ctx, 4096).unwrap();
                if c.is_empty() {
                    break;
                }
                got.extend(c);
            }
            assert_eq!(got, pattern(50_000));
        },
    );
}

#[test]
fn two_connections_on_one_listener() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    {
        let vmmc = system.endpoint(1, "server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("server", move |ctx| {
            let listener = listen(vmmc, eth, 9000);
            for _ in 0..2 {
                let mut sock = listener.accept(ctx).unwrap();
                let msg = sock.recv_exact(ctx, 4).unwrap();
                sock.send(ctx, &msg).unwrap();
                sock.close(ctx).unwrap();
            }
        });
    }
    for (i, node) in [(1u8, 0usize), (2u8, 2usize)] {
        let vmmc = system.endpoint(node, format!("client{i}"));
        let eth = Arc::clone(system.ethernet());
        kernel.spawn(format!("client{i}"), move |ctx| {
            ctx.advance(SimDur::from_us(i as f64 * 10_000.0));
            let mut sock =
                connect(vmmc, ctx, &eth, NodeId(1), 9000, SocketVariant::Au2Copy).unwrap();
            sock.send(ctx, &[i; 4]).unwrap();
            assert_eq!(sock.recv_exact(ctx, 4).unwrap(), vec![i; 4]);
            sock.close(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
}

#[test]
fn edge_sizes_zero_and_full_ring() {
    use shrimp_sockets::RING_BYTES;
    run_pair(
        SocketVariant::Du2Copy,
        |ctx, sock| {
            // Zero-length send is a no-op on the wire.
            assert_eq!(sock.send(ctx, &[]).unwrap(), 0);
            // Exactly one full ring of data in a single send call.
            let data = pattern(RING_BYTES);
            sock.send(ctx, &data).unwrap();
            sock.close(ctx).unwrap();
        },
        |ctx, sock| {
            let got = sock.recv_exact(ctx, RING_BYTES).unwrap();
            assert_eq!(got, pattern(RING_BYTES));
            assert!(sock.recv(ctx, 16).unwrap().is_empty());
        },
    );
}

#[test]
fn recv_caps_at_maxlen_and_preserves_remainder() {
    run_pair(
        SocketVariant::Au2Copy,
        |ctx, sock| {
            sock.send(ctx, &pattern(1000)).unwrap();
            sock.close(ctx).unwrap();
        },
        |ctx, sock| {
            ctx.advance(SimDur::from_us(3_000.0)); // let everything land
            let a = sock.recv(ctx, 100).unwrap();
            assert_eq!(a.len(), 100);
            let b = sock.recv_exact(ctx, 900).unwrap();
            let mut all = a;
            all.extend(b);
            assert_eq!(all, pattern(1000));
        },
    );
}
