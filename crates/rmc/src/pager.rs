//! The client side of disaggregated memory: a small local frame cache
//! over a remote page pool, with LRU replacement and dirty write-back.

use std::collections::HashMap;

use shrimp_core::{ImportHandle, Vmmc, VmmcError};
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_obs::Log2Hist;
use shrimp_sim::{Ctx, RetryPolicy};

/// Accounting the paper's remote-paging sketch calls for: how often the
/// frame cache hit, how often a page had to be fetched from the memory
/// server, and how long those faults took end to end.
#[derive(Debug, Clone, Default)]
pub struct PagerStats {
    /// Accesses satisfied by a resident frame.
    pub hits: u64,
    /// Accesses that faulted and fetched the page remotely.
    pub misses: u64,
    /// Frames recycled to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty and were deposited back first.
    pub writebacks: u64,
    /// End-to-end fault latency (fetch issue to last reply deposit),
    /// in picoseconds.
    pub fault_latency: Log2Hist,
}

impl PagerStats {
    /// Hit rate over all accesses, in `[0, 1]`; 1.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU pager over a remote page pool (see [`crate::MemoryServer`]).
///
/// The pager presents `vpages * PAGE_SIZE` bytes of byte-addressable
/// "far memory", cached in `frames` local page frames. A miss evicts
/// the least-recently-used resident page (depositing it back to the
/// pool if dirty) and faults the wanted page in with a one-sided
/// remote fetch — the memory server's processor is never involved.
pub struct RemotePager {
    vmmc: Vmmc,
    pool: ImportHandle,
    vpages: usize,
    frames_va: VAddr,
    frames: usize,
    /// vpage -> resident frame index.
    resident: HashMap<usize, usize>,
    /// frame index -> (vpage, dirty).
    frame_state: Vec<Option<(usize, bool)>>,
    /// Resident vpages, least recently used first.
    lru: Vec<usize>,
    free: Vec<usize>,
    policy: RetryPolicy,
    stats: PagerStats,
}

impl RemotePager {
    /// Build a pager over `vpages` pages of the imported pool, cached
    /// in `frames` local frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or the pool is smaller than
    /// `vpages` pages.
    pub fn new(vmmc: Vmmc, pool: ImportHandle, vpages: usize, frames: usize) -> RemotePager {
        assert!(frames > 0, "the pager needs at least one local frame");
        assert!(
            vpages * PAGE_SIZE <= pool.len(),
            "pool of {} bytes cannot back {vpages} pages",
            pool.len()
        );
        let frames_va = vmmc.proc_().alloc(frames * PAGE_SIZE, CacheMode::WriteBack);
        RemotePager {
            vmmc,
            pool,
            vpages,
            frames_va,
            frames,
            resident: HashMap::new(),
            frame_state: vec![None; frames],
            lru: Vec::new(),
            free: (0..frames).rev().collect(),
            policy: RetryPolicy::bootstrap(),
            stats: PagerStats::default(),
        }
    }

    /// Override the fault-retry policy (transient fetch denials and
    /// memory-server daemon outages are retried under it).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Size of the paged address space in bytes.
    pub fn len(&self) -> usize {
        self.vpages * PAGE_SIZE
    }

    /// True for a zero-page pager (never constructible).
    pub fn is_empty(&self) -> bool {
        self.vpages == 0
    }

    /// Accounting so far.
    pub fn stats(&self) -> &PagerStats {
        &self.stats
    }

    /// The endpoint driving this pager.
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Currently resident pages (ascending), a test aid.
    pub fn resident_pages(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.resident.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn frame_va(&self, frame: usize) -> VAddr {
        self.frames_va.add(frame * PAGE_SIZE)
    }

    /// Make `vpage` resident and return its frame, evicting (and
    /// writing back) the LRU page if the cache is full.
    fn fault_in(&mut self, ctx: &Ctx, vpage: usize) -> Result<usize, VmmcError> {
        if let Some(&f) = self.resident.get(&vpage) {
            self.stats.hits += 1;
            self.lru.retain(|&v| v != vpage);
            self.lru.push(vpage);
            return Ok(f);
        }
        self.stats.misses += 1;
        let f = match self.free.pop() {
            Some(f) => f,
            None => {
                let victim = self.lru.remove(0);
                let vf = self.resident.remove(&victim).expect("LRU page is resident");
                let (_, dirty) = self.frame_state[vf].take().expect("frame is occupied");
                self.stats.evictions += 1;
                if dirty {
                    self.stats.writebacks += 1;
                    self.vmmc.send(
                        ctx,
                        self.frame_va(vf),
                        &self.pool,
                        victim * PAGE_SIZE,
                        PAGE_SIZE,
                    )?;
                }
                vf
            }
        };
        let t0 = ctx.now();
        self.vmmc.fetch_retry(
            ctx,
            self.frame_va(f),
            &self.pool,
            vpage * PAGE_SIZE,
            PAGE_SIZE,
            self.policy,
        )?;
        self.stats.fault_latency.record(ctx.now().since(t0).as_ps());
        self.resident.insert(vpage, f);
        self.frame_state[f] = Some((vpage, false));
        self.lru.push(vpage);
        Ok(f)
    }

    /// Read `len` bytes at byte address `addr` of the far-memory space,
    /// faulting pages in as needed.
    ///
    /// # Errors
    ///
    /// Surfaces fetch errors (after the retry policy is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the paged space.
    pub fn read(&mut self, ctx: &Ctx, addr: usize, len: usize) -> Result<Vec<u8>, VmmcError> {
        assert!(addr + len <= self.len(), "read past end of paged space");
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let a = addr + off;
            let (vpage, within) = (a / PAGE_SIZE, a % PAGE_SIZE);
            let n = (len - off).min(PAGE_SIZE - within);
            let f = self.fault_in(ctx, vpage)?;
            let chunk = self
                .vmmc
                .proc_()
                .read(ctx, self.frame_va(f).add(within), n)?;
            out.extend_from_slice(&chunk);
            off += n;
        }
        Ok(out)
    }

    /// Write `data` at byte address `addr`, faulting pages in as needed
    /// and marking the touched frames dirty (they deposit back to the
    /// pool on eviction or [`RemotePager::flush`]).
    ///
    /// # Errors
    ///
    /// Surfaces fetch errors (after the retry policy is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the paged space.
    pub fn write(&mut self, ctx: &Ctx, addr: usize, data: &[u8]) -> Result<(), VmmcError> {
        assert!(
            addr + data.len() <= self.len(),
            "write past end of paged space"
        );
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off;
            let (vpage, within) = (a / PAGE_SIZE, a % PAGE_SIZE);
            let n = (data.len() - off).min(PAGE_SIZE - within);
            let f = self.fault_in(ctx, vpage)?;
            self.vmmc
                .proc_()
                .write(ctx, self.frame_va(f).add(within), &data[off..off + n])?;
            if let Some(state) = self.frame_state[f].as_mut() {
                state.1 = true;
            }
            off += n;
        }
        Ok(())
    }

    /// Deposit every dirty resident frame back to the pool; afterwards
    /// the pool holds the pager's full state.
    ///
    /// # Errors
    ///
    /// As for [`Vmmc::send`].
    pub fn flush(&mut self, ctx: &Ctx) -> Result<(), VmmcError> {
        for f in 0..self.frames {
            if let Some((vpage, dirty)) = self.frame_state[f] {
                if dirty {
                    self.stats.writebacks += 1;
                    self.vmmc.send(
                        ctx,
                        self.frame_va(f),
                        &self.pool,
                        vpage * PAGE_SIZE,
                        PAGE_SIZE,
                    )?;
                    self.frame_state[f] = Some((vpage, false));
                }
            }
        }
        Ok(())
    }
}
