//! # shrimp-rmc — one-sided remote memory channels
//!
//! VMMC's deliberate and automatic update are one-sided *writes*: the
//! receiving processor never runs. This crate packages the symmetric
//! primitive — the protected remote *read* ([`shrimp_core::Vmmc::fetch`],
//! served entirely by the remote NIC against its incoming page table —
//! into a disaggregated-memory subsystem:
//!
//! * [`MemoryServer`] — a node that exports a pool of page frames with
//!   read permission ([`shrimp_core::ExportOpts::read`]) and then never
//!   touches them again: clients evict pages *to* it with deliberate
//!   update and fault them *back* with remote fetch, all in NIC
//!   hardware;
//! * [`RemotePager`] — the client side: a local frame cache over a
//!   remote page pool with LRU replacement, dirty-page write-back, and
//!   hit/miss/fault-latency accounting ([`PagerStats`]).
//!
//! The protection model is exactly the deposit model plus one bit: a
//! fetch is admitted iff a deposit-side export of the same page would
//! admit the importer *and* the export granted read permission. The
//! property tests in `tests/rmc_properties.rs` pin both directions.
//!
//! ## A two-node disaggregated memory
//!
//! ```
//! use shrimp_sim::{Kernel, SimChannel};
//! use shrimp_core::{ShrimpSystem, SystemConfig};
//! use shrimp_rmc::{MemoryServer, RemotePager};
//!
//! let kernel = Kernel::new();
//! let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
//! let names: SimChannel<shrimp_core::BufferName> = SimChannel::new();
//!
//! let server = system.endpoint(1, "memserver");
//! let client = system.endpoint(0, "client");
//!
//! let names2 = names.clone();
//! kernel.spawn("memserver", move |ctx| {
//!     let srv = MemoryServer::export(server, ctx, 8).unwrap();
//!     names2.send(&ctx.handle(), srv.name());
//!     srv.park(ctx); // the server CPU idles; its NIC does the work
//! });
//!
//! kernel.spawn("client", move |ctx| {
//!     use shrimp_mesh::NodeId;
//!     let name = names.recv(ctx);
//!     let pool = client.import(ctx, NodeId(1), name).unwrap();
//!     // 8 remote pages cached in 2 local frames.
//!     let mut pager = RemotePager::new(client, pool, 8, 2);
//!     pager.write(ctx, 5 * 4096, b"cold data").unwrap();
//!     pager.write(ctx, 0, b"hot data").unwrap();   // evicts page 5
//!     let back = pager.read(ctx, 5 * 4096, 9).unwrap(); // faults it back
//!     assert_eq!(back, b"cold data");
//!     assert!(pager.stats().misses >= 2);
//! });
//!
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod pager;
mod server;

pub use pager::{PagerStats, RemotePager};
pub use server::MemoryServer;
