//! The disaggregated-memory node: a pool of page frames exported once
//! with read permission, then served entirely by the NIC.

use shrimp_core::{BufferName, ExportOpts, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::Ctx;

/// A memory-server: one node of the machine donating a pool of
/// `pages` page frames to remote pagers. After [`MemoryServer::export`]
/// the server's processor never has to run again — evictions arrive as
/// deliberate-update deposits and page-ins leave as NIC-served remote
/// fetches.
pub struct MemoryServer {
    vmmc: Vmmc,
    pool_va: VAddr,
    name: BufferName,
    pages: usize,
}

impl MemoryServer {
    /// Allocate a zeroed pool of `pages` page frames on this endpoint's
    /// node and export it fetchable (read permission) and writable by
    /// any importer. Slot `i` is the page at byte `i * PAGE_SIZE`.
    ///
    /// # Errors
    ///
    /// As for [`Vmmc::export`].
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn export(vmmc: Vmmc, ctx: &Ctx, pages: usize) -> Result<MemoryServer, VmmcError> {
        assert!(pages > 0, "a memory server needs at least one page");
        let bytes = pages * PAGE_SIZE;
        let pool_va = vmmc.proc_().alloc(bytes, CacheMode::WriteBack);
        let name = vmmc.export(
            ctx,
            pool_va,
            bytes,
            ExportOpts {
                read: true,
                ..Default::default()
            },
        )?;
        Ok(MemoryServer {
            vmmc,
            pool_va,
            name,
            pages,
        })
    }

    /// The pool's buffer name, for clients to import.
    pub fn name(&self) -> BufferName {
        self.name
    }

    /// Pool capacity in pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// The serving node.
    pub fn node(&self) -> NodeId {
        self.vmmc.node_id()
    }

    /// The endpoint owning the pool (the export stays alive as long as
    /// the daemon's record does, even if the server process exits).
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Untimed direct view of one pool slot — a verification aid for
    /// tests asserting that write-backs really landed.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn peek_slot(&self, slot: usize) -> Vec<u8> {
        assert!(slot < self.pages, "slot {slot} out of range");
        self.vmmc
            .proc_()
            .peek(self.pool_va.add(slot * PAGE_SIZE), PAGE_SIZE)
            .expect("pool is mapped")
    }

    /// Idle the server process forever: the memory server's CPU has no
    /// work — its NIC answers fetches and accepts deposits on its own.
    pub fn park(&self, ctx: &Ctx) {
        loop {
            ctx.park();
        }
    }
}
