//! The two pinned properties of one-sided remote memory:
//!
//! * **pager vs sequential reference** — any interleaving of reads and
//!   writes through the [`RemotePager`] (with its evictions, dirty
//!   write-backs, and remote faults racing the client's own local
//!   writes) observes exactly what a flat byte array observes, and
//!   after a flush the memory server's pool holds that array
//!   bit-for-bit;
//! * **fetch vs the protection model** — a remote fetch succeeds iff a
//!   deposit-side export of the target would admit this importer *and*
//!   the export granted read permission, with the daemon up. Each
//!   refusal is the matching typed error.

use std::sync::Arc;

use proptest::prelude::*;
use shrimp_core::{BufferName, ExportOpts, ExportPerms, ShrimpSystem, SystemConfig, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_rmc::{MemoryServer, RemotePager};
use shrimp_sim::{Kernel, SimChannel};

#[derive(Debug, Clone)]
enum PagerOp {
    Read { addr: usize, len: usize },
    Write { addr: usize, data: Vec<u8> },
}

fn pager_ops(space: usize) -> impl Strategy<Value = Vec<PagerOp>> {
    proptest::collection::vec(
        (0usize..space - 600, 1usize..600, any::<bool>(), any::<u8>()).prop_map(
            |(addr, len, is_write, fill)| {
                if is_write {
                    PagerOp::Write {
                        addr,
                        data: (0..len).map(|i| fill.wrapping_add(i as u8)).collect(),
                    }
                } else {
                    PagerOp::Read { addr, len }
                }
            },
        ),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pager is indistinguishable from local memory: every read
    /// matches the sequential reference, and the flushed pool equals it.
    #[test]
    fn pager_matches_flat_memory_reference(
        ops in pager_ops(6 * PAGE_SIZE),
        frames in 1usize..4,
    ) {
        let vpages = 6;
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let names: SimChannel<BufferName> = SimChannel::new();
        let pool_bytes: SimChannel<Vec<u8>> = SimChannel::new();

        let server = system.endpoint(1, "memserver");
        let client = system.endpoint(0, "client");

        {
            let names = names.clone();
            let pool_bytes = pool_bytes.clone();
            kernel.spawn("memserver", move |ctx| {
                let srv = MemoryServer::export(server, ctx, vpages).unwrap();
                names.send(&ctx.handle(), srv.name());
                // Hand the final pool contents back once the client is
                // done (signalled by an empty name on the channel).
                let _ = names.recv(ctx);
                let all: Vec<u8> = (0..vpages).flat_map(|s| srv.peek_slot(s)).collect();
                pool_bytes.send(&ctx.handle(), all);
            });
        }
        let ops2 = ops.clone();
        kernel.spawn("client", move |ctx| {
            let name = names.recv(ctx);
            let pool = client.import(ctx, NodeId(1), name).unwrap();
            let mut pager = RemotePager::new(client, pool, vpages, frames);
            let mut reference = vec![0u8; vpages * PAGE_SIZE];
            for op in &ops2 {
                match op {
                    PagerOp::Read { addr, len } => {
                        let got = pager.read(ctx, *addr, *len).unwrap();
                        assert_eq!(
                            got,
                            reference[*addr..*addr + *len],
                            "read at {addr} diverged from the reference"
                        );
                    }
                    PagerOp::Write { addr, data } => {
                        pager.write(ctx, *addr, data).unwrap();
                        reference[*addr..*addr + data.len()].copy_from_slice(data);
                    }
                }
            }
            pager.flush(ctx).unwrap();
            // Read-back through the pager still matches.
            let full = pager.read(ctx, 0, vpages * PAGE_SIZE).unwrap();
            assert_eq!(full, reference);
            // Let every write-back deposit land before the server peeks.
            pager.vmmc().drain(ctx);
            names.send(&ctx.handle(), name); // wake the server for the final peek
            let pool_now = pool_bytes.recv(ctx);
            assert_eq!(pool_now, reference, "flushed pool diverged from the reference");
        });
        kernel.run_until_quiescent().unwrap();
        prop_assert!(system.violations().is_empty());
    }
}

/// One randomized protection configuration for the fetch-vs-deposit
/// admission property.
#[derive(Debug, Clone)]
struct ProtCase {
    read: bool,
    admit_importer: bool,
    daemon_down: bool,
    off_words: usize,
    len_words: usize,
}

fn prot_case() -> impl Strategy<Value = ProtCase> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..(PAGE_SIZE / 4 - 1),
        1usize..64,
    )
        .prop_map(
            |(read, admit_importer, daemon_down, off_words, len_words)| ProtCase {
                read,
                admit_importer,
                daemon_down,
                off_words,
                len_words,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fetch is admitted iff the deposit-side export admits this
    /// importer AND grants read permission AND the daemon is up — and
    /// every refusal is the matching typed error.
    #[test]
    fn fetch_succeeds_iff_export_admits_with_read(case in prot_case()) {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let names: SimChannel<BufferName> = SimChannel::new();

        let owner = system.endpoint(1, "owner");
        let reader = system.endpoint(0, "reader");
        let len = (case.len_words * 4).min(PAGE_SIZE - case.off_words * 4);
        let off = case.off_words * 4;

        {
            let names = names.clone();
            let case = case.clone();
            kernel.spawn("owner", move |ctx| {
                let buf = owner.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
                let fill: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
                owner.proc_().write(ctx, buf, &fill).unwrap();
                let perms = if case.admit_importer {
                    ExportPerms::Any
                } else {
                    ExportPerms::Nodes(vec![NodeId(3)]) // excludes node 0
                };
                let name = owner
                    .export(
                        ctx,
                        buf,
                        PAGE_SIZE,
                        ExportOpts { perms, read: case.read, ..Default::default() },
                    )
                    .unwrap();
                names.send(&ctx.handle(), name);
                owner_park(ctx);
            });
        }
        let sys = Arc::clone(&system);
        let case2 = case.clone();
        kernel.spawn("reader", move |ctx| {
            let name = names.recv(ctx);
            let imported = reader.import(ctx, NodeId(1), name);
            if !case2.admit_importer {
                // Excluded importers are refused at mapping time — the
                // fetch path is never reachable without a mapping.
                assert!(matches!(imported, Err(VmmcError::PermissionDenied { .. })));
                return;
            }
            let src = imported.unwrap();
            let dst = reader.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            if case2.daemon_down {
                sys.daemon(1).crash();
            }
            let got = reader.fetch(ctx, dst, &src, off, len);
            match (case2.daemon_down, case2.read) {
                (true, _) => assert!(
                    matches!(got, Err(VmmcError::DaemonUnavailable { node: NodeId(1) })),
                    "daemon-down fetch must NAK, got {got:?}"
                ),
                (false, false) => assert!(
                    matches!(got, Err(VmmcError::FetchDenied { node: NodeId(1), .. })),
                    "read-less export must deny, got {got:?}"
                ),
                (false, true) => {
                    got.unwrap();
                    let data = reader.proc_().peek(dst, len).unwrap();
                    let want: Vec<u8> = (off..off + len).map(|i| (i % 251) as u8).collect();
                    assert_eq!(data, want);
                }
            }
            if case2.daemon_down {
                sys.daemon(1).restart();
            }
        });
        kernel.run_until_quiescent().unwrap();
    }
}

fn owner_park(ctx: &shrimp_sim::Ctx) {
    // The owner idles; fetches are served by its NIC without it.
    ctx.park();
}
