//! Conservation gate for the fetch datapath's observability spans: the
//! request emission, remote IPT check, remote DMA read, reply
//! packetization, and reply deposit — plus uncovered transfer/wait
//! time — must partition the end-to-end fetch latency *exactly* (in
//! integer picoseconds), for every fetch message.

use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_obs::breakdown::message_ids;
use shrimp_obs::{breakdown, Layer, Recorder};
use shrimp_sim::{Kernel, SimChannel, SimDur};

#[test]
fn fetch_spans_conserve_end_to_end_latency() {
    let rec = Recorder::new();
    let _guard = rec.install();
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: SimChannel<BufferName> = SimChannel::new();

    let owner = system.endpoint(1, "owner");
    let reader = system.endpoint(0, "reader");
    let n = PAGE_SIZE + 512; // two source pages, multi-packet replies

    {
        let names = names.clone();
        kernel.spawn("owner", move |ctx| {
            let buf = owner.proc_().alloc(n, CacheMode::WriteBack);
            let data: Vec<u8> = (0..n).map(|i| (i % 233) as u8).collect();
            owner.proc_().write(ctx, buf, &data).unwrap();
            let name = owner
                .export(
                    ctx,
                    buf,
                    n,
                    ExportOpts {
                        read: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
            ctx.advance(SimDur::from_us(10_000.0));
        });
    }
    kernel.spawn("reader", move |ctx| {
        let name = names.recv(ctx);
        let src = reader.import(ctx, NodeId(1), name).unwrap();
        let dst = reader.proc_().alloc(n, CacheMode::WriteBack);
        reader.fetch(ctx, dst, &src, 0, n).unwrap();
        assert_eq!(
            reader.proc_().peek(dst, n).unwrap(),
            (0..n).map(|i| (i % 233) as u8).collect::<Vec<u8>>()
        );
    });
    kernel.run_until_quiescent().unwrap();

    let spans = rec.spans();
    // The fetch message is the one carrying the endpoint-level span.
    let fetch_msgs: Vec<_> = spans
        .iter()
        .filter(|s| s.layer == Layer::Endpoint && s.name == "fetch")
        .map(|s| s.msg)
        .collect();
    assert_eq!(fetch_msgs.len(), 1, "one blocking fetch, one endpoint span");
    let msg = fetch_msgs[0];

    let b = breakdown(&spans, msg).expect("fetch message has spans");
    assert!(
        b.is_conserved(),
        "segments must sum exactly to end-to-end latency: {:?}",
        b.segments
    );
    // Every stage of the fetch datapath must appear and carry time:
    // request out, remote IPT check, remote memory read, reply
    // packetization, reply deposit.
    for stage in [
        "fetch_req",
        "fetch_ipt_check",
        "fetch_read",
        "fetch_reply",
        "fetch_deposit",
    ] {
        assert!(
            b.named(stage) > SimDur::ZERO,
            "stage {stage} missing from the breakdown: {:?}",
            b.segments
        );
    }
    // The partition is exact, so stages + everything else == total.
    let stage_sum = [
        "fetch_req",
        "fetch_ipt_check",
        "fetch_read",
        "fetch_reply",
        "fetch_deposit",
    ]
    .iter()
    .fold(SimDur::ZERO, |acc, s| acc + b.named(s));
    assert!(stage_sum < b.total(), "issue overhead and wire time exist");
    assert_eq!(b.segment_sum(), b.total());

    // And the invariant holds for *every* message recorded in the run,
    // not just the fetch (the deposit-path gate extended to rmc).
    for m in message_ids(&spans) {
        let bd = breakdown(&spans, m).unwrap();
        assert!(bd.is_conserved(), "message {m:?} not conserved");
    }
}
