//! The serving processes: per-shard RPC workers, the chained
//! replicator, the backup applier, and the failover watchdog.
//!
//! ## Replication channel
//!
//! The backup exports one region per shard, written only by the
//! primary's replicator:
//!
//! ```text
//! | rec 0 | … | rec S-1 | flag[0..S] |
//! ```
//!
//! plus a single 4-byte *ack word* exported by the primary, written
//! only by the backup. A mutation with sequence `q` is deposited into
//! record slot `(q-1) % S`, then the 4-byte flag word `= q as u32` is
//! sent — VMMC's in-order delivery lands the flag after the record
//! (flag-after-data). The backup applies the record and deposits `q`
//! into the ack word. The replicator holds the client's reply until
//! the ack arrives: **the commit point is the backup's ack**, so every
//! acknowledged write exists on the replica when the primary dies.
//!
//! ## Degradation
//!
//! Replication is chained best-effort under faults: when the backup's
//! daemon dies (or its channel can never be established), the
//! replicator *demotes* the backup — clearing it from the route so the
//! watchdog can never promote a stale replica — and keeps serving
//! unreplicated. The single-failure guarantee ("no acked write lost
//! when a primary dies") is preserved; a second failure makes the
//! shard unavailable rather than silently wrong.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ImportHandle, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr};
use shrimp_sim::{Ctx, Gate, RetryPolicy, SimChannel, SimHandle};
use shrimp_srpc::{SrpcServer, Val};

use crate::cluster::SvcCluster;
use crate::seq_ge;
use crate::store::{Applied, Op, ShardStore, MAX_KEY, MAX_VAL};

/// Replication record: `[seq u64][kind u32][klen u32][vlen u32][pad]`
/// then the fixed key and value slots.
const REC_HDR: usize = 24;
/// Whole record size — a multiple of the word size, so slot offsets
/// stay aligned for deliberate update.
pub(crate) const REC_BYTES: usize = REC_HDR + MAX_KEY + MAX_VAL;

const KIND_PUT: u32 = 1;
const KIND_DEL: u32 = 2;

/// Export/import rendezvous for one shard's replication channel.
#[derive(Debug, Default)]
pub(crate) struct ReplLink {
    /// `(node, name)` of the backup's record+flag region.
    pub(crate) backup_pub: Mutex<Option<(NodeId, BufferName)>>,
    /// Opened once `backup_pub` is set.
    pub(crate) backup_ready: Gate,
    /// `(node, name)` of the primary's ack word.
    pub(crate) primary_pub: Mutex<Option<(NodeId, BufferName)>>,
    /// Opened once `primary_pub` is set.
    pub(crate) primary_ready: Gate,
}

/// One queued mutation from a serve worker to the replicator.
pub(crate) struct ReplReq {
    /// The primary-assigned store sequence.
    pub(crate) seq: u64,
    /// The mutation itself (replayed verbatim on the backup).
    pub(crate) op: Op,
    /// Completion: `true` once the backup acked, `false` when
    /// replication degraded and the write is primary-only.
    pub(crate) done: SimChannel<bool>,
}

fn encode_record(seq: u64, op: &Op) -> Vec<u8> {
    let mut out = vec![0u8; REC_BYTES];
    out[..8].copy_from_slice(&seq.to_le_bytes());
    let (kind, key, val): (u32, &[u8], &[u8]) = match op {
        Op::Put { key, val } => (KIND_PUT, key, val),
        Op::Del { key } => (KIND_DEL, key, &[]),
    };
    out[8..12].copy_from_slice(&kind.to_le_bytes());
    out[12..16].copy_from_slice(&(key.len() as u32).to_le_bytes());
    out[16..20].copy_from_slice(&(val.len() as u32).to_le_bytes());
    out[REC_HDR..REC_HDR + key.len()].copy_from_slice(key);
    out[REC_HDR + MAX_KEY..REC_HDR + MAX_KEY + val.len()].copy_from_slice(val);
    out
}

fn decode_record(raw: &[u8]) -> (u64, Op) {
    let seq = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
    let kind = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
    let klen = u32::from_le_bytes(raw[12..16].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes")) as usize;
    let key = raw[REC_HDR..REC_HDR + klen.min(MAX_KEY)].to_vec();
    let op = if kind == KIND_DEL {
        Op::Del { key }
    } else {
        let val = raw[REC_HDR + MAX_KEY..REC_HDR + MAX_KEY + vlen.min(MAX_VAL)].to_vec();
        Op::Put { key, val }
    };
    (seq, op)
}

/// [`Vmmc::export`] that rides out daemon outages with the policy's
/// backoff schedule, mirroring [`Vmmc::import_retry`].
fn export_retry(
    vmmc: &Vmmc,
    ctx: &Ctx,
    base: VAddr,
    len: usize,
    policy: RetryPolicy,
) -> Result<BufferName, VmmcError> {
    for attempt in 0..policy.attempts {
        match vmmc.export(ctx, base, len, ExportOpts::default()) {
            Err(VmmcError::DaemonUnavailable { .. }) => ctx.advance(policy.timeout(attempt)),
            other => return other,
        }
    }
    Err(VmmcError::Timeout {
        op: "svc export",
        waited: policy.total_budget(),
    })
}

/// Spawn every process serving one shard under the initial route.
pub(crate) fn spawn_shard(cluster: &Arc<SvcCluster>, shard: usize) {
    let route = cluster.route(shard);
    let h = cluster.system().sim().clone();
    let repl = route.backup.map(|_| cluster.shards[shard].repl.clone());
    let store = Arc::clone(&cluster.shards[shard].primary_store);
    spawn_serve_workers(cluster, &h, shard, 0, route.primary, store, repl);
    if let Some(bnode) = route.backup {
        spawn_replicator(cluster, &h, shard, route.primary, bnode);
        spawn_backup(cluster, &h, shard, bnode);
    }
}

/// Truncate a fixed-slot opaque argument to its companion length.
fn unpad(bytes: &Val, len: &Val) -> Vec<u8> {
    match (bytes, len) {
        (Val::Bytes(b), Val::U32(n)) => b[..(*n as usize).min(b.len())].to_vec(),
        _ => Vec::new(),
    }
}

/// Apply a mutation as the primary and (when chained) hold the reply
/// until the backup acks.
///
/// The sequence assignment and the replication enqueue happen with no
/// virtual-time operation between them, so records reach the
/// replicator in sequence order even with many concurrent workers.
fn mutate(
    ctx: &Ctx,
    store: &Mutex<ShardStore>,
    repl: &Option<SimChannel<ReplReq>>,
    op: Op,
) -> Applied {
    let applied = store.lock().apply_next(&op);
    if let Some(tx) = repl {
        let done: SimChannel<bool> = SimChannel::new();
        tx.send(
            &ctx.handle(),
            ReplReq {
                seq: applied.seq,
                op,
                done: done.clone(),
            },
        );
        // Commit point: the backup applied the record (or replication
        // degraded and the route's backup was demoted).
        done.recv(ctx);
    }
    applied
}

/// Spawn the pre-allocated RPC workers for `(shard, epoch)` on `node`.
/// Each worker is one concurrent client binding; it dies when the
/// node's daemon does (process death) or its epoch is deposed.
pub(crate) fn spawn_serve_workers(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    epoch: u32,
    node: usize,
    store: Arc<Mutex<ShardStore>>,
    repl: Option<SimChannel<ReplReq>>,
) {
    let service = SvcCluster::service(shard, epoch);
    for w in 0..cluster.config().conns_per_shard {
        let cluster = Arc::clone(cluster);
        let store = Arc::clone(&store);
        let repl = repl.clone();
        let service = service.clone();
        let name = format!("svc-s{shard}-e{epoch}-w{w}");
        h.spawn(name.clone(), move |ctx| {
            let sys = Arc::clone(cluster.system());
            let birth = sys.daemon(node).restarts();
            let vmmc = sys.endpoint(node, name);
            let mut srv = SrpcServer::new(vmmc, cluster.iface());

            let st = Arc::clone(&store);
            let rp = repl.clone();
            srv.register(
                "put",
                Box::new(move |ctx, ins, out| {
                    let op = Op::Put {
                        key: unpad(&ins[0], &ins[1]),
                        val: unpad(&ins[2], &ins[3]),
                    };
                    let a = mutate(ctx, &st, &rp, op);
                    let _ = out.set(ctx, "seq", &Val::U32(a.seq as u32));
                    let _ = out.set(ctx, "existed", &Val::Bool(a.existed));
                }),
            );
            let st = Arc::clone(&store);
            srv.register(
                "get",
                Box::new(move |ctx, ins, out| {
                    let key = unpad(&ins[0], &ins[1]);
                    let (seq, val) = {
                        let g = st.lock();
                        let (s, v) = g.get(&key);
                        (s, v.map(|v| v.to_vec()))
                    };
                    let _ = out.set(ctx, "seq", &Val::U32(seq as u32));
                    let _ = out.set(ctx, "found", &Val::Bool(val.is_some()));
                    let v = val.unwrap_or_default();
                    let _ = out.set(ctx, "vlen", &Val::U32(v.len() as u32));
                    let mut padded = v;
                    padded.resize(MAX_VAL, 0);
                    let _ = out.set(ctx, "val", &Val::Bytes(padded));
                }),
            );
            let st = Arc::clone(&store);
            let rp = repl.clone();
            srv.register(
                "del",
                Box::new(move |ctx, ins, out| {
                    let op = Op::Del {
                        key: unpad(&ins[0], &ins[1]),
                    };
                    let a = mutate(ctx, &st, &rp, op);
                    let _ = out.set(ctx, "seq", &Val::U32(a.seq as u32));
                    let _ = out.set(ctx, "existed", &Val::Bool(a.existed));
                }),
            );

            loop {
                let mut conn = match srv.accept(ctx, cluster.directory(), &service) {
                    Ok(c) => c,
                    // Establishment fails only under daemon outage —
                    // the connecting client times out and re-routes.
                    Err(_) => return,
                };
                let r = srv.serve_fenced(ctx, &mut conn, || {
                    let d = sys.daemon(node);
                    d.is_down() || d.restarts() != birth || cluster.route(shard).epoch != epoch
                });
                let d = sys.daemon(node);
                let fenced =
                    d.is_down() || d.restarts() != birth || cluster.route(shard).epoch != epoch;
                if fenced || r.is_err() {
                    return;
                }
                // Graceful close: recycle the worker for another
                // binding under the same epoch.
            }
        });
    }
}

/// Bounded wait on the primary's ack word for `seq_ge(ack, need)`,
/// re-checking shutdown, the backup's liveness, and this shard's epoch
/// every `watch_interval`. `false` means replication must degrade.
#[allow(clippy::too_many_arguments)]
fn wait_ack(
    ctx: &Ctx,
    vmmc: &Vmmc,
    ack_va: VAddr,
    need: u32,
    cluster: &Arc<SvcCluster>,
    shard: usize,
    bnode: usize,
    birth: u64,
) -> bool {
    let interval = cluster.config().watch_interval;
    loop {
        match vmmc.wait_u32_deadline(ctx, ack_va, 64, ctx.now() + interval, |v| seq_ge(v, need)) {
            Ok(_) => return true,
            Err(VmmcError::Timeout { .. }) => {
                if cluster.is_shutdown() {
                    return false;
                }
                let d = cluster.system().daemon(bnode);
                if d.is_down() || d.restarts() != birth {
                    return false;
                }
                // Our own shard was promoted away — the backup is now
                // the primary and stopped acking; stop chaining.
                if cluster.route(shard).epoch != 0 {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

/// One chained deposit: flow-control on the slot, record, flag, then
/// the commit wait for the backup's ack.
#[allow(clippy::too_many_arguments)]
fn replicate_one(
    ctx: &Ctx,
    vmmc: &Vmmc,
    dst: &ImportHandle,
    rec_stage: VAddr,
    flag_stage: VAddr,
    ack_va: VAddr,
    req: &ReplReq,
    cluster: &Arc<SvcCluster>,
    shard: usize,
    bnode: usize,
    birth: u64,
) -> bool {
    let slots = cluster.config().repl_slots as u64;
    if req.seq > slots
        && !wait_ack(
            ctx,
            vmmc,
            ack_va,
            (req.seq - slots) as u32,
            cluster,
            shard,
            bnode,
            birth,
        )
    {
        return false;
    }
    let rec = encode_record(req.seq, &req.op);
    if vmmc.proc_().write(ctx, rec_stage, &rec).is_err() {
        return false;
    }
    let slot = ((req.seq - 1) % slots) as usize;
    if vmmc
        .send(ctx, rec_stage, dst, slot * REC_BYTES, REC_BYTES)
        .is_err()
    {
        return false;
    }
    if vmmc
        .proc_()
        .write_u32(ctx, flag_stage, req.seq as u32)
        .is_err()
    {
        return false;
    }
    // Flag-after-data: in-order delivery lands the flag behind the
    // record it covers.
    if vmmc
        .send(
            ctx,
            flag_stage,
            dst,
            slots as usize * REC_BYTES + 4 * slot,
            4,
        )
        .is_err()
    {
        return false;
    }
    wait_ack(
        ctx,
        vmmc,
        ack_va,
        req.seq as u32,
        cluster,
        shard,
        bnode,
        birth,
    )
}

/// The primary-side replicator: one process per chained shard, pulling
/// mutations off the workers' queue in sequence order.
fn spawn_replicator(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    node: usize,
    bnode: usize,
) {
    let cluster = Arc::clone(cluster);
    let name = format!("svc-repl-s{shard}");
    h.spawn(name.clone(), move |ctx| {
        let vmmc = cluster.system().endpoint(node, name);
        let rt = &cluster.shards[shard];
        let rx = rt.repl.clone();
        let boot = RetryPolicy::bootstrap();
        let ack_va = vmmc.proc_().alloc(4, CacheMode::WriteBack);

        let peer: Option<ImportHandle> = (|| {
            let bufname = export_retry(&vmmc, ctx, ack_va, 4, boot).ok()?;
            *rt.link.primary_pub.lock() = Some((vmmc.node_id(), bufname));
            rt.link.primary_ready.open(&ctx.handle());
            let deadline = ctx.now() + boot.total_budget();
            if !rt.link.backup_ready.wait_deadline(ctx, deadline) {
                return None;
            }
            let (bn, bname) = (*rt.link.backup_pub.lock())?;
            vmmc.import_retry(ctx, bn, bname, boot).ok()
        })();
        let mut peer = peer;
        if peer.is_none() {
            cluster.demote_backup(shard);
        }

        let rec_stage = vmmc.proc_().alloc(REC_BYTES, CacheMode::WriteBack);
        let flag_stage = vmmc.proc_().alloc(4, CacheMode::WriteBack);
        let birth = cluster.system().daemon(bnode).restarts();
        loop {
            let req = rx.recv(ctx);
            let mut ok = false;
            if let Some(dst) = peer.as_ref() {
                ok = replicate_one(
                    ctx, &vmmc, dst, rec_stage, flag_stage, ack_va, &req, &cluster, shard, bnode,
                    birth,
                );
                if !ok {
                    // Degrade permanently and make sure the watchdog
                    // can never promote the now-stale replica.
                    peer = None;
                    cluster.demote_backup(shard);
                }
            }
            req.done.send(&ctx.handle(), ok);
        }
    });
}

/// The backup-side applier: receives records in sequence order, applies
/// them to the replica, acks, and — on promotion — starts serving the
/// replica under the new epoch.
fn spawn_backup(cluster: &Arc<SvcCluster>, h: &SimHandle, shard: usize, bnode: usize) {
    let cluster = Arc::clone(cluster);
    let name = format!("svc-backup-s{shard}");
    h.spawn(name.clone(), move |ctx| {
        let vmmc = cluster.system().endpoint(bnode, name);
        let rt = &cluster.shards[shard];
        let cfg = cluster.config().clone();
        let boot = RetryPolicy::bootstrap();
        let slots = cfg.repl_slots as usize;
        let total = slots * REC_BYTES + 4 * slots;
        let base = vmmc.proc_().alloc(total, CacheMode::WriteBack);

        let ack_dst: Option<ImportHandle> = (|| {
            let bufname = export_retry(&vmmc, ctx, base, total, boot).ok()?;
            *rt.link.backup_pub.lock() = Some((vmmc.node_id(), bufname));
            rt.link.backup_ready.open(&ctx.handle());
            let deadline = ctx.now() + boot.total_budget();
            if !rt.link.primary_ready.wait_deadline(ctx, deadline) {
                return None;
            }
            let (pn, pname) = (*rt.link.primary_pub.lock())?;
            vmmc.import_retry(ctx, pn, pname, boot).ok()
        })();
        let Some(ack_dst) = ack_dst else { return };

        let flag_stage = vmmc.proc_().alloc(4, CacheMode::WriteBack);
        // Birth after setup: a crash ridden out by the bootstrap
        // retries counts as a (re)start, not a death.
        let birth = cluster.system().daemon(bnode).restarts();
        let mut next: u64 = 1;
        loop {
            if cluster.is_shutdown() {
                return;
            }
            let d = cluster.system().daemon(bnode);
            if d.is_down() || d.restarts() != birth {
                return;
            }
            if let Some(epoch) = rt.promo.try_recv() {
                // Promoted: the replica becomes the shard under the
                // bumped epoch, unreplicated from here on. Records
                // past `next` were never acked to any client.
                spawn_serve_workers(
                    &cluster,
                    &ctx.handle(),
                    shard,
                    epoch,
                    bnode,
                    Arc::clone(&rt.backup_store),
                    None,
                );
                return;
            }
            let slot = (next - 1) as usize % slots;
            let flag_va = base.add(slots * REC_BYTES + 4 * slot);
            let want = next as u32;
            match vmmc.wait_u32_deadline(ctx, flag_va, 64, ctx.now() + cfg.watch_interval, |v| {
                v == want
            }) {
                Ok(_) => {
                    let Ok(raw) = vmmc
                        .proc_()
                        .read(ctx, base.add(slot * REC_BYTES), REC_BYTES)
                    else {
                        return;
                    };
                    let (seq, op) = decode_record(&raw);
                    debug_assert_eq!(seq, next, "replication records arrive in order");
                    rt.backup_store.lock().apply_at(seq, &op);
                    if vmmc.proc_().write_u32(ctx, flag_stage, seq as u32).is_err() {
                        return;
                    }
                    if vmmc.send(ctx, flag_stage, &ack_dst, 0, 4).is_err() {
                        return;
                    }
                    next += 1;
                }
                // Timeout is just the bounded-wait slice expiring so
                // the promotion/shutdown/liveness checks re-run.
                Err(VmmcError::Timeout { .. }) => {}
                Err(_) => return,
            }
        }
    });
}

/// The cluster watchdog: polls daemon liveness every `watch_interval`
/// and promotes backups of dead primaries.
pub(crate) fn spawn_watchdog(cluster: &Arc<SvcCluster>) {
    let h = cluster.system().sim().clone();
    let cluster = Arc::clone(cluster);
    h.spawn("svc-watchdog", move |ctx| loop {
        if cluster.is_shutdown() {
            return;
        }
        ctx.advance(cluster.config().watch_interval);
        if cluster.is_shutdown() {
            return;
        }
        for shard in 0..cluster.config().shards {
            cluster.promote_if_down(ctx, shard);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let op = Op::Put {
            key: b"alpha".to_vec(),
            val: b"some value".to_vec(),
        };
        let (seq, back) = decode_record(&encode_record(77, &op));
        assert_eq!(seq, 77);
        assert_eq!(back, op);

        let del = Op::Del {
            key: b"alpha".to_vec(),
        };
        let (seq, back) = decode_record(&encode_record(78, &del));
        assert_eq!(seq, 78);
        assert_eq!(back, del);
        assert_eq!(REC_BYTES % 4, 0, "slot offsets must stay word-aligned");
    }
}
